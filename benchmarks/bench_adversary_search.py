"""Delta-solve engine perf smoke + searched policy-vs-adversary study.

Two contracts, both recorded as ``BENCH_*`` artifacts:

* ``adversary_search`` — the annealed worst-case study: for every
  ``(topology family, routing policy)`` pair, the searched permutation
  degrades throughput **at least as much** as the hand-built adversary
  (the seed is the first evaluated candidate, so this holds by
  construction — the assertion guards the plumbing), and it must be
  strictly worse on a healthy number of pairs or the search is not
  actually searching.  The searched objectives are deterministic (seeded
  proposals, exact solver), so they are also compared bit-identically to
  the committed baseline.

* ``delta_speedup`` — the headline perf claim: on the fig12-scale
  tapered fat tree, evaluating a swap-two-destinations neighbour through
  :meth:`FlowSimulator.maxmin_rates_delta_batch` costs >= 5x less than a
  cold solve, with every warm result matching cold to <= 1e-12.  Both
  engines are measured interleaved, best-of-``repeats``, on pre-warmed
  route caches with the assignment cache disabled, so the ratio compares
  solver work rather than cache luck.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_nested_table

from _bench_utils import committed_artifact, run_once, run_sweep

#: sweep scale of the committed baseline: full policy grid, searched with
#: a budget small enough for CI yet large enough to beat the hand-built
#: adversary on most pairs.
_SEARCH_PARAMS = dict(steps=64, batch=16, seed=0)
_POLICIES = ("minimal", "ecmp", "valiant", "ugal")

#: the >= 5x headline is asserted on the best measured (policy) pair of
#: the fat tree — both policies are recorded, so regressions on either
#: still show up in the artifact.
_SPEEDUP_FLOOR = 5.0
_PARITY = 1e-12


@pytest.mark.benchmark(group="adversary-search")
def test_searched_adversary_at_least_matches_hand_built(benchmark):
    data = run_sweep(
        benchmark, "adversary_search", record="adversary_search", **_SEARCH_PARAMS
    )

    print()
    print(
        format_nested_table(
            "Hand-built adversary worst receive fraction",
            {
                topo: {pol: entry[pol]["hand_built_worst"] for pol in _POLICIES}
                for topo, entry in data.items()
            },
            value_format="{:.4f}",
        )
    )
    print(
        format_nested_table(
            "Searched (annealed) worst receive fraction",
            {
                topo: {pol: entry[pol]["searched_worst"] for pol in _POLICIES}
                for topo, entry in data.items()
            },
            value_format="{:.4f}",
        )
    )

    # --- the study's contract: the search never weakens the adversary...
    strict = 0
    for topo, entry in data.items():
        for pol in _POLICIES:
            cell = entry[pol]
            assert cell["searched_worst"] <= cell["hand_built_worst"] + _PARITY, (
                topo,
                pol,
            )
            strict += cell["searched_worst"] < cell["hand_built_worst"] - _PARITY
            assert cell["steps"] >= _SEARCH_PARAMS["steps"]
    # ...and actually strengthens it on a healthy share of the grid.
    assert strict >= len(data), f"only {strict} strict improvements"

    # The warm path must carry the search on the non-adaptive policies
    # (UGAL legitimately solves cold: its routing is load-dependent).
    warm_pairs = [
        entry[pol]["warm_rate"]
        for entry in data.values()
        for pol in ("minimal", "ecmp")
    ]
    assert max(warm_pairs) > 0.9

    # --- deterministic search: bit-identical to the committed baseline.
    baseline = committed_artifact("adversary_search")
    if baseline is not None:
        from repro.exp.recording import compact, to_jsonable

        compaction = baseline.get("compaction", {})
        fresh = compact(
            to_jsonable(data),
            float_digits=int(compaction.get("float_digits", 6)),
            max_series=int(compaction.get("max_series", 256)),
        )
        for topo, entry in baseline["result"].items():
            for pol in _POLICIES:
                for key in ("hand_built_worst", "searched_worst"):
                    assert fresh[topo][pol][key] == entry[pol][key], (
                        f"{key} drifted from the committed baseline on "
                        f"({topo}, {pol})"
                    )


@pytest.mark.benchmark(group="adversary-search")
def test_delta_solve_speedup_vs_cold(benchmark):
    """Per-neighbour delta evaluation >= 5x cold at fig12 scale."""
    from repro.exp.cells import flowsim_delta_cell

    def body():
        return {
            policy: flowsim_delta_cell(
                topo_key="fattree_tapered",
                policy=policy,
                num_moves=64,
                batch=32,
                repeats=5,
            )
            for policy in ("minimal", "ecmp")
        }

    data = run_once(benchmark, body, record="delta_speedup")

    print()
    print(
        format_nested_table(
            "Delta vs cold per-neighbour evaluation (fattree_tapered)",
            {
                pol: {
                    "delta_ms": cell["delta_ms_per_eval"],
                    "cold_ms": cell["cold_ms_per_eval"],
                    "speedup": cell["speedup"],
                }
                for pol, cell in data.items()
            },
            value_format="{:.3f}",
        )
    )

    for pol, cell in data.items():
        # Exactness is non-negotiable on every pair...
        assert cell["max_abs_diff"] <= _PARITY, pol
        # ...and the warm path must actually serve the whole move set.
        assert cell["warm_evals"] == cell["num_moves"], pol
    # The headline ratio is taken on the best pair: both policies stress
    # the same engine, and judging the max keeps shared-runner noise on
    # one timing from tripping the gate.
    best = max(cell["speedup"] for cell in data.values())
    assert best >= _SPEEDUP_FLOOR, f"best delta-solve speedup {best:.2f}x < 5x"
