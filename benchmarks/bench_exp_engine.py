"""The experiment engine itself: serial vs parallel vs warm-cache timings.

Runs one multi-figure sweep (allocation, permutation-bandwidth, failure,
and cluster-lifetime cells -- dozens of cells across four sweeps) three
ways through :mod:`repro.exp`:

1. **serial**, cache off -- the pre-engine baseline execution model;
2. **parallel** on 4 worker processes, cold cache -- cells chunked by
   topology/cluster and fanned out;
3. **warm**, serving every cell from the on-disk result cache.

All three payloads must be bit-identical (canonical JSON).  The recorded
``BENCH_exp_engine.json`` artifact tracks the three wall-clock times and
speedups across PRs.  The parallel < serial assertion only applies when
the machine actually has >= 4 usable cores (CI containers often expose 1).
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

from repro.exp import Runner, canonical_json, run_sweeps

from _bench_utils import run_once

PARALLEL_WORKERS = 4

SWEEPS = {
    "fig8": {
        "clusters": {
            "Small 16x16 Hx2Mesh": (16, 16),
            "Small 8x8 Hx4Mesh": (8, 8),
        },
        "num_traces": 12,
        "seed": 3,
    },
    "fig10": {
        "clusters": {
            "Hx2Small (16x16)": ((16, 16), (0, 20, 40)),
            "Hx4Small (8x8)": ((8, 8), (0, 20, 40)),
        },
        "num_trials": 4,
        "seed": 7,
    },
    "fig12": {
        "cluster": "small",
        "num_permutations": 1,
        "max_paths": 4,
        "skip_keys": ("dragonfly",),
        "seed": 11,
    },
    "lifetime_policies": {
        "presets": ("greedy", "greedy+transpose+aspect"),
        "policies": ("fcfs", "fcfs+backfill"),
        "num_jobs": 150,
        "seed": 7,
    },
}


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _timed_run(runner: Runner):
    start = time.perf_counter()
    runs, report = run_sweeps(SWEEPS, runner=runner)
    wall = time.perf_counter() - start
    payload = canonical_json({name: run.payload for name, run in runs.items()})
    return payload, wall, report


@pytest.mark.benchmark(group="exp_engine")
def test_exp_engine_serial_parallel_warm(benchmark):
    def run():
        with tempfile.TemporaryDirectory() as cache_dir:
            serial_payload, t_serial, serial_report = _timed_run(
                Runner(workers=1, cache=False)
            )
            parallel_payload, t_parallel, parallel_report = _timed_run(
                Runner(workers=PARALLEL_WORKERS, cache=cache_dir)
            )
            warm_payload, t_warm, warm_report = _timed_run(
                Runner(workers=1, cache=cache_dir)
            )
        return {
            "cells": len(serial_report),
            "chunks": serial_report.chunks,
            "usable_cores": _usable_cores(),
            "serial_seconds": t_serial,
            "parallel_seconds": t_parallel,
            "warm_cache_seconds": t_warm,
            "parallel_workers": PARALLEL_WORKERS,
            "parallel_speedup": t_serial / max(t_parallel, 1e-12),
            "warm_speedup": t_serial / max(t_warm, 1e-12),
            "parallel_identical": parallel_payload == serial_payload,
            "warm_identical": warm_payload == serial_payload,
            "warm_cache_hits": warm_report.cache_hits,
            "warm_cache_misses": warm_report.cache_misses,
        }

    data = run_once(benchmark, run, record="exp_engine")
    print(
        f"\nexp engine: {data['cells']} cells in {data['chunks']} chunks -- "
        f"serial {data['serial_seconds']:.2f}s, "
        f"parallel(x{data['parallel_workers']}) {data['parallel_seconds']:.2f}s "
        f"({data['parallel_speedup']:.2f}x), "
        f"warm cache {data['warm_cache_seconds'] * 1e3:.0f}ms "
        f"({data['warm_speedup']:.0f}x) on {data['usable_cores']} core(s)"
    )
    # Correctness invariants of the engine: every execution path yields the
    # same bits, and a warm run touches no kernel at all.
    assert data["parallel_identical"]
    assert data["warm_identical"]
    assert data["warm_cache_misses"] == 0
    assert data["warm_cache_hits"] == data["cells"]
    assert data["warm_cache_seconds"] < data["serial_seconds"]
    # The parallel-speedup claim needs real cores to be meaningful.
    if data["usable_cores"] >= PARALLEL_WORKERS:
        assert data["parallel_seconds"] < data["serial_seconds"]
