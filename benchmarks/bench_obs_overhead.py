"""Overhead budget of the ``repro.obs`` observability layer.

The layer's contract (DESIGN.md, "Observability") is that instrumentation
is effectively free while disabled and cheap while enabled.  This benchmark
measures both on the packet simulator's hot loop — the most
instrumentation-sensitive code in the repository — via
:func:`repro.exp.cells.obs_overhead_cell`, which runs many back-to-back
*(disabled, enabled, disabled)* triples of a short permutation workload on
a shared warmed topology and reports each metric's cleanest triple.
Asserted budgets:

* **disabled drift <= 2%**: in every triple two disabled passes bracket the
  enabled one milliseconds apart; their gap bounds residual noise *and* any
  obs state leaking past ``disable()``.  A real leak raises the gap in
  *every* triple, so the best triple still catches it while transient noise
  does not trip the gate.
* **enabled overhead <= 15%**: sampled drive, wave-size histograms, and
  always-live counters together may not slow the simulator by more than the
  committed budget, again judged on the cleanest triple.

The milliseconds-scale triples are what make the 2% assertion meaningful on
shared CI runners: each triple fits inside one noise epoch of the host, so
slow multiplicative machine noise cancels out of the within-triple ratios,
and noise can only inflate a run — the cleanest triple converges on the
true leak/overhead while a genuine regression lifts them all.  The absolute
event rate is additionally compared against the committed
``BENCH_obs_overhead.json`` baseline within the usual 2x band
(``REPRO_BENCH_SKIP_BASELINE=1`` opts out on incomparable hardware).
"""

from __future__ import annotations

import pytest

from repro.exp import Scenario
from repro.exp.cells import obs_overhead_cell
from repro.exp.scenario import kernel_ref

from _bench_utils import bench_runner, committed_artifact, run_once

#: committed overhead budget asserted in CI (fractions of the disabled rate)
DISABLED_DRIFT_BUDGET = 0.02
ENABLED_OVERHEAD_BUDGET = 0.15


def _run_cell(kernel, **params):
    report = bench_runner().run(Scenario(kernel_ref(kernel), params))
    return report.values()[0]


@pytest.mark.benchmark(group="obs")
def test_obs_overhead_budget(benchmark):
    """Disabled drift <= 2% and enabled overhead <= 15% on the packet core."""
    # Read the committed baseline before run_once regenerates the artifact.
    baseline = committed_artifact("obs_overhead")

    def run():
        return _run_cell(
            obs_overhead_cell,
            a=2, b=2, x=4, y=4,
            message_size=1 << 17,
            seed=9,
            rounds=30,
        )

    data = run_once(benchmark, run, record="obs_overhead")
    print(
        f"\nobs overhead: disabled {data['events_per_second_disabled'] / 1e3:.0f}k ev/s, "
        f"enabled {data['events_per_second_enabled'] / 1e3:.0f}k ev/s "
        f"(best-triple drift {data['disabled_drift'] * 100:.2f}%, "
        f"overhead {data['enabled_overhead'] * 100:.2f}%; medians "
        f"{data['median_drift'] * 100:.2f}% / {data['median_overhead'] * 100:.2f}%)"
    )
    assert data["disabled_drift"] <= DISABLED_DRIFT_BUDGET, (
        f"disabled-mode drift {data['disabled_drift'] * 100:.2f}% exceeds the "
        f"{DISABLED_DRIFT_BUDGET * 100:.0f}% budget — either the machine is too "
        f"noisy or obs state leaks into the disabled fast path"
    )
    assert data["enabled_overhead"] <= ENABLED_OVERHEAD_BUDGET, (
        f"enabled-mode overhead {data['enabled_overhead'] * 100:.2f}% exceeds "
        f"the {ENABLED_OVERHEAD_BUDGET * 100:.0f}% budget"
    )
    if baseline and isinstance(baseline.get("result"), dict):
        committed = baseline["result"].get("events_per_second_disabled")
        if committed:
            fresh = data["events_per_second_disabled"]
            assert fresh >= committed / 2.0, (
                f"disabled packet event rate {fresh:.0f}/s fell more than 2x "
                f"below the committed baseline {committed:.0f}/s"
            )
