"""Cross-validation and performance of the network-model backends.

Not a table/figure of the paper, but the substrate every bandwidth number
relies on: the flow-level backend is validated against the packet-level
backend on a small HxMesh (same permutation traffic), the raw speed of the
vectorized simulator kernels is measured **against the in-tree reference
implementations** (:mod:`repro.sim.reference`) as machine-independent
speedup ratios, and the shared-RouteTable reuse is measured (a warm table
must beat a cold one on the repeated-topology sweeps every figure benchmark
performs).

Two perf-smoke contracts are asserted here and recorded in the committed
artifacts:

* packet event rate: vectorized core >= 5x the reference on the
  fig12-scale permutation workload (``BENCH_simulators_packet_event_rate``,
  with before/after fields);
* fig12 max-min sweep: incremental solver >= 2x the full-rescan reference
  (``BENCH_flowsim_maxmin``).

Fresh runs are additionally compared against the committed baseline
artifacts (within 2x, absolute wall-clock — set
``REPRO_BENCH_SKIP_BASELINE=1`` on hardware where that is meaningless).

All bodies are engine cells (:mod:`repro.exp.cells`) run through a
:class:`repro.exp.Runner` with the cache disabled (these are wall-clock
measurements); the timing probes are additionally marked
``cacheable=False`` so no cache configuration can ever serve them stale.
"""

from __future__ import annotations

import pytest

from repro.exp import Scenario
from repro.exp.cells import (
    flow_alltoall_cell,
    flowsim_maxmin_cell,
    packet_event_rate_cell,
    packet_vs_flow_cell,
    route_table_reuse_cell,
)
from repro.exp.scenario import kernel_ref

from _bench_utils import bench_runner, committed_artifact, run_once


def _run_cell(kernel, **params):
    report = bench_runner().run(Scenario(kernel_ref(kernel), params))
    return report.values()[0]


@pytest.mark.benchmark(group="simulators")
def test_flowsim_alltoall_small_hxmesh(benchmark, fidelity):
    def run():
        return _run_cell(
            flow_alltoall_cell,
            a=2, b=2, x=8, y=8,
            max_paths=fidelity["max_paths"],
            num_phases=16,
            seed=1,
        )

    bw = run_once(benchmark, run, record="simulators_flow_alltoall")
    print(f"\n8x8 Hx2Mesh alltoall fraction: {bw * 100:.1f}%")
    assert 0.1 < bw < 0.6


@pytest.mark.benchmark(group="simulators")
def test_packet_vs_flow_agreement(benchmark):
    def run():
        return _run_cell(
            packet_vs_flow_cell,
            a=2, b=2, x=4, y=4,
            max_paths=4,
            message_size=1 << 18,
            seed=4,
        )

    means = run_once(benchmark, run, record="simulators_packet_vs_flow")
    ratio = means["packet_mean"] / means["flow_mean"]
    print(f"\npacket-level vs flow-level mean bandwidth ratio: {ratio:.2f}")
    assert 0.6 < ratio < 1.4


@pytest.mark.benchmark(group="simulators")
def test_packet_simulator_event_rate(benchmark):
    """Vectorized packet core vs the reference: event rate before/after.

    The canonical workload is a fig12-scale permutation (256-accelerator
    Hx2Mesh, 512 KiB messages); the pre-vectorization 64-accelerator
    workload rides along for series continuity.  Asserts the tentpole
    speedup contract (>= 5x) and, when a committed baseline exists, that
    this machine's absolute event rate is within 2x of it.
    """
    fig12_scale = dict(a=2, b=2, x=8, y=8, message_size=1 << 19, seed=9)
    # Read the committed baseline *before* run_once regenerates the artifact
    # in place, or the within-2x guard would compare the run to itself.
    baseline = committed_artifact("simulators_packet_event_rate")

    def run():
        before = _run_cell(packet_event_rate_cell, impl="reference", **fig12_scale)
        after = _run_cell(packet_event_rate_cell, impl="vectorized", **fig12_scale)
        small = _run_cell(
            packet_event_rate_cell,
            a=2, b=2, x=4, y=4, message_size=1 << 17, seed=9,
            impl="vectorized",
        )
        return {
            "before": before,
            "after": after,
            "small": small,
            "speedup": after["events_per_second"] / before["events_per_second"],
        }

    data = run_once(benchmark, run, record="simulators_packet_event_rate")
    before, after = data["before"], data["after"]
    print(
        f"\npacket event rate: reference {before['events_per_second'] / 1e3:.0f}k ev/s, "
        f"vectorized {after['events_per_second'] / 1e3:.0f}k ev/s "
        f"({data['speedup']:.2f}x, {after['events']} events)"
    )
    assert after["events"] == before["events"], "impls must process identical events"
    assert after["events"] > 10000
    assert data["speedup"] >= 5.0, (
        f"vectorized packet core is only {data['speedup']:.2f}x the reference"
    )
    if baseline and isinstance(baseline.get("result"), dict):
        committed = baseline["result"].get("after", {}).get("events_per_second")
        if committed:
            assert after["events_per_second"] >= committed / 2.0, (
                f"packet event rate {after['events_per_second']:.0f}/s fell more "
                f"than 2x below the committed baseline {committed:.0f}/s"
            )


@pytest.mark.benchmark(group="simulators")
def test_flowsim_maxmin_sweep(benchmark):
    """Incremental max-min solver vs the reference on a fig12-style sweep.

    Asserts the tentpole speedup contract (>= 2x on the fig12 'small'
    cluster sweep), bit-level agreement of the solved rates, and, when a
    committed baseline exists, that the absolute solve time is within 2x.
    """
    # Read the committed baseline before run_once regenerates the artifact.
    baseline = committed_artifact("flowsim_maxmin")

    def run():
        before = _run_cell(flowsim_maxmin_cell, impl="reference")
        after = _run_cell(flowsim_maxmin_cell, impl="incremental")
        return {
            "before": before,
            "after": after,
            "speedup": before["seconds"] / after["seconds"],
        }

    data = run_once(benchmark, run, record="flowsim_maxmin")
    before, after = data["before"], data["after"]
    print(
        f"\nfig12 max-min sweep: reference {before['seconds'] * 1e3:.0f} ms, "
        f"incremental {after['seconds'] * 1e3:.0f} ms ({data['speedup']:.2f}x)"
    )
    for key, means in before["mean_rates"].items():
        for ref_mean, inc_mean in zip(means, after["mean_rates"][key]):
            assert inc_mean == pytest.approx(ref_mean, rel=1e-9, abs=1e-9)
    assert data["speedup"] >= 2.0, (
        f"incremental max-min solver is only {data['speedup']:.2f}x the reference"
    )
    if baseline and isinstance(baseline.get("result"), dict):
        committed = baseline["result"].get("after", {}).get("seconds")
        if committed:
            assert after["seconds"] <= committed * 2.0, (
                f"max-min sweep took {after['seconds']:.2f}s, more than 2x the "
                f"committed baseline {committed:.2f}s"
            )


@pytest.mark.benchmark(group="simulators")
def test_route_table_warm_vs_cold(benchmark, fidelity):
    """Shared-RouteTable reuse: the warm run must beat the cold run.

    Two identical alltoall + permutation measurements on fresh simulator
    instances; the first pays the route enumeration, the second serves every
    pair from the memoized table.
    """

    def run():
        return _run_cell(
            route_table_reuse_cell,
            a=2, b=2, x=8, y=8,
            max_paths=fidelity["max_paths"],
            num_phases=12,
            seed=3,
        )

    data = run_once(benchmark, run, record="simulators_route_table_reuse")
    print(
        f"\nroute-table reuse: cold {data['cold_seconds'] * 1e3:.1f} ms, "
        f"warm {data['warm_seconds'] * 1e3:.1f} ms "
        f"({data['speedup']:.1f}x, {data['pairs_routed']} pairs routed)"
    )
    assert data["warm_matches_cold"]
    assert data["pair_hits"] > 0
    assert data["warm_seconds"] < data["cold_seconds"]
