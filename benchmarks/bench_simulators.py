"""Cross-validation and performance of the two network simulators.

Not a table/figure of the paper, but the substrate every bandwidth number
relies on: the flow-level simulator is validated against the packet-level
simulator on a small HxMesh (same permutation traffic), and the raw speed of
both is recorded so regressions in the simulation substrate are visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_hammingmesh
from repro.sim import FlowSimulator, PacketNetwork, PacketSimConfig, random_permutation

from _bench_utils import run_once


@pytest.mark.benchmark(group="simulators")
def test_flowsim_alltoall_small_hxmesh(benchmark, fidelity):
    topo = build_hammingmesh(2, 2, 8, 8)

    def run():
        sim = FlowSimulator(topo, max_paths=fidelity["max_paths"])
        return sim.alltoall_bandwidth(num_phases=16, seed=1)

    bw = run_once(benchmark, run)
    print(f"\n8x8 Hx2Mesh alltoall fraction: {bw * 100:.1f}%")
    assert 0.1 < bw < 0.6


@pytest.mark.benchmark(group="simulators")
def test_packet_vs_flow_agreement(benchmark):
    topo = build_hammingmesh(2, 2, 4, 4)
    flows = random_permutation(topo.num_accelerators, seed=4)
    size = 1 << 18

    def run():
        net = PacketNetwork(topo, config=PacketSimConfig(max_paths=4))
        net.send_flows(flows, size)
        packet_mean = net.run().message_bandwidths().mean()
        flow_mean = (
            FlowSimulator(topo, max_paths=4).maxmin_rates(flows).flow_rates.mean() * 50e9
        )
        return packet_mean, flow_mean

    packet_mean, flow_mean = run_once(benchmark, run)
    ratio = packet_mean / flow_mean
    print(f"\npacket-level vs flow-level mean bandwidth ratio: {ratio:.2f}")
    assert 0.6 < ratio < 1.4


@pytest.mark.benchmark(group="simulators")
def test_packet_simulator_event_rate(benchmark):
    """Raw packet-simulator throughput (events processed for a fixed load)."""
    topo = build_hammingmesh(2, 2, 4, 4)
    flows = random_permutation(topo.num_accelerators, seed=9)

    def run():
        net = PacketNetwork(topo)
        net.send_flows(flows, 1 << 17)
        net.run()
        return net.engine.processed_events

    events = run_once(benchmark, run)
    print(f"\nprocessed events: {events}")
    assert events > 1000
