"""Cross-validation and performance of the network-model backends.

Not a table/figure of the paper, but the substrate every bandwidth number
relies on: the flow-level backend is validated against the packet-level
backend on a small HxMesh (same permutation traffic), the raw speed of both
is recorded so regressions in the simulation substrate are visible, and the
shared-RouteTable reuse is measured (a warm table must beat a cold one on
the repeated-topology sweeps every figure benchmark performs).

All bodies are engine cells (:mod:`repro.exp.cells`) run through a
:class:`repro.exp.Runner` with the cache disabled (these are wall-clock
measurements); the warm-vs-cold probe, whose *result* is a timing, is
additionally marked ``cacheable=False`` so no cache configuration can
ever serve it stale.
"""

from __future__ import annotations

import pytest

from repro.exp import Scenario
from repro.exp.cells import (
    flow_alltoall_cell,
    packet_event_rate_cell,
    packet_vs_flow_cell,
    route_table_reuse_cell,
)
from repro.exp.scenario import kernel_ref

from _bench_utils import bench_runner, run_once


def _run_cell(kernel, **params):
    report = bench_runner().run(Scenario(kernel_ref(kernel), params))
    return report.values()[0]


@pytest.mark.benchmark(group="simulators")
def test_flowsim_alltoall_small_hxmesh(benchmark, fidelity):
    def run():
        return _run_cell(
            flow_alltoall_cell,
            a=2, b=2, x=8, y=8,
            max_paths=fidelity["max_paths"],
            num_phases=16,
            seed=1,
        )

    bw = run_once(benchmark, run, record="simulators_flow_alltoall")
    print(f"\n8x8 Hx2Mesh alltoall fraction: {bw * 100:.1f}%")
    assert 0.1 < bw < 0.6


@pytest.mark.benchmark(group="simulators")
def test_packet_vs_flow_agreement(benchmark):
    def run():
        return _run_cell(
            packet_vs_flow_cell,
            a=2, b=2, x=4, y=4,
            max_paths=4,
            message_size=1 << 18,
            seed=4,
        )

    means = run_once(benchmark, run, record="simulators_packet_vs_flow")
    ratio = means["packet_mean"] / means["flow_mean"]
    print(f"\npacket-level vs flow-level mean bandwidth ratio: {ratio:.2f}")
    assert 0.6 < ratio < 1.4


@pytest.mark.benchmark(group="simulators")
def test_packet_simulator_event_rate(benchmark):
    """Raw packet-simulator throughput (events processed for a fixed load)."""

    def run():
        return _run_cell(
            packet_event_rate_cell, a=2, b=2, x=4, y=4, message_size=1 << 17, seed=9
        )

    events = run_once(benchmark, run, record="simulators_packet_event_rate")
    print(f"\nprocessed events: {events}")
    assert events > 1000


@pytest.mark.benchmark(group="simulators")
def test_route_table_warm_vs_cold(benchmark, fidelity):
    """Shared-RouteTable reuse: the warm run must beat the cold run.

    Two identical alltoall + permutation measurements on fresh simulator
    instances; the first pays the route enumeration, the second serves every
    pair from the memoized table.
    """

    def run():
        return _run_cell(
            route_table_reuse_cell,
            a=2, b=2, x=8, y=8,
            max_paths=fidelity["max_paths"],
            num_phases=12,
            seed=3,
        )

    data = run_once(benchmark, run, record="simulators_route_table_reuse")
    print(
        f"\nroute-table reuse: cold {data['cold_seconds'] * 1e3:.1f} ms, "
        f"warm {data['warm_seconds'] * 1e3:.1f} ms "
        f"({data['speedup']:.1f}x, {data['pairs_routed']} pairs routed)"
    )
    assert data["warm_matches_cold"]
    assert data["pair_hits"] > 0
    assert data["warm_seconds"] < data["cold_seconds"]
