"""Cross-validation and performance of the network-model backends.

Not a table/figure of the paper, but the substrate every bandwidth number
relies on: the flow-level backend is validated against the packet-level
backend on a small HxMesh (same permutation traffic), the raw speed of both
is recorded so regressions in the simulation substrate are visible, and the
shared-RouteTable reuse is measured (a warm table must beat a cold one on
the repeated-topology sweeps every figure benchmark performs).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import build_hammingmesh
from repro.sim import (
    FlowSimulator,
    PacketNetwork,
    clear_route_tables,
    get_backend,
    random_permutation,
    route_table_for,
)

from _bench_utils import run_once


@pytest.mark.benchmark(group="simulators")
def test_flowsim_alltoall_small_hxmesh(benchmark, fidelity):
    topo = build_hammingmesh(2, 2, 8, 8)

    def run():
        model = get_backend("flow", topo, max_paths=fidelity["max_paths"])
        return model.alltoall_fraction(num_phases=16, seed=1)

    bw = run_once(benchmark, run, record="simulators_flow_alltoall")
    print(f"\n8x8 Hx2Mesh alltoall fraction: {bw * 100:.1f}%")
    assert 0.1 < bw < 0.6


@pytest.mark.benchmark(group="simulators")
def test_packet_vs_flow_agreement(benchmark):
    topo = build_hammingmesh(2, 2, 4, 4)
    flows = random_permutation(topo.num_accelerators, seed=4)

    def run():
        packet = get_backend("packet", topo, max_paths=4, message_size=1 << 18)
        flow = get_backend("flow", topo, max_paths=4)
        packet_mean = float(packet.phase_rates(flows).mean())
        flow_mean = float(flow.phase_rates(flows, exact=True).mean())
        return packet_mean, flow_mean

    packet_mean, flow_mean = run_once(
        benchmark, run, record="simulators_packet_vs_flow"
    )
    ratio = packet_mean / flow_mean
    print(f"\npacket-level vs flow-level mean bandwidth ratio: {ratio:.2f}")
    assert 0.6 < ratio < 1.4


@pytest.mark.benchmark(group="simulators")
def test_packet_simulator_event_rate(benchmark):
    """Raw packet-simulator throughput (events processed for a fixed load)."""
    topo = build_hammingmesh(2, 2, 4, 4)
    flows = random_permutation(topo.num_accelerators, seed=9)

    def run():
        net = PacketNetwork(topo)
        net.send_flows(flows, 1 << 17)
        net.run()
        return net.engine.processed_events

    events = run_once(benchmark, run, record="simulators_packet_event_rate")
    print(f"\nprocessed events: {events}")
    assert events > 1000


@pytest.mark.benchmark(group="simulators")
def test_route_table_warm_vs_cold(benchmark, fidelity):
    """Shared-RouteTable reuse: the warm run must beat the cold run.

    Two identical alltoall + permutation measurements on fresh simulator
    instances; the first pays the route enumeration, the second serves every
    pair from the memoized table.
    """
    topo = build_hammingmesh(2, 2, 8, 8)
    flows = random_permutation(topo.num_accelerators, seed=3)

    def sweep():
        sim = FlowSimulator(topo, max_paths=fidelity["max_paths"])
        a2a = sim.alltoall_bandwidth(num_phases=12, seed=1)
        perm = float(sim.permutation_bandwidths(flows).mean())
        return a2a, perm

    def run():
        clear_route_tables()
        t0 = time.perf_counter()
        cold = sweep()
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = sweep()
        t_warm = time.perf_counter() - t0
        table = route_table_for(topo, max_paths=fidelity["max_paths"])
        return {
            "cold_seconds": t_cold,
            "warm_seconds": t_warm,
            "speedup": t_cold / max(t_warm, 1e-12),
            "alltoall_fraction": cold[0],
            "permutation_mean": cold[1],
            "warm_matches_cold": cold == warm,
            "pairs_routed": table.num_pairs_routed,
            "pair_hits": table.stats.hits,
        }

    data = run_once(benchmark, run, record="simulators_route_table_reuse")
    print(
        f"\nroute-table reuse: cold {data['cold_seconds'] * 1e3:.1f} ms, "
        f"warm {data['warm_seconds'] * 1e3:.1f} ms "
        f"({data['speedup']:.1f}x, {data['pairs_routed']} pairs routed)"
    )
    assert data["warm_matches_cold"]
    assert data["pair_hits"] > 0
    assert data["warm_seconds"] < data["cold_seconds"]
