"""Figure 9: fraction of job traffic crossing the upper fat-tree levels."""

from __future__ import annotations

import pytest

from _bench_utils import run_sweep


@pytest.mark.benchmark(group="fig09")
def test_fig09_upper_level_traffic(benchmark, fidelity):
    clusters = {"Large 32x32 Hx4Mesh": (32, 32, 32)}
    if fidelity["include_large"]:
        clusters["Large 64x64 Hx2Mesh"] = (64, 64, 16)

    data = run_sweep(
        benchmark,
        "fig9",
        record="fig09_upper_traffic",
        clusters=clusters,
        num_traces=max(4, fidelity["traces"] // 4),
        seed=5,
    )
    print()
    for cluster, per_preset in data.items():
        print(f"Figure 9 - {cluster}: traffic crossing upper tree levels (%)")
        for preset, fractions in per_preset.items():
            print(
                f"  {preset:<42} alltoall {fractions['alltoall'] * 100:5.1f}%  "
                f"allreduce {fractions['allreduce'] * 100:5.1f}%"
            )
        print()
    # Shape checks (paper): upper-level traffic stays below ~50% for alltoall,
    # allreduce crosses far less than alltoall, and the locality heuristic
    # reduces the alltoall fraction relative to plain greedy.
    for per_preset in data.values():
        for fractions in per_preset.values():
            assert fractions["alltoall"] <= 0.6
            assert fractions["allreduce"] <= fractions["alltoall"] + 1e-9
        greedy = per_preset["greedy"]["alltoall"]
        locality = per_preset["greedy+transpose+aspect+locality"]["alltoall"]
        assert locality <= greedy + 0.05
