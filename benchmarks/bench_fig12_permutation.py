"""Figure 12: per-accelerator bandwidth distribution under permutation traffic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_distribution_summary

from _bench_utils import run_sweep


@pytest.mark.benchmark(group="fig12")
def test_fig12_permutation_distribution(benchmark, fidelity):
    # The Dragonfly max-min solve over ~1k flows with many parallel channels
    # is the most expensive entry; skip it in quick mode.
    skip = () if fidelity["include_large"] else ("dragonfly",)

    data = run_sweep(
        benchmark,
        "fig12",
        record="fig12_permutation",
        cluster="small",
        num_permutations=fidelity["permutations"],
        max_paths=fidelity["max_paths"],
        skip_keys=skip,
        seed=11,
    )
    print()
    print(
        format_distribution_summary(
            "Figure 12 - per-accelerator receive bandwidth (% of injection)",
            {label: entry["distribution"] for label, entry in data.items()},
        )
    )
    print()
    print("cost per average permutation bandwidth (relative to nonblocking fat tree)")
    for label, entry in data.items():
        rel = entry.get("relative_cost_per_bandwidth", float("nan"))
        print(f"  {label:<24} {rel:8.2f}x   mean bw {entry['mean_fraction'] * 100:6.1f}%")
    # Shape checks: the fat tree achieves the highest mean bandwidth, but
    # HxMeshes are far cheaper per unit of permutation bandwidth.
    means = {label: entry["mean_fraction"] for label, entry in data.items()}
    assert means["nonblocking fat tree"] >= means["Hx2Mesh"]
    rel = {label: entry["relative_cost_per_bandwidth"] for label, entry in data.items()}
    assert rel["Hx4Mesh"] < 1.0
    # significant variance across connections on the direct topologies
    hx_dist = np.asarray(data["Hx2Mesh"]["distribution"])
    assert hx_dist.std() > 0.01
