"""Figures 13 and 17: full-system allreduce bandwidth vs message size.

Figure 13 is the large-cluster sweep, Figure 17 (appendix) the small-cluster
one.  Both compare the dual-ring ("rings") and 2D-torus ("torus") algorithms
on the grid topologies against the per-plane ring on the switched ones.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_series

from _bench_utils import run_sweep


def _flatten(series):
    flat = {}
    for topo, per_alg in series.items():
        for alg, points in per_alg.items():
            flat[f"{topo}/{alg}"] = points
    return flat


@pytest.mark.benchmark(group="fig13")
def test_fig13_allreduce_large_cluster(benchmark):
    series = run_sweep(
        benchmark, "fig13", record="fig13_allreduce_large", cluster="large"
    )
    print()
    print(
        format_series(
            "Figure 13 - large-cluster allreduce bus bandwidth [GB/s] vs message size [B]",
            _flatten(series),
            x_label="message size",
            y_label="GB/s",
            y_scale=1e-9,
        )
    )
    hx = series["Hx2Mesh"]
    sizes = [s for s, _ in hx["rings"]]
    rings, torus = dict(hx["rings"]), dict(hx["torus"])
    # the torus algorithm wins for small messages (sqrt(p) latency)...
    assert torus[sizes[0]] > rings[sizes[0]]
    # ...and the rings algorithm gains relative ground as messages grow.
    assert rings[sizes[-1]] / torus[sizes[-1]] > rings[sizes[0]] / torus[sizes[0]]
    # all topologies deliver nearly full bandwidth for the ring algorithms at
    # large messages (Section V-A2e) -- compare HxMesh vs fat tree.
    ft = dict(series["nonblocking fat tree"]["bidirectional-ring"])
    assert ft[sizes[-1]] > 0


@pytest.mark.benchmark(group="fig17")
def test_fig17_allreduce_small_cluster(benchmark):
    series = run_sweep(benchmark, "fig17", record="fig17_allreduce_small")
    print()
    print(
        format_series(
            "Figure 17 - small-cluster allreduce bus bandwidth [GB/s] vs message size [B]",
            _flatten(series),
            x_label="message size",
            y_label="GB/s",
            y_scale=1e-9,
        )
    )
    hx = series["Hx4Mesh"]
    sizes = [s for s, _ in hx["rings"]]
    rings, torus = dict(hx["rings"]), dict(hx["torus"])
    # on the small cluster the rings overtake the torus algorithm within the
    # swept message range (lower ring latency at p=1024)
    assert rings[sizes[-1]] > torus[sizes[-1]]
    assert torus[sizes[0]] > rings[sizes[0]]
