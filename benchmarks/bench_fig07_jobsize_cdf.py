"""Figure 7: CDF of the proportion of boards allocated to jobs of a given size."""

from __future__ import annotations

import pytest

from _bench_utils import run_sweep


@pytest.mark.benchmark(group="fig07")
def test_fig07_jobsize_cdf(benchmark, fidelity):
    data = run_sweep(
        benchmark,
        "fig7",
        record="fig07_jobsize_cdf",
        cluster_boards=4096,
        num_mixes=fidelity["traces"],
        seed=1,
    )
    print()
    print("Figure 7 - proportion of boards allocated to jobs of size <= s")
    for label in ("original", "sampled"):
        points = data[label]
        print(f"  {label}:")
        for size, cdf in points:
            print(f"    {size:>6d} boards  {cdf * 100:6.1f}%")
    # Shape checks: both CDFs are monotone and reach 100%, and a meaningful
    # share of boards belongs to small (<100 board) jobs as well as to the
    # heavy tail of large jobs.
    for label in ("original", "sampled"):
        values = [v for _, v in data[label]]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0, abs=1e-6)
    below_100 = [v for s, v in data["sampled"] if s <= 100][-1]
    assert 0.2 < below_100 < 0.95
