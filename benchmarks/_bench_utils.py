"""Helpers shared by the benchmark modules.

Every benchmark regenerates one table or figure through the experiment
engine (:mod:`repro.exp`): :func:`run_sweep` runs a registered sweep by
name, :func:`run_once` times an arbitrary engine-backed body.  Results are
recorded to machine-readable ``BENCH_<name>.json`` artifacts (benchmark
name, result data, wall-clock seconds) via :mod:`repro.exp.recording`,
which rounds floats and caps long series so the committed artifacts stay
reviewable.  Artifacts land in ``benchmarks/artifacts/`` by default; set
``REPRO_BENCH_DIR`` to redirect (or to an empty string to disable).

Benchmarks run with the result cache *disabled* (they measure real
compute) and serially by default; set ``REPRO_BENCH_WORKERS`` to
parallelise the sweeps across processes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Optional

import repro.obs as obs
from repro.exp import Runner
from repro.exp import run_sweep as _engine_run_sweep
from repro.exp.recording import (
    MemoryProbe,
    host_metadata,
    to_jsonable,
    write_artifact as _write_artifact,
)

__all__ = [
    "to_jsonable",
    "write_artifact",
    "run_once",
    "run_sweep",
    "bench_runner",
    "committed_artifact",
]

_DEFAULT_DIR = Path(__file__).resolve().parent / "artifacts"


def _artifact_dir() -> Optional[Path]:
    configured = os.environ.get("REPRO_BENCH_DIR")
    if configured is None:
        return _DEFAULT_DIR
    if not configured:
        return None
    return Path(configured)


def bench_runner() -> Runner:
    """The benchmark runner: cache off, ``REPRO_BENCH_WORKERS`` processes."""
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1") or "1")
    return Runner(workers=workers, cache=False)


def write_artifact(
    name: str,
    result: Any,
    wall_seconds: float,
    *,
    memory: Optional[dict] = None,
    workers: Optional[int] = None,
) -> Optional[Path]:
    """Write ``BENCH_<name>.json`` with the result and timing; return its path.

    When observability is enabled (``REPRO_OBS=1`` or ``repro.obs.enable()``)
    the artifact also embeds the compact non-zero metrics summary under an
    ``"obs"`` key, so a benchmark run leaves its counter/histogram evidence
    next to the numbers it produced.  ``memory`` (a
    :meth:`~repro.exp.recording.MemoryProbe.as_dict` snapshot) lands under a
    ``"memory"`` key — the artifact's memory axis next to its seconds.
    Every artifact carries a ``"host"`` key (CPU count, worker count,
    shared route-table segment bytes) so parallel numbers stay
    interpretable across machines.
    """
    directory = _artifact_dir()
    if directory is None:
        return None
    if workers is None:
        workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1") or "1")
    extra: dict = {"host": host_metadata(workers=workers)}
    if obs.is_enabled():
        summary = obs.metrics_summary()
        if summary:
            extra["obs"] = summary
    if memory is not None:
        extra["memory"] = memory
    return _write_artifact(
        name, result, wall_seconds, directory=directory, extra=extra
    )


def committed_artifact(name: str) -> Optional[dict]:
    """The committed ``BENCH_<name>.json`` (the in-repo baseline), if any.

    Always reads from the repository's ``benchmarks/artifacts`` directory —
    not from ``REPRO_BENCH_DIR`` — so perf-smoke runs can compare fresh
    measurements against the committed baseline regardless of where they
    write their own artifacts.  Set ``REPRO_BENCH_SKIP_BASELINE=1`` to
    disable baseline comparisons (returns ``None``).
    """
    if os.environ.get("REPRO_BENCH_SKIP_BASELINE"):
        return None
    path = _DEFAULT_DIR / f"BENCH_{name}.json"
    if not path.exists():
        return None
    with open(path) as handle:
        return json.load(handle)


def run_once(benchmark, fn, *args, record: Optional[str] = None, **kwargs):
    """Run a benchmark body exactly once (these are experiments, not kernels).

    With ``record`` the returned series, the wall-clock time, and the
    memory axis (peak RSS always; tracemalloc peak when
    ``REPRO_BENCH_TRACE_MEMORY`` is set — it slows Python allocation, so
    only memory-focused benchmarks should opt in) are written to
    ``BENCH_<record>.json`` (see :func:`write_artifact`).
    """
    trace = os.environ.get("REPRO_BENCH_TRACE_MEMORY", "") not in ("", "0")
    start = time.perf_counter()
    with MemoryProbe(trace=trace) as probe:
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    if record:
        write_artifact(record, result, wall, memory=probe.as_dict())
    return result


def run_sweep(benchmark, sweep: str, *, record: Optional[str] = None, **params):
    """Run a registered experiment sweep once and record its payload."""

    def body():
        return _engine_run_sweep(sweep, runner=bench_runner(), **params).payload

    return run_once(benchmark, body, record=record)
