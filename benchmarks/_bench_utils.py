"""Helpers shared by the benchmark modules.

Besides running each benchmark body exactly once, :func:`run_once` can
record the reproduced series to a machine-readable ``BENCH_<name>.json``
artifact (benchmark name, result data, wall-clock seconds), so the
performance and output trajectory of the reproduction is trackable across
PRs.  Artifacts land in ``benchmarks/artifacts/`` by default; set
``REPRO_BENCH_DIR`` to redirect (or to an empty string to disable).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Any, Optional

_DEFAULT_DIR = Path(__file__).resolve().parent / "artifacts"


def _artifact_dir() -> Optional[Path]:
    configured = os.environ.get("REPRO_BENCH_DIR")
    if configured is None:
        return _DEFAULT_DIR
    if not configured:
        return None
    return Path(configured)


def to_jsonable(value: Any) -> Any:
    """Convert benchmark results (numpy, dataclasses, tuple keys) to JSON."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {
            k if isinstance(k, str) else repr(k): to_jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return value.tolist()
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def write_artifact(name: str, result: Any, wall_seconds: float) -> Optional[Path]:
    """Write ``BENCH_<name>.json`` with the result and timing; return its path."""
    directory = _artifact_dir()
    if directory is None:
        return None
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    payload = {
        "benchmark": name,
        "wall_seconds": wall_seconds,
        "result": to_jsonable(result),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_once(benchmark, fn, *args, record: Optional[str] = None, **kwargs):
    """Run a benchmark body exactly once (these are experiments, not kernels).

    With ``record`` the returned series and the wall-clock time are written
    to ``BENCH_<record>.json`` (see :func:`write_artifact`).
    """
    start = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    if record:
        write_artifact(record, result, wall)
    return result
