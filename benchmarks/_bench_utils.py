"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run a benchmark body exactly once (these are experiments, not kernels)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
