"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series.  By default the sampling fidelity is reduced so
that the whole suite finishes in minutes on a laptop; set ``REPRO_FULL=1``
to run the full-fidelity versions (the large 16k-accelerator cluster with
full phase sampling takes tens of minutes).
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "0") not in ("0", "", "false", "False")


@pytest.fixture(scope="session")
def fidelity():
    """Sampling parameters used by the benchmarks (quick vs full)."""
    if FULL:
        return {
            "small_phases": 64,
            "large_phases": 16,
            "max_paths": 8,
            "traces": 200,
            "trials": 25,
            "permutations": 4,
            "include_large": True,
        }
    return {
        "small_phases": 24,
        "large_phases": 6,
        "max_paths": 8,
        "traces": 30,
        "trials": 8,
        "permutations": 2,
        "include_large": False,
    }
