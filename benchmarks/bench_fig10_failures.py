"""Figure 10: HxMesh utilization for different numbers of failed boards."""

from __future__ import annotations

import pytest

from _bench_utils import run_sweep


@pytest.mark.benchmark(group="fig10")
def test_fig10_failure_utilization(benchmark, fidelity):
    clusters = {
        "Hx2Small (16x16)": ((16, 16), (0, 10, 20, 30, 40)),
        "Hx4Small (8x8)": ((8, 8), (0, 10, 20, 30, 40)),
        "Hx4Large (32x32)": ((32, 32), (0, 25, 50, 75, 100)),
    }
    if fidelity["include_large"]:
        clusters["Hx2Large (64x64)"] = ((64, 64), (0, 25, 50, 75, 100))

    data = run_sweep(
        benchmark,
        "fig10",
        record="fig10_failures",
        clusters=clusters,
        num_trials=fidelity["trials"],
        seed=7,
    )
    print()
    for cluster, per_mode in data.items():
        print(f"Figure 10 - {cluster}: median utilization of working boards (%)")
        for mode, series in per_mode.items():
            line = "  ".join(f"{n:>3d} failed: {u * 100:5.1f}" for n, u in series)
            print(f"  {mode:<9} {line}")
        print()
    # Shape checks (paper): median utilization of working boards stays above
    # ~70% even with many failures, and sorting jobs helps.
    for cluster, per_mode in data.items():
        for mode, series in per_mode.items():
            assert all(u > 0.55 for _, u in series), (cluster, mode, series)
        worst_sorted = min(u for _, u in per_mode["sorted"])
        worst_unsorted = min(u for _, u in per_mode["unsorted"])
        assert worst_sorted >= worst_unsorted - 0.1
