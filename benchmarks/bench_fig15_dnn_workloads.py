"""Figure 15 and the Section V-B iteration-time results.

Regenerates (a) the per-topology iteration times of the five DNN workloads
(ResNet-152, GPT-3, GPT-3 MoE, CosmoFlow, DLRM) and (b) the relative cost
savings of Hx2Mesh/Hx4Mesh over the six baseline topologies.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_nested_table
from repro.workloads import get_workload

from _bench_utils import run_sweep


@pytest.mark.benchmark(group="fig15")
def test_dnn_iteration_times(benchmark):
    times = run_sweep(benchmark, "sectionVB", record="sectionVB_iteration_times")
    print()
    print(
        format_nested_table(
            "Section V-B - iteration times [ms]",
            {w: {t: v * 1000 for t, v in per.items()} for w, per in times.items()},
        )
    )
    gpt3 = next(k for k in times if k.startswith("GPT-3 ("))
    moe = next(k for k in times if "MoE" in k)
    resnet = next(k for k in times if "ResNet" in k)
    # Paper's qualitative results: the fat tree is fastest for GPT-3, the
    # torus is by far the slowest, HxMesh sits in between; ResNet overhead is
    # negligible on every topology.
    assert times[gpt3]["nonblocking fat tree"] <= times[gpt3]["Hx2Mesh"]
    assert times[gpt3]["2D torus"] > 1.4 * times[gpt3]["nonblocking fat tree"]
    assert times[moe]["Hx4Mesh"] > times[moe]["Hx2Mesh"]
    spread = max(times[resnet].values()) / min(times[resnet].values())
    assert spread < 1.05
    # calibration anchor: GPT-3 on the nonblocking fat tree matches the paper
    wl = get_workload("gpt3")
    assert times[gpt3]["nonblocking fat tree"] == pytest.approx(
        wl.paper_reference["nonblocking fat tree"], rel=0.08
    )


@pytest.mark.benchmark(group="fig15")
def test_fig15_relative_cost_savings(benchmark):
    savings = run_sweep(benchmark, "fig15", record="fig15_cost_savings")
    print()
    for hx, per_workload in savings.items():
        print(format_nested_table(f"Figure 15 - relative cost saving of {hx}", per_workload))
        print()
    hx2 = savings["Hx2Mesh"]
    hx4 = savings["Hx4Mesh"]
    resnet = next(k for k in hx2 if "ResNet" in k)
    gpt3 = next(k for k in hx2 if k.startswith("GPT-3 ("))
    # Headline conclusions of the paper: HxMesh is several times cheaper per
    # unit of DNN training performance than fat trees and Dragonfly for the
    # data-parallel workloads, still >1x for GPT-3, and Hx4Mesh saves more
    # than Hx2Mesh.
    assert hx2[resnet]["nonblocking fat tree"] > 3.0
    assert hx4[resnet]["nonblocking fat tree"] > hx2[resnet]["nonblocking fat tree"]
    assert hx2[gpt3]["nonblocking fat tree"] > 1.0
    assert hx2[resnet]["Dragonfly"] > 3.0
