"""Figure 11: alltoall bandwidth of the small topologies vs message size.

The large-message asymptote of every curve is measured with the flow-level
simulator (the same engine cells that feed Table II -- one
``measure_cluster_cell`` per topology); smaller message sizes follow the
balanced-shift alpha-beta model.
"""

from __future__ import annotations

import pytest

from repro.analysis import fig11_alltoall_sweep, format_series, network_profiles

from _bench_utils import bench_runner, run_once


@pytest.mark.benchmark(group="fig11")
def test_fig11_alltoall_bandwidth(benchmark, fidelity):
    def build():
        runner = bench_runner()
        profiles = network_profiles(
            "small",
            measure=True,
            num_phases=fidelity["small_phases"],
            max_paths=fidelity["max_paths"],
            runner=runner,
        )
        return fig11_alltoall_sweep("small", profiles=profiles, runner=runner)

    series = run_once(benchmark, build, record="fig11_alltoall")
    print()
    print(
        format_series(
            "Figure 11 - alltoall bandwidth (fraction of injection) vs message size [B]",
            series,
            x_label="message size",
            y_label="fraction of 1.6 Tb/s injection",
        )
    )
    # Shape checks: every curve saturates with message size, the fat tree
    # saturates near full injection, HxMesh near its bisection-limited share.
    ft = dict(series["nonblocking fat tree"])
    hx2 = dict(series["Hx2Mesh"])
    torus = dict(series["2D torus"])
    largest = max(ft)
    assert ft[largest] > 0.7
    assert 0.1 < hx2[largest] < 0.5
    assert torus[largest] < hx2[largest]
    for curve in series.values():
        values = [v for _, v in curve]
        assert values == sorted(values)
