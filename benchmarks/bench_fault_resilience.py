"""Fault-injection study: bandwidth retained under cable faults + event replay perf.

Two contracts, both recorded as ``BENCH_*`` artifacts:

* ``fault_resilience`` — the paper's graceful-degradation claim: for every
  ``(topology family, routing policy)`` pair, a nested schedule of dead
  cables degrades alltoall and permutation bandwidth *gradually* — on the
  HammingMesh families no pair disconnects and the fabric retains a
  documented fraction of its fault-free bandwidth at the deepest fault
  point.  The fault samples and the solver are deterministic, so the
  curves are also compared bit-identically to the committed baseline.

* ``fault_delta`` — the robustness-perf claim: replaying a fault-event
  schedule through :class:`FaultEventSolver` (warm delta re-solves of
  only the flows whose routes crossed the newly-dead cable) beats one
  cold max-min solve per event on the fig12-scale tapered fat tree, with
  the warm rates matching cold exactly.

The empty-fault-set identity (``degraded_route_table`` with no faults
*is* the shared memoized fault-free table) is asserted directly — the
``num_faults=0`` baseline row of the sweep is fault-free by construction,
not by numerical luck.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_nested_table

from _bench_utils import committed_artifact, run_once, run_sweep

_POLICIES = ("minimal", "ugal")
#: the HammingMesh headline: at the deepest committed fault point (8 dead
#: cables) the 2x2-board mesh must retain at least this fraction of its
#: fault-free alltoall bandwidth (measured ~0.84; the floor leaves room
#: for sampler-seed drift without letting the claim regress silently).
_HX_RETAINED_FLOOR = 0.75
#: conservative floor for the warm-vs-cold event replay (measured ~1.4-1.7x;
#: the win is bounded because every event still pays connectivity scans).
_DELTA_SPEEDUP_FLOOR = 1.15
_PARITY = 1e-9


@pytest.mark.benchmark(group="fault-resilience")
def test_bandwidth_retained_under_link_faults(benchmark):
    data = run_sweep(benchmark, "fault_resilience", record="fault_resilience")

    max_faults = {
        topo: entry["minimal"]["curve"][-1]["num_faults"]
        for topo, entry in data.items()
    }
    print()
    print(
        format_nested_table(
            "Retained alltoall fraction at the deepest fault point",
            {
                topo: {
                    pol: entry[pol]["curve"][-1]["retained_alltoall"]
                    for pol in _POLICIES
                }
                for topo, entry in data.items()
            },
            value_format="{:.4f}",
        )
    )

    for topo, entry in data.items():
        for pol in _POLICIES:
            curve = entry[pol]["curve"]
            # the fault-free row normalizes itself...
            assert curve[0]["num_faults"] == 0
            assert curve[0]["retained_alltoall"] == pytest.approx(1.0)
            assert curve[0]["disconnected_pairs"] == 0
            # ...and every deeper point stays a *bandwidth* loss, reported
            # per pair, never a crash (disconnections are counted, rates
            # stay well-formed).
            for point in curve:
                assert 0.0 <= point["retained_alltoall"] <= 1.0 + 1e-9, (topo, pol)
                assert point["disconnected_pairs"] >= 0
                assert point["dead_links"] >= point["num_faults"]  # cable = 2 links

    # The paper's claim, quantified: HammingMesh path diversity turns dead
    # cables into a modest bandwidth loss with zero disconnected pairs.
    for topo in ("hx2mesh",):
        for pol in _POLICIES:
            last = data[topo][pol]["curve"][-1]
            assert last["num_faults"] == max_faults[topo]
            assert last["disconnected_pairs"] == 0, (topo, pol)
            assert last["retained_alltoall"] >= _HX_RETAINED_FLOOR, (
                f"{topo}/{pol} retained only "
                f"{last['retained_alltoall']:.3f} of fault-free alltoall"
            )

    # --- deterministic study: bit-identical to the committed baseline.
    baseline = committed_artifact("fault_resilience")
    if baseline is not None:
        from repro.exp.recording import compact, to_jsonable

        compaction = baseline.get("compaction", {})
        fresh = compact(
            to_jsonable(data),
            float_digits=int(compaction.get("float_digits", 6)),
            max_series=int(compaction.get("max_series", 256)),
        )
        for topo, entry in baseline["result"].items():
            for pol in _POLICIES:
                assert fresh[topo][pol]["curve"] == entry[pol]["curve"], (
                    f"fault-resilience curve drifted from the committed "
                    f"baseline on ({topo}, {pol})"
                )


@pytest.mark.benchmark(group="fault-resilience")
def test_empty_fault_set_is_the_shared_table(benchmark):
    """No faults == the memoized fault-free table, by identity not tolerance."""
    from repro.analysis.figures import _routing_policy_topo
    from repro.sim import FaultSet
    from repro.sim.faults import degraded_route_table
    from repro.sim.routing import route_table_for

    def body():
        out = {}
        for topo_key in ("hx2mesh", "fattree_tapered"):
            topo = _routing_policy_topo(topo_key)
            for faults in (None, FaultSet.empty()):
                degraded = degraded_route_table(topo, faults, max_paths=8)
                shared = route_table_for(topo, max_paths=8)
                out[(topo_key, faults is None)] = degraded is shared
        return out

    identities = run_once(benchmark, body)
    assert all(identities.values()), identities


@pytest.mark.benchmark(group="fault-resilience")
def test_fault_event_replay_warm_beats_cold(benchmark):
    """Warm fault-event delta re-solves beat cold solves at fig12 scale."""
    from repro import obs
    from repro.exp.cells import fault_delta_cell

    delta = obs.counter("faults.delta_resolves")
    events = obs.counter("faults.events")
    before = (delta.value, events.value)

    def body():
        return {
            policy: fault_delta_cell(
                topo_key="fattree_tapered", policy=policy, num_events=6, repeats=5
            )
            for policy in ("minimal", "ecmp")
        }

    data = run_once(benchmark, body, record="fault_delta")

    print()
    print(
        format_nested_table(
            "Fault-event replay: warm delta vs cold per event (fattree_tapered)",
            {
                pol: {
                    "delta_ms": cell["delta_ms_per_event"],
                    "cold_ms": cell["cold_ms_per_event"],
                    "speedup": cell["speedup"],
                    "warm": cell["warm_events"],
                }
                for pol, cell in data.items()
            },
            value_format="{:.3f}",
        )
    )

    # the faults.* instrumentation must have seen the replays
    assert events.value > before[1]
    assert delta.value > before[0]

    for pol, cell in data.items():
        # exactness is non-negotiable on every event, warm or cold
        assert cell["max_abs_diff"] <= _PARITY, pol
    # minimal reroutes locally, so every event must ride the warm path...
    assert data["minimal"]["warm_events"] == data["minimal"]["num_events"]
    # ...while ECMP's hash modulus shifts under shrink: it must NOT claim warm
    assert data["ecmp"]["warm_events"] == 0
    speedup = data["minimal"]["speedup"]
    assert speedup >= _DELTA_SPEEDUP_FLOOR, (
        f"warm fault-event replay only {speedup:.2f}x cold"
    )


@pytest.mark.benchmark(group="fault-resilience")
def test_hardened_runner_survives_a_worker_crash(benchmark):
    """A hard-killed worker is retried on a fresh pool, not a sweep failure."""
    import os
    import tempfile

    from repro import obs
    from repro.exp import Runner, Scenario, kernel_ref
    from repro.exp.cells import fragile_cell

    retries = obs.counter("exp.worker_retries")

    def body():
        fd, sentinel = tempfile.mkstemp(prefix="bench_crash_once_")
        os.close(fd)
        os.unlink(sentinel)  # fragile_cell creates it on first (crashing) run
        fragile = kernel_ref(fragile_cell)
        cells = [Scenario(fragile, {"mode": "crash", "sentinel": sentinel, "value": 0})]
        cells += [Scenario(fragile, {"mode": "ok", "value": i}) for i in (1, 2, 3)]
        before = retries.value
        report = Runner(workers=2, cache=False, retry_backoff=0.1).run(cells)
        if os.path.exists(sentinel):
            os.unlink(sentinel)
        return {
            "values": sorted(v["value"] for v in report.values()),
            "worker_retries": retries.value - before,
            "quarantined": report.stats()["quarantined"],
        }

    data = run_once(benchmark, body)
    assert data["values"] == [0, 1, 2, 3]
    assert data["worker_retries"] >= 1, "exp.worker_retries never fired"
    assert data["quarantined"] == 0
