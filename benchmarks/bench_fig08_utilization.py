"""Figure 8: system utilization of the greedy allocator and its heuristics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_distribution_summary

from _bench_utils import run_sweep


@pytest.mark.benchmark(group="fig08")
def test_fig08_utilization(benchmark, fidelity):
    clusters = {
        "Small 16x16 Hx2Mesh": (16, 16),
        "Small 8x8 Hx4Mesh": (8, 8),
        "Large 32x32 Hx4Mesh": (32, 32),
    }
    if fidelity["include_large"]:
        clusters["Large 64x64 Hx2Mesh"] = (64, 64)

    data = run_sweep(
        benchmark,
        "fig8",
        record="fig08_utilization",
        clusters=clusters,
        num_traces=fidelity["traces"],
        seed=3,
    )
    print()
    for cluster, per_preset in data.items():
        print(format_distribution_summary(f"Figure 8 - {cluster} (utilization %)", per_preset))
        print()
    # Shape checks: heuristics never hurt, and sorted allocation reaches a
    # high median utilization as in the paper (>90%).
    for cluster, per_preset in data.items():
        base = np.median(per_preset["greedy"])
        best = np.median(per_preset["greedy+transpose+aspect+sort"])
        assert best >= base - 0.02
        assert best > 0.9
