"""Cluster lifetime simulation: dynamic counterparts of Figures 8 and 10.

Jobs arrive, run, and complete on a 16x16 Hx2Mesh while boards fail and
are repaired; the benchmark prints time-weighted utilization, wait time,
and slowdown per allocator preset / scheduling policy, and a failure
intensity sweep.  Each simulator configuration is one engine cell, so
``REPRO_BENCH_WORKERS=N`` parallelises across configurations.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_nested_table

from _bench_utils import run_sweep


@pytest.mark.benchmark(group="cluster")
def test_cluster_lifetime_policies(benchmark, fidelity):
    num_jobs = 1000 if fidelity["include_large"] else 400
    data = run_sweep(
        benchmark,
        "lifetime_policies",
        record="cluster_lifetime_policies",
        presets=("greedy", "greedy+transpose", "greedy+transpose+aspect"),
        policies=("fcfs", "fcfs+backfill"),
        num_jobs=num_jobs,
        seed=7,
    )
    print()
    print(
        format_nested_table(
            f"Cluster lifetime on a 16x16 Hx2Mesh ({num_jobs} jobs, MTBF 80h)",
            data,
            value_format="{:.3g}",
        )
    )
    # Shape checks: every policy keeps the cluster busy, and backfilling
    # strictly reduces waiting over plain FCFS for the same allocator.
    for label, row in data.items():
        assert 0.3 < row["time_weighted_utilization"] <= 1.0, (label, row)
    for preset in ("greedy", "greedy+transpose+aspect"):
        fcfs = data[f"{preset} / fcfs"]["mean_wait_time"]
        backfill = data[f"{preset} / fcfs+backfill"]["mean_wait_time"]
        assert backfill <= fcfs, (preset, fcfs, backfill)


@pytest.mark.benchmark(group="cluster")
def test_cluster_lifetime_failure_sweep(benchmark, fidelity):
    num_jobs = 600 if fidelity["include_large"] else 300
    data = run_sweep(
        benchmark,
        "lifetime_failures",
        record="cluster_lifetime_failure_sweep",
        mtbf_hours=(320.0, 80.0, 20.0),
        num_jobs=num_jobs,
        seed=7,
    )
    print()
    print(
        format_nested_table(
            f"Failure intensity sweep ({num_jobs} jobs, MTTR 2h, requeue)",
            data,
            value_format="{:.3g}",
        )
    )
    # More frequent failures mean more recorded failures and evictions.
    rows = list(data.values())
    assert rows[0]["failures"] <= rows[-1]["failures"]
    for row in rows:
        assert 0.2 < row["time_weighted_utilization"] <= 1.0
