"""Scale-out simulation path: memory-budgeted routing + batched max-min.

The large-N contract of the simulator substrate, asserted and recorded in
``BENCH_scaleout.json``:

* **Memory budget**: a 4,096-accelerator ``Hx2Mesh(2,2,32,32)`` permutation
  sweep runs end-to-end through the experiment engine (the registered
  ``scaleout_permutation`` sweep) with the route table under a hard byte
  budget — the sharded table's resident bytes stay at or below the budget
  and the whole run's peak RSS stays below a hard process cap.  The
  committed artifact carries the dense-pair-index projection next to the
  measured resident bytes as the before/after evidence.
* **Batched solver**: stacking a fig12-style permutation sweep into one
  :meth:`~repro.sim.flowsim.FlowSimulator.maxmin_rates_batch` call is at
  least 2x faster than per-scenario solves, with bit-identical rates.
* **Zero-copy parallel**: the 4,096-endpoint sweep re-runs on a 2-worker
  persistent pool seeded with the parent's shared-memory route table.
  Workers attach instead of rebuilding: per-worker private route-table
  bytes stay below 25% of the shared footprint (an unseeded pool's workers
  rebuild their share of it), and the parallel payload is bit-identical to
  the serial one.
* **Sparse link-space solver**: job-local permutations (256-rank slabs of
  the 4,096-endpoint fabric — the paper's multi-job regime, a few percent
  of links active) solve at least 1.5x faster with the compacted
  link-space water-fill than with the dense O(L) path, bit-identically
  (``REPRO_SPARSE_LINKS=0`` pins the dense reference).
* **Headline scale**: the 16,384-accelerator ``Hx2Mesh(2,2,64,64)`` sweep
  (whose dense pair index alone would need ~7.7 GB) runs under a 4 GB
  route-table budget.  It costs tens of seconds, so it only re-runs when
  ``REPRO_BENCH_SCALEOUT_FULL=1`` is set (the baseline-regeneration mode);
  ordinary perf-smoke runs carry the committed baseline's headline
  evidence forward unchanged.

Fresh runs are compared against the committed baseline (within 2x,
absolute wall-clock — set ``REPRO_BENCH_SKIP_BASELINE=1`` on hardware
where that is meaningless).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro.obs as obs
from repro.exp import Runner, Scenario, run_sweep
from repro.exp.cells import flowsim_batch_cell
from repro.exp.scenario import kernel_ref
from repro.sim import clear_route_tables, live_route_tables, parse_mem_budget
from repro.sim.traffic import Flow

from _bench_utils import bench_runner, committed_artifact, run_once

#: CI-scale budgeted sweep: 4,096 accelerators under a deliberately tight
#: route-table budget (the eager pair index would take ~429 MB).
CI_TOPO = dict(a=2, b=2, x=32, y=32)
CI_BUDGET = "256M"
#: Hard cap on the whole process' peak RSS during the budgeted sweep.
CI_RSS_CAP = 2 << 30
#: Headline scale (run with REPRO_BENCH_SCALEOUT_FULL=1): 16,384
#: accelerators under the 4 GB budget of the acceptance criterion.
FULL_TOPO = dict(a=2, b=2, x=64, y=64)
FULL_BUDGET = "4G"
#: Zero-copy parallel contract: workers in a seeded warm pool must keep
#: their private route-table bytes below this fraction of the shared
#: footprint (an unseeded worker rebuilds its share of the table).
PARALLEL_WORKERS = 2
PARALLEL_TABLE_FRACTION = 0.25
#: Sparse link-space contract: job-local permutations (slab-rank blocks of
#: the 4k fabric) must solve at least this much faster than the dense path.
SPARSE_SPEEDUP_FLOOR = 1.5
SPARSE_SLAB = 256


def _eager_pair_index_bytes(a: int, b: int, x: int, y: int) -> int:
    """Projected bytes of the dense O(nodes^2) pair index (the "before")."""
    from repro.core import build_hammingmesh

    n = build_hammingmesh(a, b, x, y).num_nodes
    return 3 * 8 * n * n


def _budgeted_sweep(topo: dict, budget: str, num_permutations: int) -> dict:
    """Run the registered scale-out sweep under ``budget``; gather evidence."""
    clear_route_tables()
    # In-process on purpose (not bench_runner): the route table the sweep
    # builds must stay inspectable via live_route_tables() afterwards.
    run = run_sweep(
        "scaleout_permutation",
        runner=Runner(workers=1, cache=False),
        mem_budget=budget,
        num_permutations=num_permutations,
        **topo,
    )
    stats = run.report.stats()
    tables = [t for t in live_route_tables() if t.is_sharded]
    resident = max((t.estimated_csr_bytes() for t in tables), default=0)
    evidence = {
        "topology": dict(topo),
        "accelerators": topo["a"] * topo["b"] * topo["x"] * topo["y"],
        "mem_budget": budget,
        "mem_budget_bytes": parse_mem_budget(budget),
        "eager_pair_index_bytes": _eager_pair_index_bytes(**topo),
        "sharded": bool(tables),
        "resident_bytes": int(resident),
        "peak_rss_bytes": stats["peak_rss_bytes"],
        "wall_seconds": stats["wall_seconds"],
        "num_permutations": num_permutations,
        "mean_fraction": run.payload["mean_fraction"],
        "min_fraction": run.payload["min_fraction"],
    }
    clear_route_tables()
    return evidence


def _run_cell(kernel, **params):
    report = bench_runner().run(Scenario(kernel_ref(kernel), params))
    return report.values()[0]


def _worker_memory(report) -> dict:
    """Worst per-cell worker memory of a run (live cells only)."""
    table_bytes = [(c.memory or {}).get("route_table_bytes") for c in report.cells]
    anon = [(c.memory or {}).get("anon_growth_bytes") for c in report.cells]
    table_bytes = [b for b in table_bytes if b is not None]
    anon = [a for a in anon if a is not None]
    return {
        "route_table_bytes": max(table_bytes, default=None),
        "anon_growth_bytes": max(anon, default=None),
    }


def _parallel_sweep(topo: dict, budget: str, num_permutations: int, workers: int) -> dict:
    """Cold serial build -> seeded warm pool -> unseeded rebuild; evidence.

    The cold pass builds the sharded route table in-process; the warm pass
    re-runs the same grid on a persistent pool whose initializer seeds
    every worker with the table's shared-memory handle (workers attach
    zero-copy); the rebuild pass runs once more on an unseeded pool as the
    per-worker-memory "before".  All three payloads must agree
    bit-for-bit.
    """
    params = dict(mem_budget=budget, num_permutations=num_permutations, **topo)
    clear_route_tables()
    cold = run_sweep(
        "scaleout_permutation", runner=Runner(workers=1, cache=False), **params
    )
    tables = [t for t in live_route_tables() if t.is_sharded]
    footprint = max((t.estimated_csr_bytes() for t in tables), default=0)
    with Runner(workers=workers, cache=False) as runner:
        warm = run_sweep("scaleout_permutation", runner=runner, **params)
        shared_bytes = obs.snapshot()["gauges"].get("routing.shm_bytes", 0)
    clear_route_tables()  # unseeded "before": each worker rebuilds its share
    with Runner(workers=workers, cache=False) as runner:
        rebuild = run_sweep("scaleout_permutation", runner=runner, **params)
    evidence = {
        "workers": workers,
        "num_permutations": num_permutations,
        "table_footprint_bytes": int(footprint),
        "shared_segment_bytes": int(shared_bytes),
        "warm_worker": _worker_memory(warm.report),
        "rebuild_worker": _worker_memory(rebuild.report),
        "cold_wall_seconds": cold.report.stats()["wall_seconds"],
        "warm_wall_seconds": warm.report.stats()["wall_seconds"],
        "warm_chunks": warm.report.chunks,
        "bit_identical": cold.payload == warm.payload == rebuild.payload,
    }
    clear_route_tables()
    return evidence


def _slab_permutation(base: int, slab: int, seed: int) -> list:
    """A random derangement among ranks ``[base, base + slab)``."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(slab)
    while np.any(perm == np.arange(slab)):
        perm = np.roll(perm, 1)
    return [Flow(base + i, base + int(perm[i])) for i in range(slab)]


def _sparse_vs_dense(
    topo: dict, budget: str, *, slab: int = SPARSE_SLAB, scenarios: int = 8, rounds: int = 3
) -> dict:
    """Job-local permutations on the full fabric: compacted vs dense solves.

    Permutations among ``slab``-rank blocks of the fabric model the
    paper's multi-job regime: each scenario touches a few percent of the
    links, which is where the dense solver's O(L) per-round arrays waste
    their work.  Both paths run on identical inputs (min-of-``rounds``
    timing after a warm-up that routes the pairs and builds the
    assignments) and must agree bit-for-bit.
    """
    from repro.core import build_hammingmesh
    from repro.sim import FlowSimulator

    clear_route_tables()
    fabric = build_hammingmesh(**topo)
    p = fabric.num_accelerators
    flow_sets = [
        _slab_permutation((s % (p // slab)) * slab, slab, s) for s in range(scenarios)
    ]
    sim = FlowSimulator(fabric, max_paths=8, mem_budget=budget)

    def timed(fn, flag):
        prev = os.environ.get("REPRO_SPARSE_LINKS")
        os.environ["REPRO_SPARSE_LINKS"] = flag
        try:
            result = fn()  # warm-up: routes the pairs, fills assignment caches
            best = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                result = fn()
                best = min(best, time.perf_counter() - start)
        finally:
            if prev is None:
                os.environ.pop("REPRO_SPARSE_LINKS", None)
            else:
                os.environ["REPRO_SPARSE_LINKS"] = prev
        return result, best

    solo_dense, solo_dense_s = timed(lambda: sim.maxmin_rates(flow_sets[0]), "0")
    solo_sparse, solo_sparse_s = timed(lambda: sim.maxmin_rates(flow_sets[0]), "1")
    batch_dense, batch_dense_s = timed(lambda: sim.maxmin_rates_batch(flow_sets), "0")
    batch_sparse, batch_sparse_s = timed(lambda: sim.maxmin_rates_batch(flow_sets), "1")

    pairs = [(solo_dense, solo_sparse)] + list(zip(batch_dense, batch_sparse))
    bitwise = all(
        np.array_equal(d.flow_rates, s.flow_rates)
        and np.array_equal(d.link_utilization, s.link_utilization)
        and int(d.bottleneck_link) == int(s.bottleneck_link)
        for d, s in pairs
    )
    max_abs = max(
        float(np.max(np.abs(np.asarray(d.flow_rates) - np.asarray(s.flow_rates))))
        for d, s in pairs
    )
    num_links = len(solo_dense.link_utilization)
    evidence = {
        "fabric_accelerators": int(p),
        "slab_ranks": slab,
        "scenarios": scenarios,
        "active_link_fraction": float(
            np.count_nonzero(solo_dense.link_utilization) / num_links
        ),
        "solo": {
            "dense_seconds": solo_dense_s,
            "sparse_seconds": solo_sparse_s,
            "speedup": solo_dense_s / solo_sparse_s,
        },
        "batch": {
            "dense_seconds": batch_dense_s,
            "sparse_seconds": batch_sparse_s,
            "speedup": batch_dense_s / batch_sparse_s,
        },
        "bit_identical": bitwise,
        "max_abs_diff": max_abs,
    }
    clear_route_tables()
    return evidence


@pytest.mark.benchmark(group="scaleout")
def test_scaleout_path(benchmark):
    """Budget + batch + headline contracts, recorded as one artifact."""
    # Read the committed baseline before run_once regenerates the artifact.
    baseline = committed_artifact("scaleout")

    def run():
        budgeted = _budgeted_sweep(CI_TOPO, CI_BUDGET, num_permutations=4)
        serial = _run_cell(flowsim_batch_cell, impl="serial")
        batched = _run_cell(flowsim_batch_cell, impl="batched")
        batch = {
            "before": serial,
            "after": batched,
            "speedup": serial["seconds"] / batched["seconds"],
        }
        parallel = _parallel_sweep(
            CI_TOPO, CI_BUDGET, num_permutations=4, workers=PARALLEL_WORKERS
        )
        sparse = _sparse_vs_dense(CI_TOPO, CI_BUDGET)
        headline = None
        if os.environ.get("REPRO_BENCH_SCALEOUT_FULL"):
            headline = _budgeted_sweep(FULL_TOPO, FULL_BUDGET, num_permutations=2)
        elif baseline and isinstance(baseline.get("result"), dict):
            headline = baseline["result"].get("headline")
        return {
            "budgeted": budgeted,
            "batch": batch,
            "parallel": parallel,
            "sparse": sparse,
            "headline": headline,
        }

    data = run_once(benchmark, run, record="scaleout")
    budgeted, batch = data["budgeted"], data["batch"]
    parallel, sparse = data["parallel"], data["sparse"]
    print(
        f"\nbudgeted sweep ({budgeted['accelerators']} accels @ {CI_BUDGET}): "
        f"resident {budgeted['resident_bytes'] / 1e6:.1f} MB "
        f"(eager projection {budgeted['eager_pair_index_bytes'] / 1e6:.0f} MB), "
        f"peak RSS {budgeted['peak_rss_bytes'] / 1e6:.0f} MB, "
        f"{budgeted['wall_seconds']:.1f}s"
    )
    print(
        f"batched max-min: serial {batch['before']['seconds'] * 1e3:.0f} ms, "
        f"batched {batch['after']['seconds'] * 1e3:.0f} ms "
        f"({batch['speedup']:.2f}x)"
    )
    warm_tb = parallel["warm_worker"]["route_table_bytes"]
    rebuild_tb = parallel["rebuild_worker"]["route_table_bytes"]
    print(
        f"zero-copy parallel ({parallel['workers']} workers, "
        f"{parallel['warm_chunks']} chunks): shared table "
        f"{parallel['table_footprint_bytes'] / 1e6:.1f} MB, per-worker private "
        f"{(warm_tb or 0) / 1e6:.2f} MB warm vs {(rebuild_tb or 0) / 1e6:.2f} MB "
        f"rebuild, bit-identical={parallel['bit_identical']}"
    )
    print(
        f"sparse link-space ({sparse['slab_ranks']}-rank slabs, "
        f"{sparse['active_link_fraction'] * 100:.1f}% links active): "
        f"solo {sparse['solo']['speedup']:.2f}x, "
        f"batch {sparse['batch']['speedup']:.2f}x, "
        f"bit-identical={sparse['bit_identical']}"
    )

    # -- memory-budget contract ------------------------------------------
    assert budgeted["sharded"], "budget below the eager footprint must shard"
    assert budgeted["resident_bytes"] <= budgeted["mem_budget_bytes"], (
        f"resident {budgeted['resident_bytes']} exceeds the "
        f"{budgeted['mem_budget_bytes']}-byte budget"
    )
    assert budgeted["peak_rss_bytes"] is not None
    assert budgeted["peak_rss_bytes"] < CI_RSS_CAP, (
        f"peak RSS {budgeted['peak_rss_bytes'] / 1e9:.2f} GB breached the "
        f"{CI_RSS_CAP / 1e9:.0f} GB cap"
    )
    assert 0.0 < budgeted["min_fraction"] <= budgeted["mean_fraction"] <= 1.0

    # -- batched-solver contract -----------------------------------------
    # The batch solver is bit-identical to the serial one, so the means
    # must agree exactly, not approximately.
    assert batch["after"]["mean_rates"] == batch["before"]["mean_rates"]
    assert batch["speedup"] >= 2.0, (
        f"batched max-min is only {batch['speedup']:.2f}x the serial solver"
    )

    # -- zero-copy parallel contract ---------------------------------------
    assert parallel["bit_identical"], (
        "parallel (warm + rebuild) payloads diverged from the serial run"
    )
    assert parallel["table_footprint_bytes"] > 0
    assert parallel["warm_chunks"] >= 2, (
        "single-topology sweep did not split across workers"
    )
    assert warm_tb is not None and rebuild_tb is not None
    cap = PARALLEL_TABLE_FRACTION * parallel["table_footprint_bytes"]
    assert warm_tb <= cap, (
        f"seeded worker rebuilt {warm_tb / 1e6:.2f} MB of route table, above "
        f"{PARALLEL_TABLE_FRACTION:.0%} of the {cap / PARALLEL_TABLE_FRACTION / 1e6:.1f} MB "
        f"shared footprint"
    )
    assert warm_tb < rebuild_tb, (
        "seeded workers should build strictly less route table than unseeded ones"
    )

    # -- sparse link-space contract ----------------------------------------
    assert sparse["bit_identical"], "sparse solver diverged from the dense path"
    assert sparse["max_abs_diff"] <= 1e-12
    assert sparse["solo"]["speedup"] >= SPARSE_SPEEDUP_FLOOR, (
        f"sparse solo solve is only {sparse['solo']['speedup']:.2f}x dense"
    )
    assert sparse["batch"]["speedup"] >= SPARSE_SPEEDUP_FLOOR, (
        f"sparse batch solve is only {sparse['batch']['speedup']:.2f}x dense"
    )

    # -- headline evidence ------------------------------------------------
    headline = data["headline"]
    if headline is not None:
        assert headline["sharded"]
        assert headline["resident_bytes"] <= headline["mem_budget_bytes"]
        assert headline["eager_pair_index_bytes"] > headline["mem_budget_bytes"], (
            "headline config must be infeasible without the budget"
        )

    if baseline and isinstance(baseline.get("result"), dict):
        committed = baseline["result"].get("budgeted", {}).get("wall_seconds")
        if committed:
            assert budgeted["wall_seconds"] <= committed * 2.0, (
                f"budgeted sweep took {budgeted['wall_seconds']:.1f}s, more "
                f"than 2x the committed baseline {committed:.1f}s"
            )
