"""Scale-out simulation path: memory-budgeted routing + batched max-min.

The large-N contract of the simulator substrate, asserted and recorded in
``BENCH_scaleout.json``:

* **Memory budget**: a 4,096-accelerator ``Hx2Mesh(2,2,32,32)`` permutation
  sweep runs end-to-end through the experiment engine (the registered
  ``scaleout_permutation`` sweep) with the route table under a hard byte
  budget — the sharded table's resident bytes stay at or below the budget
  and the whole run's peak RSS stays below a hard process cap.  The
  committed artifact carries the dense-pair-index projection next to the
  measured resident bytes as the before/after evidence.
* **Batched solver**: stacking a fig12-style permutation sweep into one
  :meth:`~repro.sim.flowsim.FlowSimulator.maxmin_rates_batch` call is at
  least 2x faster than per-scenario solves, with bit-identical rates.
* **Headline scale**: the 16,384-accelerator ``Hx2Mesh(2,2,64,64)`` sweep
  (whose dense pair index alone would need ~7.7 GB) runs under a 4 GB
  route-table budget.  It costs tens of seconds, so it only re-runs when
  ``REPRO_BENCH_SCALEOUT_FULL=1`` is set (the baseline-regeneration mode);
  ordinary perf-smoke runs carry the committed baseline's headline
  evidence forward unchanged.

Fresh runs are compared against the committed baseline (within 2x,
absolute wall-clock — set ``REPRO_BENCH_SKIP_BASELINE=1`` on hardware
where that is meaningless).
"""

from __future__ import annotations

import os

import pytest

from repro.exp import Runner, Scenario, run_sweep
from repro.exp.cells import flowsim_batch_cell
from repro.exp.scenario import kernel_ref
from repro.sim import clear_route_tables, live_route_tables, parse_mem_budget

from _bench_utils import bench_runner, committed_artifact, run_once

#: CI-scale budgeted sweep: 4,096 accelerators under a deliberately tight
#: route-table budget (the eager pair index would take ~429 MB).
CI_TOPO = dict(a=2, b=2, x=32, y=32)
CI_BUDGET = "256M"
#: Hard cap on the whole process' peak RSS during the budgeted sweep.
CI_RSS_CAP = 2 << 30
#: Headline scale (run with REPRO_BENCH_SCALEOUT_FULL=1): 16,384
#: accelerators under the 4 GB budget of the acceptance criterion.
FULL_TOPO = dict(a=2, b=2, x=64, y=64)
FULL_BUDGET = "4G"


def _eager_pair_index_bytes(a: int, b: int, x: int, y: int) -> int:
    """Projected bytes of the dense O(nodes^2) pair index (the "before")."""
    from repro.core import build_hammingmesh

    n = build_hammingmesh(a, b, x, y).num_nodes
    return 3 * 8 * n * n


def _budgeted_sweep(topo: dict, budget: str, num_permutations: int) -> dict:
    """Run the registered scale-out sweep under ``budget``; gather evidence."""
    clear_route_tables()
    # In-process on purpose (not bench_runner): the route table the sweep
    # builds must stay inspectable via live_route_tables() afterwards.
    run = run_sweep(
        "scaleout_permutation",
        runner=Runner(workers=1, cache=False),
        mem_budget=budget,
        num_permutations=num_permutations,
        **topo,
    )
    stats = run.report.stats()
    tables = [t for t in live_route_tables() if t.is_sharded]
    resident = max((t.estimated_csr_bytes() for t in tables), default=0)
    evidence = {
        "topology": dict(topo),
        "accelerators": topo["a"] * topo["b"] * topo["x"] * topo["y"],
        "mem_budget": budget,
        "mem_budget_bytes": parse_mem_budget(budget),
        "eager_pair_index_bytes": _eager_pair_index_bytes(**topo),
        "sharded": bool(tables),
        "resident_bytes": int(resident),
        "peak_rss_bytes": stats["peak_rss_bytes"],
        "wall_seconds": stats["wall_seconds"],
        "num_permutations": num_permutations,
        "mean_fraction": run.payload["mean_fraction"],
        "min_fraction": run.payload["min_fraction"],
    }
    clear_route_tables()
    return evidence


def _run_cell(kernel, **params):
    report = bench_runner().run(Scenario(kernel_ref(kernel), params))
    return report.values()[0]


@pytest.mark.benchmark(group="scaleout")
def test_scaleout_path(benchmark):
    """Budget + batch + headline contracts, recorded as one artifact."""
    # Read the committed baseline before run_once regenerates the artifact.
    baseline = committed_artifact("scaleout")

    def run():
        budgeted = _budgeted_sweep(CI_TOPO, CI_BUDGET, num_permutations=4)
        serial = _run_cell(flowsim_batch_cell, impl="serial")
        batched = _run_cell(flowsim_batch_cell, impl="batched")
        batch = {
            "before": serial,
            "after": batched,
            "speedup": serial["seconds"] / batched["seconds"],
        }
        headline = None
        if os.environ.get("REPRO_BENCH_SCALEOUT_FULL"):
            headline = _budgeted_sweep(FULL_TOPO, FULL_BUDGET, num_permutations=2)
        elif baseline and isinstance(baseline.get("result"), dict):
            headline = baseline["result"].get("headline")
        return {"budgeted": budgeted, "batch": batch, "headline": headline}

    data = run_once(benchmark, run, record="scaleout")
    budgeted, batch = data["budgeted"], data["batch"]
    print(
        f"\nbudgeted sweep ({budgeted['accelerators']} accels @ {CI_BUDGET}): "
        f"resident {budgeted['resident_bytes'] / 1e6:.1f} MB "
        f"(eager projection {budgeted['eager_pair_index_bytes'] / 1e6:.0f} MB), "
        f"peak RSS {budgeted['peak_rss_bytes'] / 1e6:.0f} MB, "
        f"{budgeted['wall_seconds']:.1f}s"
    )
    print(
        f"batched max-min: serial {batch['before']['seconds'] * 1e3:.0f} ms, "
        f"batched {batch['after']['seconds'] * 1e3:.0f} ms "
        f"({batch['speedup']:.2f}x)"
    )

    # -- memory-budget contract ------------------------------------------
    assert budgeted["sharded"], "budget below the eager footprint must shard"
    assert budgeted["resident_bytes"] <= budgeted["mem_budget_bytes"], (
        f"resident {budgeted['resident_bytes']} exceeds the "
        f"{budgeted['mem_budget_bytes']}-byte budget"
    )
    assert budgeted["peak_rss_bytes"] is not None
    assert budgeted["peak_rss_bytes"] < CI_RSS_CAP, (
        f"peak RSS {budgeted['peak_rss_bytes'] / 1e9:.2f} GB breached the "
        f"{CI_RSS_CAP / 1e9:.0f} GB cap"
    )
    assert 0.0 < budgeted["min_fraction"] <= budgeted["mean_fraction"] <= 1.0

    # -- batched-solver contract -----------------------------------------
    # The batch solver is bit-identical to the serial one, so the means
    # must agree exactly, not approximately.
    assert batch["after"]["mean_rates"] == batch["before"]["mean_rates"]
    assert batch["speedup"] >= 2.0, (
        f"batched max-min is only {batch['speedup']:.2f}x the serial solver"
    )

    # -- headline evidence ------------------------------------------------
    headline = data["headline"]
    if headline is not None:
        assert headline["sharded"]
        assert headline["resident_bytes"] <= headline["mem_budget_bytes"]
        assert headline["eager_pair_index_bytes"] > headline["mem_budget_bytes"], (
            "headline config must be infeasible without the budget"
        )

    if baseline and isinstance(baseline.get("result"), dict):
        committed = baseline["result"].get("budgeted", {}).get("wall_seconds")
        if committed:
            assert budgeted["wall_seconds"] <= committed * 2.0, (
                f"budgeted sweep took {budgeted['wall_seconds']:.1f}s, more "
                f"than 2x the committed baseline {committed:.1f}s"
            )
