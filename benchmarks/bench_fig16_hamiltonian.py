"""Figure 16 / Listing 1: edge-disjoint Hamiltonian cycle construction."""

from __future__ import annotations

import pytest

from repro.collectives import (
    are_edge_disjoint,
    disjoint_hamiltonian_cycles,
    is_hamiltonian_cycle,
)

from _bench_utils import run_once, run_sweep


@pytest.mark.benchmark(group="fig16")
def test_fig16_example_tori(benchmark):
    cycles = run_sweep(benchmark, "fig16", record="fig16_hamiltonian")
    print()
    print("Figure 16 - edge-disjoint Hamiltonian cycles")
    for (rows, cols), (red, green) in cycles.items():
        print(f"  {rows}x{cols}: red starts {red[:4]} ... green starts {green[:4]} ...")
        assert is_hamiltonian_cycle(red, rows, cols)
        assert is_hamiltonian_cycle(green, rows, cols)
        assert are_edge_disjoint(red, green)


@pytest.mark.benchmark(group="fig16")
def test_fig16_large_grid_construction_speed(benchmark):
    """Cycle construction must scale to the large 128x128 accelerator grid."""
    red, green = run_once(benchmark, disjoint_hamiltonian_cycles, 128, 128)
    assert len(red) == len(green) == 128 * 128
    assert are_edge_disjoint(red, green)
