"""Benchmark regenerating Table II: cost, bandwidth, diameter of all topologies.

Prints the measured table next to the paper's published values.  The small
(~1k accelerator) cluster is always evaluated; the large (~16k) cluster is
included with ``REPRO_FULL=1`` (it takes considerably longer because every
topology graph has ~16k endpoints).  Both sweeps run one engine cell per
topology, so ``REPRO_BENCH_WORKERS=N`` parallelises across topologies.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table2

from _bench_utils import run_sweep


@pytest.mark.benchmark(group="table2")
def test_table2_small_cluster(benchmark, fidelity):
    rows = run_sweep(
        benchmark,
        "table2",
        record="table2_small",
        cluster="small",
        num_phases=fidelity["small_phases"],
        max_paths=fidelity["max_paths"],
    )
    print()
    print("Table II - small cluster (~1,024 accelerators)")
    print(format_table2(rows))
    labels = {r.key: r for r in rows}
    # Shape checks mirroring the paper's conclusions.
    assert labels["hx2mesh"].cost_millions < labels["ft_nonblocking"].cost_millions / 3
    assert labels["hx4mesh"].allreduce_saving > labels["ft_nonblocking"].allreduce_saving
    assert labels["torus"].global_bw_percent < labels["hx2mesh"].global_bw_percent


@pytest.mark.benchmark(group="table2")
def test_table2_large_cluster(benchmark, fidelity):
    if not fidelity["include_large"]:
        pytest.skip("large-cluster Table II needs REPRO_FULL=1")

    rows = run_sweep(
        benchmark,
        "table2",
        record="table2_large",
        cluster="large",
        num_phases=fidelity["large_phases"],
        max_paths=4,
    )
    print()
    print("Table II - large cluster (~16,384 accelerators)")
    print(format_table2(rows))


@pytest.mark.benchmark(group="table2")
def test_table2_cost_column_only(benchmark):
    """The cost column alone (cheap, always runs at full scale)."""
    costs = run_sweep(benchmark, "table2_costs", record="table2_costs")
    print()
    for cluster, values in costs.items():
        print(f"Network cost [$M] - {cluster} cluster")
        for label, millions in values.items():
            print(f"  {label:<24} {millions:10.1f}")
    assert costs["large"]["Hx4Mesh"] < costs["large"]["nonblocking fat tree"] / 10
