"""Routing-policy study: adversarial vs random permutation throughput.

Reproduces the Section IV-C minimal-vs-non-minimal discussion as a sweep
over ``(topology family, routing policy)``: each family's structural
worst-case permutation (:func:`repro.sim.traffic.adversarial_permutation`)
is measured under ``minimal`` / ``ecmp`` / ``valiant`` / ``ugal`` routing.
The expected picture, asserted below and recorded in
``BENCH_routing_policies.json``:

* ``ugal`` recovers the bandwidth minimal routing loses on the adversarial
  patterns (>= 1.5x on the tapered HxMesh hot-row tornado) while matching
  minimal routing on benign random permutations — and on the untapered
  Hx2Mesh, whose single-switch row networks the tornado cannot congest,
  it correctly refuses to misroute at all;
* oblivious ``valiant`` beats minimal on the classic worst cases of the
  torus / Dragonfly / HyperX, but *not* on the HammingMesh, where
  misrouting every flow wastes the scarce tapered board-escape bandwidth —
  only congestion-aware (adaptive) non-minimal routing helps there, which
  is exactly the paper's argument for adaptive routing;
* ``minimal`` numbers are bit-identical to the committed baseline (the
  policy layer must not perturb the default routing).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_nested_table

from _bench_utils import committed_artifact, run_sweep

#: committed-baseline comparisons use the artifact's float rounding
_POLICIES = ("minimal", "ecmp", "valiant", "ugal")


@pytest.mark.benchmark(group="routing-policies")
def test_routing_policy_adversarial_study(benchmark):
    data = run_sweep(benchmark, "routing_policy_sweep", record="routing_policies")

    print()
    print(
        format_nested_table(
            "Adversarial worst-case receive fraction per routing policy",
            {
                topo: {pol: entry[pol]["adversarial_worst"] for pol in _POLICIES}
                for topo, entry in data.items()
            },
            value_format="{:.4f}",
        )
    )
    print(
        format_nested_table(
            "Random-permutation mean receive fraction per routing policy",
            {
                topo: {pol: entry[pol]["random_mean"] for pol in _POLICIES}
                for topo, entry in data.items()
            },
            value_format="{:.4f}",
        )
    )

    # --- the headline claim: adaptive non-minimal routing rescues the
    # tapered HxMesh's adversarial worst case...
    hx = data["hx4mesh_tapered"]
    assert hx["ugal"]["adversarial_worst"] >= 1.5 * hx["minimal"]["adversarial_worst"]
    # ...whereas the untapered Hx2Mesh's single-switch row networks are
    # non-blocking, so its tornado congests nothing and UGAL must *not*
    # misroute (equality, not improvement, is the correct answer there).
    hx2 = data["hx2mesh"]
    assert hx2["ugal"]["adversarial_worst"] == pytest.approx(
        hx2["minimal"]["adversarial_worst"], rel=1e-9
    )
    # ...without giving up benign-traffic bandwidth.
    for topo, entry in data.items():
        assert entry["ugal"]["random_mean"] >= 0.93 * entry["minimal"]["random_mean"], topo

    # Oblivious Valiant wins the classic worst cases of the switch/ring
    # families, and every family's UGAL is at least as good as minimal.
    for topo in ("torus", "dragonfly", "hyperx"):
        assert data[topo]["valiant"]["adversarial_worst"] > data[topo]["minimal"]["adversarial_worst"]
    for topo, entry in data.items():
        assert entry["ugal"]["adversarial_worst"] >= entry["minimal"]["adversarial_worst"] - 1e-12

    # ECMP (single static path) never beats the adaptive minimal baseline.
    for topo, entry in data.items():
        assert entry["ecmp"]["random_mean"] <= entry["minimal"]["random_mean"] + 1e-9

    # --- minimal-policy numbers must be bit-identical to the committed
    # pre-refactor baseline (same rounding as the artifact writer).
    baseline = committed_artifact("routing_policies")
    if baseline is not None:
        from repro.exp.recording import compact, to_jsonable

        compaction = baseline.get("compaction", {})
        fresh = compact(
            to_jsonable(data),
            float_digits=int(compaction.get("float_digits", 6)),
            max_series=int(compaction.get("max_series", 256)),
        )
        for topo, entry in baseline["result"].items():
            assert fresh[topo]["minimal"] == entry["minimal"], (
                f"minimal-policy numbers drifted from the committed baseline on {topo}"
            )


@pytest.mark.benchmark(group="routing-policies")
def test_minimal_policy_is_bit_identical_to_default_routing(benchmark):
    """The policy layer must not perturb default routing: a simulator built
    without any policy argument and one built with ``policy="minimal"``
    produce bit-identical permutation bandwidths on the study's HxMesh."""
    from repro.analysis.figures import _routing_policy_topo
    from repro.sim import FlowSimulator, random_permutation

    def body():
        topo = _routing_policy_topo("hx4mesh_tapered")
        flows = random_permutation(topo.num_accelerators, seed=7)
        legacy = FlowSimulator(topo, max_paths=8).permutation_bandwidths(flows)
        policy = FlowSimulator(topo, max_paths=8, policy="minimal").permutation_bandwidths(flows)
        return bool((legacy == policy).all())

    assert benchmark.pedantic(body, rounds=1, iterations=1)
