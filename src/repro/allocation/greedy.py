"""Greedy HxMesh job allocation with the paper's optimization heuristics.

Section IV-A describes a simple greedy strategy for allocating an
``au x bv`` job onto an ``x`` x ``y`` HxMesh (at board granularity, a
``u x v`` board request):

1. collect the free column indices of every row,
2. start from the first row with at least ``v`` free columns,
3. keep adding rows whose intersection with the running column set still has
   at least ``v`` columns, until ``u`` rows are selected.

On top of this primitive the paper evaluates four heuristics (Figure 8):

* **transpose** -- retry the request as ``v x u``;
* **aspect ratio** -- also try other factorisations of the same board count
  (up to an aspect ratio of eight);
* **sorting** -- allocate jobs from largest to smallest (a trace-level
  transformation, see :meth:`JobTrace.sorted_by_size`);
* **locality** -- among the shapes that fit, pick the one that minimises the
  traffic crossing the upper levels of the row/column fat trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.subnetwork import VirtualSubMesh, find_submesh_rows
from .grid import BoardGrid
from .jobs import JobRequest, JobTrace, aspect_ratio_shapes
from .locality import upper_level_fraction

__all__ = ["AllocatorOptions", "AllocationResult", "GreedyAllocator"]


@dataclass(frozen=True)
class AllocatorOptions:
    """Heuristic switches of the greedy allocator."""

    transpose: bool = False
    aspect_ratio: bool = False
    max_aspect_ratio: int = 8
    locality: bool = False
    #: boards served by one leaf switch of the global trees (for locality)
    boards_per_leaf: int = 16

    @classmethod
    def named(cls, name: str) -> "AllocatorOptions":
        """Construct the named heuristic combinations used in Figure 8."""
        presets = {
            "greedy": cls(),
            "greedy+transpose": cls(transpose=True),
            "greedy+transpose+aspect": cls(transpose=True, aspect_ratio=True),
            "greedy+transpose+aspect+locality": cls(
                transpose=True, aspect_ratio=True, locality=True
            ),
        }
        try:
            return presets[name]
        except KeyError:
            raise ValueError(f"unknown preset {name!r}; available: {sorted(presets)}") from None


@dataclass
class AllocationResult:
    """Outcome of allocating one job trace."""

    placed: Dict[int, VirtualSubMesh] = field(default_factory=dict)
    rejected: List[int] = field(default_factory=list)
    utilization: float = 0.0

    @property
    def num_placed(self) -> int:
        return len(self.placed)


class GreedyAllocator:
    """Greedy allocator over a :class:`BoardGrid`."""

    def __init__(self, grid: BoardGrid, options: AllocatorOptions = AllocatorOptions()):
        self.grid = grid
        self.options = options

    # ------------------------------------------------------------ primitives
    def _find(self, u: int, v: int) -> Optional[VirtualSubMesh]:
        if u > self.grid.y or v > self.grid.x:
            return None
        return find_submesh_rows(self.grid.row_available(), u, v, try_all_starts=True)

    def _candidate_shapes(self, job: JobRequest) -> List[Tuple[int, int]]:
        shapes: List[Tuple[int, int]] = [(job.u, job.v)]
        if self.options.transpose and job.v != job.u:
            shapes.append((job.v, job.u))
        if self.options.aspect_ratio:
            for u, v in aspect_ratio_shapes(job.num_boards, self.options.max_aspect_ratio):
                for shape in ((u, v), (v, u)):
                    if shape not in shapes:
                        shapes.append(shape)
        return shapes

    # ------------------------------------------------------------ allocation
    def allocate(self, job: JobRequest) -> Optional[VirtualSubMesh]:
        """Place one job; returns its sub-mesh or ``None`` when it does not fit."""
        candidates: List[VirtualSubMesh] = []
        for u, v in self._candidate_shapes(job):
            found = self._find(u, v)
            if found is None:
                continue
            if not self.options.locality:
                self.grid.allocate(job.job_id, found)
                return found
            candidates.append(found)
        if not candidates:
            return None
        # Locality: keep the candidate whose alltoall traffic crosses the
        # upper tree levels the least.
        best = min(
            candidates,
            key=lambda sm: upper_level_fraction(
                sm, boards_per_leaf=self.options.boards_per_leaf, pattern="alltoall"
            ),
        )
        self.grid.allocate(job.job_id, best)
        return best

    def allocate_trace(self, trace: JobTrace) -> AllocationResult:
        """Allocate an entire trace in order; never frees previously placed jobs."""
        result = AllocationResult()
        for job in trace:
            placed = self.allocate(job)
            if placed is None:
                result.rejected.append(job.job_id)
            else:
                result.placed[job.job_id] = placed
        result.utilization = self.grid.utilization()
        return result
