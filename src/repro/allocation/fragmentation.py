"""Failure / fragmentation experiments (Figure 10 of the paper).

Random board failures fragment the grid; because virtual sub-HxMeshes can be
formed from non-consecutive boards, utilization degrades gracefully.  These
helpers run the paper's experiment: fail ``k`` random boards, allocate a
sampled job mix with the greedy allocator, and report the utilization of the
*working* boards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .greedy import AllocatorOptions, GreedyAllocator
from .grid import BoardGrid
from .jobs import JobTrace
from .workload_gen import JobSizeDistribution, sample_job_mixes

__all__ = ["FailureExperimentResult", "utilization_under_failures"]


@dataclass
class FailureExperimentResult:
    """Utilization samples for one (cluster, failure count) configuration."""

    num_failed: int
    utilizations: List[float]

    @property
    def median(self) -> float:
        return float(np.median(self.utilizations)) if self.utilizations else 0.0

    @property
    def mean(self) -> float:
        return float(np.mean(self.utilizations)) if self.utilizations else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.utilizations, q)) if self.utilizations else 0.0


def utilization_under_failures(
    x: int,
    y: int,
    failed_counts: Sequence[int],
    *,
    num_trials: int = 20,
    sort_jobs: bool = False,
    options: AllocatorOptions = AllocatorOptions(transpose=True, aspect_ratio=True),
    distribution: Optional[JobSizeDistribution] = None,
    max_job_boards: Optional[int] = None,
    seed: int = 0,
) -> List[FailureExperimentResult]:
    """Run the Figure-10 experiment on an ``x`` x ``y`` board grid.

    For every entry of ``failed_counts``, ``num_trials`` independent trials
    are run: fail that many random boards, draw a fresh job mix sized to the
    number of *working* boards, allocate it (optionally sorted by size), and
    record the utilization of working boards.
    """
    results: List[FailureExperimentResult] = []
    for num_failed in failed_counts:
        utils: List[float] = []
        for trial in range(num_trials):
            trial_seed = seed * 7919 + num_failed * 131 + trial
            grid = BoardGrid(x, y)
            if num_failed:
                grid.fail_random(num_failed, seed=trial_seed)
            mixes = sample_job_mixes(
                grid.num_working,
                1,
                distribution=distribution,
                max_job_boards=max_job_boards or grid.num_working,
                seed=trial_seed + 1,
            )
            trace: JobTrace = mixes[0]
            if sort_jobs:
                trace = trace.sorted_by_size()
            allocator = GreedyAllocator(grid, options)
            result = allocator.allocate_trace(trace)
            utils.append(result.utilization)
        results.append(FailureExperimentResult(num_failed, utils))
    return results
