"""Board-grid state for HxMesh job allocation.

The allocator views an ``x`` x ``y`` HxMesh purely at board granularity: a
board is free, allocated to a job, or failed (the board is the unit of
failure, Section III-E).  :class:`BoardGrid` tracks this state, exposes the
per-row availability sets consumed by the greedy sub-mesh search, and
computes the utilization metrics reported in Figures 8 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.subnetwork import VirtualSubMesh

__all__ = ["BoardGrid"]

Coord = Tuple[int, int]
FREE = -1
FAILED = -2


class BoardGrid:
    """Allocation state of an ``x`` columns x ``y`` rows board grid."""

    def __init__(self, x: int, y: int):
        if x < 1 or y < 1:
            raise ValueError("grid dimensions must be positive")
        self.x = x
        self.y = y
        # state[row][col] = FREE, FAILED, or job id (>= 0)
        self._state: List[List[int]] = [[FREE] * x for _ in range(y)]
        self._job_boards: Dict[int, List[Coord]] = {}

    # ---------------------------------------------------------------- queries
    @property
    def num_boards(self) -> int:
        return self.x * self.y

    @property
    def num_failed(self) -> int:
        return sum(row.count(FAILED) for row in self._state)

    @property
    def num_working(self) -> int:
        return self.num_boards - self.num_failed

    @property
    def num_allocated(self) -> int:
        return sum(1 for row in self._state for s in row if s >= 0)

    @property
    def num_free(self) -> int:
        return sum(row.count(FREE) for row in self._state)

    def state(self, coord: Coord) -> int:
        return self._state[coord[0]][coord[1]]

    def is_free(self, coord: Coord) -> bool:
        return self._state[coord[0]][coord[1]] == FREE

    def job_at(self, coord: Coord) -> Optional[int]:
        s = self._state[coord[0]][coord[1]]
        return s if s >= 0 else None

    def boards_of(self, job_id: int) -> List[Coord]:
        return list(self._job_boards.get(job_id, []))

    def jobs(self) -> List[int]:
        return list(self._job_boards)

    def _coords_where(self, predicate) -> List[Coord]:
        return [(r, c) for r in range(self.y) for c in range(self.x)
                if predicate(self._state[r][c])]

    def free_coords(self) -> List[Coord]:
        """All free board coordinates in row-major order."""
        return self._coords_where(lambda s: s == FREE)

    def failed_coords(self) -> List[Coord]:
        """All failed board coordinates in row-major order."""
        return self._coords_where(lambda s: s == FAILED)

    def working_coords(self) -> List[Coord]:
        """All non-failed board coordinates (free or allocated), row-major."""
        return self._coords_where(lambda s: s != FAILED)

    def utilization(self) -> float:
        """Fraction of *working* boards allocated to jobs (Figure 8/10 metric)."""
        working = self.num_working
        return self.num_allocated / working if working else 0.0

    def occupancy_matrix(self) -> List[List[int]]:
        """Copy of the raw state matrix (rows of job ids / FREE / FAILED)."""
        return [list(row) for row in self._state]

    # -------------------------------------------------------------- row views
    def row_available(self) -> List[FrozenSet[int]]:
        """Per-row sets of free column indices (input of the greedy search)."""
        return [
            frozenset(c for c in range(self.x) if self._state[r][c] == FREE)
            for r in range(self.y)
        ]

    # -------------------------------------------------------------- mutations
    def fail_boards(self, coords: Iterable[Coord]) -> None:
        """Mark boards as failed; allocated boards cannot fail mid-experiment."""
        for r, c in coords:
            if self._state[r][c] >= 0:
                raise ValueError(f"board {(r, c)} is allocated; free it before failing")
            self._state[r][c] = FAILED

    def fail_random(self, count: int, seed: int = 0) -> List[Coord]:
        """Fail ``count`` random free boards; returns the failed coordinates."""
        import numpy as np

        rng = np.random.default_rng(seed)
        free = self.free_coords()
        if count > len(free):
            raise ValueError(f"cannot fail {count} boards, only {len(free)} are free")
        chosen = [free[i] for i in rng.choice(len(free), size=count, replace=False)]
        self.fail_boards(chosen)
        return chosen

    def repair_boards(self, coords: Iterable[Coord]) -> None:
        """Return failed boards to service (the repair half of MTBF/MTTR)."""
        for r, c in coords:
            if self._state[r][c] != FAILED:
                raise ValueError(f"board {(r, c)} is not failed")
            self._state[r][c] = FREE

    def allocate(self, job_id: int, submesh: VirtualSubMesh) -> None:
        """Assign every board of ``submesh`` to ``job_id``."""
        if job_id < 0:
            raise ValueError("job ids must be non-negative")
        if job_id in self._job_boards:
            raise ValueError(f"job {job_id} is already allocated")
        boards = submesh.boards()
        for coord in boards:
            if not self.is_free(coord):
                raise ValueError(f"board {coord} is not free")
        for r, c in boards:
            self._state[r][c] = job_id
        self._job_boards[job_id] = boards

    def release(self, job_id: int) -> None:
        """Free all boards of a job (checkpoint/shutdown)."""
        for r, c in self._job_boards.pop(job_id):
            self._state[r][c] = FREE

    def reset(self, *, keep_failures: bool = True) -> None:
        """Release every job; optionally also clear failures."""
        for job_id in list(self._job_boards):
            self.release(job_id)
        if not keep_failures:
            for r in range(self.y):
                for c in range(self.x):
                    if self._state[r][c] == FAILED:
                        self._state[r][c] = FREE
