"""Cluster workload generator (Section IV-B, Figure 7).

The paper samples job sizes from a two-month trace of Alibaba's ML-as-a-
service cluster (6,742 GPUs).  The raw trace is not redistributable, so this
module provides a synthetic heavy-tailed job-size distribution whose
board-weighted CDF matches the published shape of Figure 7: the vast
majority of *jobs* are small (a single board), while a heavy tail of large
jobs occupies a large share of the cluster (about 40% of all boards belong
to jobs smaller than 100 boards, the rest to larger jobs).

Job mixes are drawn the same way as in the paper: job sizes are sampled,
multiplied by the board size, and added to the mix until the target cluster
is (nominally) full; samples that do not fit are carried over to the next
mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exp.seeding import SeedLike, as_generator
from .jobs import JobRequest, JobTrace

__all__ = ["JobSizeDistribution", "alibaba_like_distribution", "sample_job_mixes"]


@dataclass(frozen=True)
class JobSizeDistribution:
    """Discrete distribution of job sizes measured in boards."""

    sizes: Tuple[int, ...]
    probabilities: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.probabilities):
            raise ValueError("sizes and probabilities must have the same length")
        if any(s < 1 for s in self.sizes):
            raise ValueError("job sizes must be at least one board")
        total = sum(self.probabilities)
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"probabilities must sum to 1, got {total}")

    # ------------------------------------------------------------------ stats
    def mean_size(self) -> float:
        return float(np.dot(self.sizes, self.probabilities))

    def count_weighted_cdf(self) -> List[Tuple[int, float]]:
        """CDF of the job-count distribution (the "Original" curve)."""
        acc = 0.0
        out = []
        for s, p in sorted(zip(self.sizes, self.probabilities)):
            acc += p
            out.append((s, acc))
        return out

    def board_weighted_cdf(self) -> List[Tuple[int, float]]:
        """CDF of the proportion of boards allocated to jobs of size <= s.

        This is the quantity plotted in Figure 7.
        """
        weights = np.array(self.sizes, dtype=float) * np.array(self.probabilities)
        weights /= weights.sum()
        acc = 0.0
        out = []
        for (s, _), w in sorted(zip(zip(self.sizes, self.probabilities), weights)):
            acc += w
            out.append((s, acc))
        return out

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Sample ``count`` job sizes (in boards)."""
        idx = rng.choice(len(self.sizes), size=count, p=self.probabilities)
        return np.array(self.sizes, dtype=int)[idx]


def alibaba_like_distribution() -> JobSizeDistribution:
    """Synthetic stand-in for the Alibaba MLaaS job-size distribution.

    Job counts follow a truncated power law over a set of typical job sizes
    (in boards); the resulting *board-weighted* CDF reaches roughly 40% at
    100 boards, matching the annotated point of Figure 7.
    """
    sizes = np.array([1, 2, 4, 6, 9, 12, 16, 25, 36, 64, 100, 144, 256, 400, 576, 1024])
    # Power-law job-count probabilities.  The exponent trades off two
    # published calibration points that are in mild tension for a synthetic
    # stand-in: the board-weighted CDF annotation of Figure 7 (~39% of boards
    # in jobs of fewer than 100 boards) and the ~90% utilization of the plain
    # greedy allocator in Figure 8.  The chosen exponent keeps the heavy tail
    # (roughly half the board mass in jobs of 64+ boards) while reproducing
    # the utilization behaviour; see EXPERIMENTS.md.
    probs = sizes ** -1.1
    probs = probs / probs.sum()
    return JobSizeDistribution(tuple(int(s) for s in sizes), tuple(float(p) for p in probs))


def sample_job_mixes(
    cluster_boards: int,
    num_mixes: int,
    *,
    distribution: Optional[JobSizeDistribution] = None,
    max_job_boards: Optional[int] = None,
    seed: SeedLike = 0,
) -> List[JobTrace]:
    """Draw ``num_mixes`` job traces that each nominally fill the cluster.

    Sizes exceeding ``max_job_boards`` (by default the cluster size) are
    skipped (such jobs cannot run on the target cluster at all); a sample
    that does not fit into the remaining capacity of the current mix is
    carried over as the first job of the next mix, exactly as described in
    Section IV-B.
    """
    dist = distribution or alibaba_like_distribution()
    limit = max_job_boards if max_job_boards is not None else cluster_boards
    rng = as_generator(seed)
    mixes: List[JobTrace] = []
    carried: Optional[int] = None
    job_id = 0
    for _ in range(num_mixes):
        jobs: List[JobRequest] = []
        remaining = cluster_boards
        while remaining > 0:
            if carried is not None:
                size = carried
                carried = None
            else:
                size = int(dist.sample(rng, 1)[0])
                if size > limit:
                    continue
            if size > remaining:
                carried = size
                break
            jobs.append(JobRequest.from_board_count(job_id, size))
            job_id += 1
            remaining -= size
        mixes.append(JobTrace(jobs))
    return mixes
