"""Job requests and job traces for the allocation experiments (Section IV).

Training jobs request two-dimensional sets of boards (u x v).  A job trace
is an ordered list of such requests, typically sampled from the cluster
workload generator so that the requested boards sum to (at least) the
cluster capacity, as in the paper's utilization experiments (Figure 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["JobRequest", "JobTrace", "most_square_shape", "aspect_ratio_shapes"]


def most_square_shape(num_boards: int) -> Tuple[int, int]:
    """The most-square u x v factorisation covering ``num_boards`` boards.

    When ``num_boards`` is not a perfect rectangle product the request is
    rounded up to the next rectangle (jobs request whole boards).  This is
    the paper's default shaping rule ("By default, we make jobs as square as
    possible").
    """
    if num_boards < 1:
        raise ValueError("a job needs at least one board")
    u = int(math.isqrt(num_boards))
    while u > 1 and num_boards % u != 0:
        u -= 1
    v = num_boards // u
    if u * v < num_boards:  # pragma: no cover - defensive; isqrt logic covers it
        v += 1
    return (u, v)


def aspect_ratio_shapes(num_boards: int, max_ratio: int = 8) -> List[Tuple[int, int]]:
    """All u x v factorisations of ``num_boards`` with aspect ratio <= ``max_ratio``.

    Used by the "aspect ratio" allocation heuristic (a job requesting 4x16
    boards may also function well as 2x32); shapes are ordered from most
    square to most elongated.
    """
    shapes: List[Tuple[int, int]] = []
    for u in range(1, int(math.isqrt(num_boards)) + 1):
        if num_boards % u:
            continue
        v = num_boards // u
        if v / u <= max_ratio:
            shapes.append((u, v))
    shapes.sort(key=lambda s: s[1] / s[0])
    return shapes or [most_square_shape(num_boards)]


@dataclass(frozen=True)
class JobRequest:
    """A single training job requesting ``u`` x ``v`` boards."""

    job_id: int
    u: int
    v: int

    def __post_init__(self) -> None:
        if self.u < 1 or self.v < 1:
            raise ValueError("job dimensions must be positive")

    @property
    def num_boards(self) -> int:
        return self.u * self.v

    @classmethod
    def from_board_count(cls, job_id: int, num_boards: int) -> "JobRequest":
        u, v = most_square_shape(num_boards)
        return cls(job_id, u, v)


@dataclass
class JobTrace:
    """An ordered sequence of job requests."""

    jobs: List[JobRequest] = field(default_factory=list)

    def __iter__(self):
        return iter(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def total_boards(self) -> int:
        return sum(j.num_boards for j in self.jobs)

    def sorted_by_size(self, descending: bool = True) -> "JobTrace":
        """Trace reordered by job size (the "sorting" heuristic)."""
        return JobTrace(sorted(self.jobs, key=lambda j: j.num_boards, reverse=descending))
