"""Upper-tree-level traffic estimation (Figure 9, locality heuristic).

On large HxMeshes the global row/column networks are two-level fat trees;
traffic between boards attached to the same leaf switch stays in the lower
level, traffic between boards under different leaves must cross a spine
("upper level") link.  The paper uses the fraction of job traffic that
crosses the upper levels to justify 2:1 tapering (Figure 9) and as the
objective of the locality-aware allocation heuristic.

Boards attach to leaves in column order: with 64-port leaf switches and two
ports per board per on-board row, one leaf serves 16 consecutive board
columns of a row network (``boards_per_leaf``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.subnetwork import VirtualSubMesh

__all__ = ["upper_level_fraction"]


def _pair_fraction(coords: Sequence[int], boards_per_leaf: int, pattern: str) -> float:
    """Fraction of intra-dimension traffic crossing leaf boundaries.

    ``coords`` are the physical row or column indices used by the job along
    one dimension.  For ``alltoall`` every ordered pair communicates equally;
    for ``allreduce`` (pipelined ring) only consecutive coordinates of the
    ring exchange data.
    """
    n = len(coords)
    if n < 2 or boards_per_leaf <= 0:
        return 0.0
    leaves = [c // boards_per_leaf for c in coords]
    if pattern == "alltoall":
        crossing = total = 0
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                total += 1
                if leaves[i] != leaves[j]:
                    crossing += 1
        return crossing / total if total else 0.0
    if pattern == "allreduce":
        ordered = sorted(range(n), key=lambda i: coords[i])
        crossing = 0
        for k in range(n):
            a, b = ordered[k], ordered[(k + 1) % n]
            if leaves[a] != leaves[b]:
                crossing += 1
        return crossing / n
    raise ValueError(f"unknown traffic pattern {pattern!r}")


def upper_level_fraction(
    submesh: VirtualSubMesh,
    *,
    boards_per_leaf: int = 16,
    pattern: str = "alltoall",
) -> float:
    """Fraction of a job's global traffic crossing upper fat-tree levels.

    The row dimension contributes pairs among the job's physical column
    coordinates (boards of the same row talk through the row networks) and
    the column dimension contributes pairs among the physical row
    coordinates; the two dimensions carry equal volume for the symmetric
    patterns considered, so the result is their mean.
    """
    row_dim = _pair_fraction(submesh.cols, boards_per_leaf, pattern)
    col_dim = _pair_fraction(submesh.rows, boards_per_leaf, pattern)
    return 0.5 * (row_dim + col_dim)
