"""Job allocation on HammingMesh (Section IV of the paper).

Greedy sub-mesh allocation with the transpose / aspect-ratio / sorting /
locality heuristics, the board-grid state model, the synthetic Alibaba-like
workload generator, upper-tree-level traffic estimation, and the failure /
fragmentation experiments.
"""

from .fragmentation import FailureExperimentResult, utilization_under_failures
from .greedy import AllocationResult, AllocatorOptions, GreedyAllocator
from .grid import BoardGrid
from .jobs import JobRequest, JobTrace, aspect_ratio_shapes, most_square_shape
from .locality import upper_level_fraction
from .workload_gen import (
    JobSizeDistribution,
    alibaba_like_distribution,
    sample_job_mixes,
)

__all__ = [
    "BoardGrid",
    "JobRequest",
    "JobTrace",
    "most_square_shape",
    "aspect_ratio_shapes",
    "AllocatorOptions",
    "AllocationResult",
    "GreedyAllocator",
    "JobSizeDistribution",
    "alibaba_like_distribution",
    "sample_job_mixes",
    "upper_level_fraction",
    "FailureExperimentResult",
    "utilization_under_failures",
]
