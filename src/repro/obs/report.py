"""Pretty-printer for ``repro.obs`` traces.

Renders a trace produced by :func:`repro.obs.write_trace` (for instance
via ``python -m repro.exp run <sweep> --trace trace.json``) as a compact
text report: non-zero metrics grouped by subsystem family, then a
flamegraph-style span tree -- span paths indented by nesting depth with
per-path call counts, total time, and a proportional bar.

Usage::

    python -m repro.obs.report trace.json
    python -m repro.obs.report trace.json --top 40

or programmatically through :func:`format_trace`.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from .tracing import span_summary

__all__ = ["format_metrics", "format_spans", "format_trace", "main"]

_BAR_WIDTH = 24


def _fmt_value(value: float) -> str:
    if isinstance(value, int):
        return f"{value:,}"
    if value and abs(value) >= 1e6:
        return f"{value:,.0f}"
    return f"{value:g}"


def format_metrics(metrics: Dict[str, Any]) -> str:
    """Non-zero counters/gauges/histograms/probes grouped by family."""
    lines: List[str] = []
    rows: List[tuple] = []
    for name, value in metrics.get("counters", {}).items():
        if value:
            rows.append((name, f"{value:,}", "counter"))
    for name, value in metrics.get("gauges", {}).items():
        if value:
            rows.append((name, _fmt_value(value), "gauge"))
    for name, hist in metrics.get("histograms", {}).items():
        if hist.get("count"):
            rows.append(
                (
                    name,
                    f"n={hist['count']:,} mean={hist['mean']:.1f} max={_fmt_value(hist['max'])}",
                    "histogram",
                )
            )
    for name, probe in metrics.get("probes", {}).items():
        samples = probe.get("samples", [])
        if samples:
            rows.append(
                (
                    name,
                    f"{len(samples)} samples, stride {probe.get('stride', 1)}",
                    "probe",
                )
            )
    if not rows:
        return "metrics: (none recorded)"
    rows.sort()
    width = max(len(r[0]) for r in rows)
    family = None
    for name, text, kind in rows:
        head = name.split(".", 1)[0]
        if head != family:
            family = head
            lines.append(f"[{family}]")
        lines.append(f"  {name:<{width}}  {text}  ({kind})")
    return "\n".join(lines)


def format_spans(spans: List[Dict[str, Any]], *, top: Optional[int] = None) -> str:
    """Flamegraph-style text tree: paths indented, bars proportional.

    Aggregates spans by path, orders children under their parents, and
    scales the bar to the largest root-path total of the same clock.
    """
    summary = span_summary(spans)
    if not summary:
        return "spans: (none recorded)"
    # Scale bars per clock domain; roots of each clock share one scale.
    scale: Dict[str, float] = {}
    for path, agg in summary.items():
        if "/" not in path:
            clock = agg["clock"]
            scale[clock] = max(scale.get(clock, 0.0), agg["total_seconds"])
    lines: List[str] = []
    paths = sorted(summary)  # lexicographic order keeps children under parents
    if top is not None:
        ranked = sorted(summary, key=lambda p: -summary[p]["total_seconds"])[:top]
        keep = set(ranked)
        for path in ranked:  # keep ancestors so indentation stays meaningful
            while "/" in path:
                path = path.rsplit("/", 1)[0]
                keep.add(path)
        paths = [p for p in paths if p in keep]
    width = max(len(p) + 2 * p.count("/") for p in paths)
    for path in paths:
        agg = summary[path]
        depth = path.count("/")
        label = "  " * depth + path.rsplit("/", 1)[-1]
        total = agg["total_seconds"]
        full = scale.get(agg["clock"], 0.0) or 1.0
        bar = "#" * max(1, round(_BAR_WIDTH * min(total / full, 1.0))) if total > 0 else ""
        unit = "s" if agg["clock"] == "wall" else "s(sim)"
        lines.append(
            f"{label:<{width}}  {agg['count']:>6}x  {total:>10.4f} {unit:<6}  {bar}"
        )
    return "\n".join(lines)


def format_trace(trace: Dict[str, Any], *, top: Optional[int] = None) -> str:
    """Full text report of one exported trace."""
    parts = [
        f"repro.obs trace (version {trace.get('version', '?')}, "
        f"collection {'enabled' if trace.get('enabled') else 'disabled'})",
        "",
        format_metrics(trace.get("metrics", {})),
        "",
        format_spans(trace.get("spans", []), top=top),
    ]
    return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Pretty-print a repro.obs trace JSON file.",
    )
    parser.add_argument("trace", help="trace file written by --trace / repro.obs.write_trace")
    parser.add_argument("--top", type=int, default=None, help="only the N slowest span paths")
    args = parser.parse_args(argv)
    trace = json.loads(Path(args.trace).read_text())
    print(format_trace(trace, top=args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    raise SystemExit(main())
