"""Process-local metrics registry: counters, gauges, histograms, probes.

The registry is the measurement substrate every subsystem shares (see
DESIGN.md, "Observability").  Four instrument kinds cover the repository's
needs:

* :class:`Counter` -- monotone event count.  Counters are **always live**
  (an increment is one native int add), because they double as the
  always-available ``.stats`` views the test suite reads (e.g.
  :class:`repro.sim.routing.RouteTableStats`).  A counter may have a
  *parent*: incrementing a table-local counter also bumps the registry's
  subsystem aggregate, so per-object views and global roll-ups stay
  consistent without double bookkeeping at call sites.
* :class:`Gauge` -- a level (``set``/``add``).  Always live; used for
  slow-moving quantities such as the estimated CSR memory of the route
  tables.
* :class:`Histogram` -- bounded distribution summary (count/sum/min/max
  plus power-of-two bucket counts).  ``observe`` is a **no-op while
  observability is disabled**, so per-round/per-wave call sites cost one
  early return.
* :class:`Probe` -- a bounded time series of numeric tuples.  Recording is
  disabled-gated like histograms; on overflow the series is decimated
  (every other sample dropped, stride doubled), so memory stays bounded on
  arbitrarily long runs while first/last behaviour is preserved.

The **global switch** is process-local: ``enable()`` / ``disable()`` /
``is_enabled()``, initialised from the ``REPRO_OBS`` environment variable.
Instrumented code never changes simulation *results* either way -- the
switch only gates whether timing/series data is collected (the regression
tests pin this bit-identically).

Worker processes of the experiment engine capture a **delta** of their
registry (``capture()`` / ``export_delta()``) per executed chunk and ship
it back; :func:`merge_state` folds such snapshots into the local registry
(counters/gauges add, histograms merge, probes extend).  Snapshots are
plain JSON structures with deterministically sorted keys.
"""

from __future__ import annotations

import math
import os
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Probe",
    "MetricsRegistry",
    "REGISTRY",
    "enable",
    "disable",
    "is_enabled",
    "counter",
    "gauge",
    "histogram",
    "probe",
    "snapshot",
    "merge_state",
    "capture",
    "export_delta",
    "reset",
]

#: default sample capacity of a bounded time-series probe
DEFAULT_PROBE_CAPACITY = 512

_ENABLED = os.environ.get("REPRO_OBS", "").strip().lower() not in ("", "0", "false")


def is_enabled() -> bool:
    """Whether span/histogram/probe collection is on for this process."""
    return _ENABLED


def enable() -> None:
    """Turn observability collection on (also settable via ``REPRO_OBS=1``)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn observability collection off (the default)."""
    global _ENABLED
    _ENABLED = False


# ------------------------------------------------------------------ instruments
class Counter:
    """Monotone event counter; optionally chained to a parent aggregate."""

    __slots__ = ("name", "value", "parent")

    def __init__(self, name: str, parent: Optional["Counter"] = None):
        self.name = name
        self.value = 0
        self.parent = parent

    def inc(self, n: int = 1) -> None:
        self.value += n
        parent = self.parent
        if parent is not None:
            parent.value += n


class Gauge:
    """A level: last-set value, with delta support for roll-up gauges."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Bounded distribution summary over power-of-two buckets.

    ``observe`` is gated by the global switch; a disabled histogram stays
    empty at the cost of one early return per call.  Bucket ``b`` counts
    observations with ``2**(b-1) < value <= 2**b`` (bucket 0 holds
    ``value <= 1``), which is plenty for round counts, wave sizes, and the
    other integer-ish distributions the simulators produce.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bucket = max(0, math.ceil(math.log2(value))) if value > 0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Probe:
    """Bounded time series of numeric tuples, decimated on overflow.

    Samples are ``(t, v1, v2, ...)`` tuples.  When the series reaches its
    capacity, every other sample is dropped and the keep-stride doubles, so
    a probe holds at most ``capacity`` samples spread over the whole run
    regardless of how many were recorded.
    """

    __slots__ = ("name", "capacity", "samples", "stride", "_skip")

    def __init__(self, name: str, capacity: int = DEFAULT_PROBE_CAPACITY):
        self.name = name
        self.capacity = capacity
        self.samples: List[Tuple[float, ...]] = []
        self.stride = 1
        self._skip = 0

    def record(self, *values: float) -> None:
        if not _ENABLED:
            return
        self._skip += 1
        if self._skip < self.stride:
            return
        self._skip = 0
        self.samples.append(values)
        if len(self.samples) >= self.capacity:
            del self.samples[1::2]
            self.stride *= 2


# -------------------------------------------------------------------- registry
#: instruments pre-declared on every registry, so exported snapshots always
#: contain the standard subsystem metric families even when a run never
#: touched one of them (a sweep with no packet cells still reports the
#: ``packet.*`` family at zero -- consumers can rely on the schema).
_DEFAULT_SCHEMA: Tuple[Tuple[str, str], ...] = (
    ("counter", "routing.pair_hits"),
    ("counter", "routing.pair_misses"),
    ("counter", "routing.tables_built"),
    ("counter", "routing.tables_attached"),
    ("gauge", "routing.csr_mem_bytes"),
    ("counter", "routing.shards_built"),
    ("counter", "routing.shards_evicted"),
    ("gauge", "routing.spill_bytes"),
    ("gauge", "routing.shm_segments"),
    ("gauge", "routing.shm_bytes"),
    ("counter", "flowsim.maxmin_solves"),
    ("histogram", "flowsim.batch_size"),
    ("histogram", "flowsim.active_links"),
    ("counter", "flowsim.assignments_built"),
    ("counter", "flowsim.assignment_cache_hits"),
    ("histogram", "flowsim.maxmin_rounds"),
    ("histogram", "flowsim.frozen_per_round"),
    ("counter", "flowsim.delta_solves"),
    ("counter", "flowsim.delta_warm_hits"),
    ("counter", "flowsim.delta_fallbacks"),
    ("counter", "flowsim.delta_assignments"),
    ("histogram", "flowsim.delta_changed_flows"),
    ("histogram", "flowsim.delta_active_subflows"),
    ("histogram", "flowsim.delta_batch_size"),
    ("counter", "search.steps"),
    ("counter", "search.accepts"),
    ("counter", "search.best_updates"),
    ("counter", "packet.messages"),
    ("counter", "packet.packets"),
    ("counter", "packet.events"),
    ("histogram", "packet.wave_size"),
    ("probe", "packet.queue_depth"),
    ("probe", "packet.link_utilization"),
    ("histogram", "engine.wave_size"),
    ("counter", "faults.events"),
    ("counter", "faults.links_dead"),
    ("counter", "faults.tables_degraded"),
    ("counter", "faults.pairs_rerouted"),
    ("counter", "faults.pairs_disconnected"),
    ("counter", "faults.delta_resolves"),
    ("counter", "faults.cold_resolves"),
    ("counter", "faults.packets_dropped"),
    ("counter", "faults.packets_retried"),
    ("counter", "faults.packets_lost"),
    ("counter", "exp.cells_live"),
    ("counter", "exp.cells_cached"),
    ("counter", "exp.cache_corrupt"),
    ("counter", "exp.worker_retries"),
    ("counter", "exp.cells_quarantined"),
    ("counter", "exp.cell_timeouts"),
    ("counter", "exp.workers_seeded"),
    ("counter", "cluster.jobs_completed"),
    ("counter", "cluster.evictions"),
    ("counter", "cluster.failures"),
    ("counter", "cluster.repairs"),
    ("probe", "cluster.state"),
)


class MetricsRegistry:
    """Name-keyed store of instruments with deterministic snapshots."""

    def __init__(self, *, declare_defaults: bool = True):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.probes: Dict[str, Probe] = {}
        if declare_defaults:
            for kind, name in _DEFAULT_SCHEMA:
                getattr(self, kind)(name)

    # ------------------------------------------------------------ get-or-create
    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name)
        return inst

    def probe(self, name: str, capacity: int = DEFAULT_PROBE_CAPACITY) -> Probe:
        inst = self.probes.get(name)
        if inst is None:
            inst = self.probes[name] = Probe(name, capacity)
        return inst

    # ---------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state of every instrument (deterministic key order)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: _hist_dict(h) for n, h in sorted(self.histograms.items())
            },
            "probes": {
                n: {"stride": p.stride, "samples": [list(s) for s in p.samples]}
                for n, p in sorted(self.probes.items())
            },
        }

    def merge(self, state: Dict[str, Any]) -> None:
        """Fold a snapshot (e.g. a worker delta) into this registry."""
        for name, value in state.get("counters", {}).items():
            if value:
                self.counter(name).value += value
        for name, value in state.get("gauges", {}).items():
            if value:
                self.gauge(name).add(value)
        for name, data in state.get("histograms", {}).items():
            if not data.get("count"):
                continue
            hist = self.histogram(name)
            hist.count += data["count"]
            hist.total += data["sum"]
            hist.min = min(hist.min, data["min"])
            hist.max = max(hist.max, data["max"])
            for bucket, count in data.get("buckets", {}).items():
                bucket = int(bucket)
                hist.buckets[bucket] = hist.buckets.get(bucket, 0) + count
        for name, data in state.get("probes", {}).items():
            samples = data.get("samples", [])
            if not samples:
                continue
            probe = self.probe(name)
            probe.samples.extend(tuple(s) for s in samples)
            while len(probe.samples) >= probe.capacity:
                del probe.samples[1::2]
                probe.stride *= 2

    def reset(self) -> None:
        """Zero every instrument **in place** (live references stay valid)."""
        for c in self.counters.values():
            c.value = 0
        for g in self.gauges.values():
            g.value = 0.0
        for h in self.histograms.values():
            h.count = 0
            h.total = 0.0
            h.min = math.inf
            h.max = -math.inf
            h.buckets.clear()
        for p in self.probes.values():
            p.samples.clear()
            p.stride = 1
            p._skip = 0


def _hist_dict(h: Histogram) -> Dict[str, Any]:
    return {
        "count": h.count,
        "sum": h.total,
        "min": h.min if h.count else 0.0,
        "max": h.max if h.count else 0.0,
        "mean": h.mean,
        "buckets": {str(b): n for b, n in sorted(h.buckets.items())},
    }


#: the process-global registry every instrumented subsystem reports into
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)


def probe(name: str, capacity: int = DEFAULT_PROBE_CAPACITY) -> Probe:
    return REGISTRY.probe(name, capacity)


def snapshot() -> Dict[str, Any]:
    return REGISTRY.snapshot()


def merge_state(state: Optional[Dict[str, Any]]) -> None:
    if state:
        REGISTRY.merge(state)


def reset() -> None:
    """Zero the global registry (tests / fresh measurement windows)."""
    REGISTRY.reset()


# ------------------------------------------------------------- delta capture
def capture() -> Dict[str, Any]:
    """Marker for :func:`export_delta`: the current registry snapshot."""
    return REGISTRY.snapshot()


def export_delta(marker: Dict[str, Any]) -> Dict[str, Any]:
    """What happened since ``marker``, as a mergeable snapshot.

    Counters and gauges subtract; histograms subtract counts/sums/buckets
    (min/max are taken from the current state -- a bounded-diagnostic
    approximation); probes ship the samples appended since the marker, or
    the full current series if decimation rewrote it in between.
    """
    now = REGISTRY.snapshot()
    delta: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}, "probes": {}}
    base_c = marker.get("counters", {})
    for name, value in now["counters"].items():
        diff = value - base_c.get(name, 0)
        if diff:
            delta["counters"][name] = diff
    base_g = marker.get("gauges", {})
    for name, value in now["gauges"].items():
        diff = value - base_g.get(name, 0.0)
        if diff:
            delta["gauges"][name] = diff
    base_h = marker.get("histograms", {})
    for name, data in now["histograms"].items():
        base = base_h.get(name, {})
        count = data["count"] - base.get("count", 0)
        if count <= 0:
            continue
        buckets = {}
        base_buckets = base.get("buckets", {})
        for bucket, n in data["buckets"].items():
            diff = n - base_buckets.get(bucket, 0)
            if diff:
                buckets[bucket] = diff
        delta["histograms"][name] = {
            "count": count,
            "sum": data["sum"] - base.get("sum", 0.0),
            "min": data["min"],
            "max": data["max"],
            "buckets": buckets,
        }
    base_p = marker.get("probes", {})
    for name, data in now["probes"].items():
        base = base_p.get(name, {})
        if data["stride"] == base.get("stride", 1):
            fresh = data["samples"][len(base.get("samples", ())):]
        else:
            fresh = data["samples"]
        if fresh:
            delta["probes"][name] = {"stride": data["stride"], "samples": fresh}
    return delta
