"""Span-based tracing with nested spans and deterministic JSON export.

A *span* is a named, timed region of work with free-form attributes:
experiment cells, cluster job lifetimes, benchmark bodies.  Two clocks
coexist in one trace:

* ``clock="wall"`` spans are opened/closed around real work through
  :meth:`Tracer.span` (a context manager timing with ``perf_counter``);
* ``clock="sim"`` spans carry **simulation timestamps** and are emitted
  after the fact through :meth:`Tracer.add` (the cluster twin's
  queued/running job phases), which makes them fully deterministic.

Nesting is tracked through a span stack: a span opened inside another
records the enclosing span's path, so exports reconstruct the hierarchy as
``"exp.cell/flow.solve"``-style slash paths without object graphs.  The
whole tracer is a no-op while observability is disabled --
:meth:`Tracer.span` hands out a shared inert context manager, so a
disabled call site costs one flag check and no allocation.

Export order is completion order for locally recorded spans; spans merged
from worker deltas (:meth:`Tracer.merge`) are appended in merge order.
:func:`span_summary` aggregates either form into the deterministic
per-path totals the tests and the report tool consume.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from . import registry as _registry

__all__ = ["Tracer", "TRACER", "span", "add_span", "span_summary"]


class _NoopSpan:
    """Shared inert context manager handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None


_NOOP = _NoopSpan()


class _Span:
    """One live wall-clock span (created by :meth:`Tracer.span`)."""

    __slots__ = ("tracer", "name", "attrs", "path", "begin")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.path = ""
        self.begin = 0.0

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. a result size)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        stack = self.tracer._stack
        parent = stack[-1].path if stack else ""
        self.path = f"{parent}/{self.name}" if parent else self.name
        stack.append(self)
        self.begin = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        end = time.perf_counter()
        self.tracer._stack.pop()
        self.tracer.finished.append(
            {
                "name": self.name,
                "path": self.path,
                "clock": "wall",
                "begin": self.begin,
                "end": end,
                "duration": end - self.begin,
                "attrs": self.attrs,
            }
        )


class Tracer:
    """Process-local span recorder."""

    def __init__(self) -> None:
        self.finished: List[Dict[str, Any]] = []
        self._stack: List[_Span] = []

    def span(self, name: str, **attrs: Any):
        """Context manager timing a wall-clock span (inert when disabled)."""
        if not _registry.is_enabled():
            return _NOOP
        return _Span(self, name, attrs)

    def add(
        self,
        name: str,
        begin: float,
        end: float,
        *,
        clock: str = "sim",
        parent: str = "",
        **attrs: Any,
    ) -> None:
        """Record a completed span with explicit timestamps.

        ``clock="sim"`` marks simulation-time spans (deterministic);
        ``parent`` is the enclosing span's path for nested emission.
        """
        if not _registry.is_enabled():
            return
        path = f"{parent}/{name}" if parent else name
        self.finished.append(
            {
                "name": name,
                "path": path,
                "clock": clock,
                "begin": begin,
                "end": end,
                "duration": end - begin,
                "attrs": attrs,
            }
        )

    def export(self) -> List[Dict[str, Any]]:
        """All finished spans (completion/merge order)."""
        return list(self.finished)

    def merge(self, spans: Optional[List[Dict[str, Any]]]) -> None:
        """Append spans exported by another process."""
        if spans:
            self.finished.extend(spans)

    def reset(self) -> None:
        self.finished.clear()
        self._stack.clear()


#: the process-global tracer (module-level helpers below delegate to it)
TRACER = Tracer()


def span(name: str, **attrs: Any):
    return TRACER.span(name, **attrs)


def add_span(
    name: str, begin: float, end: float, *, clock: str = "sim", parent: str = "", **attrs: Any
) -> None:
    TRACER.add(name, begin, end, clock=clock, parent=parent, **attrs)


def span_summary(spans: Optional[List[Dict[str, Any]]] = None) -> Dict[str, Dict[str, Any]]:
    """Aggregate spans by path: count and total duration per path.

    The summary keys are sorted paths, so two traces covering the same work
    (e.g. a serial and a parallel run of one grid) produce identical
    summaries modulo the float duration fields.
    """
    if spans is None:
        spans = TRACER.finished
    out: Dict[str, Dict[str, Any]] = {}
    for rec in spans:
        agg = out.get(rec["path"])
        if agg is None:
            agg = out[rec["path"]] = {
                "count": 0,
                "total_seconds": 0.0,
                "clock": rec["clock"],
            }
        agg["count"] += 1
        agg["total_seconds"] += rec["duration"]
    return {path: out[path] for path in sorted(out)}
