"""``repro.obs`` -- unified metrics, tracing, and profiling layer.

One lightweight observability subsystem shared by the simulators
(:mod:`repro.sim`), the experiment engine (:mod:`repro.exp`), and the
cluster twin (:mod:`repro.cluster`):

* a process-local **metrics registry** (:mod:`repro.obs.registry`) of
  counters, gauges, histograms, and bounded time-series probes, named by
  ``family.metric`` convention (``routing.*``, ``flowsim.*``,
  ``packet.*``, ``engine.*``, ``exp.*``, ``cluster.*``);
* **span tracing** (:mod:`repro.obs.tracing`) with nested wall-clock spans
  and deterministic simulation-time spans;
* a **global switch**: collection is disabled by default and near-zero
  overhead when off.  Turn it on with :func:`enable` or ``REPRO_OBS=1``;
  counters/gauges stay live either way (they back always-on ``.stats``
  views), while histograms, probes, and spans only record when enabled.
  The switch never changes simulation results -- only whether measurement
  data is collected.
* a **reporting surface**: :func:`export_trace` / :func:`write_trace`
  produce the deterministic JSON trace consumed by
  ``python -m repro.obs.report`` (and by ``python -m repro.exp run
  --trace out.json``).

Worker protocol: a process-pool worker calls :func:`capture` before its
chunk and :func:`export_delta` after; the parent folds the payload back
with :func:`merge_state`.  Aggregates therefore agree between serial and
parallel executions of the same work, modulo timing values.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from . import registry as _registry
from . import tracing as _tracing
from .registry import (
    REGISTRY,
    MetricsRegistry,
    counter,
    disable,
    enable,
    gauge,
    histogram,
    is_enabled,
    probe,
    snapshot,
)
from .tracing import TRACER, Tracer, add_span, span, span_summary

__all__ = [
    "REGISTRY",
    "TRACER",
    "MetricsRegistry",
    "Tracer",
    "enable",
    "disable",
    "is_enabled",
    "counter",
    "gauge",
    "histogram",
    "probe",
    "span",
    "add_span",
    "span_summary",
    "snapshot",
    "capture",
    "export_delta",
    "merge_state",
    "export_trace",
    "write_trace",
    "metrics_summary",
    "reset",
]

#: schema version of the exported trace JSON
TRACE_VERSION = 1


def capture() -> Dict[str, Any]:
    """Marker of the current observability state (metrics + span count)."""
    return {"metrics": _registry.capture(), "num_spans": len(TRACER.finished)}


def export_delta(marker: Dict[str, Any]) -> Dict[str, Any]:
    """Everything recorded since ``marker`` as a mergeable payload."""
    return {
        "metrics": _registry.export_delta(marker["metrics"]),
        "spans": TRACER.finished[marker.get("num_spans", 0):],
    }


def merge_state(payload: Optional[Dict[str, Any]]) -> None:
    """Fold a worker's :func:`export_delta` payload into this process."""
    if not payload:
        return
    _registry.merge_state(payload.get("metrics"))
    TRACER.merge(payload.get("spans"))


def export_trace() -> Dict[str, Any]:
    """The full observability state as a deterministic JSON structure."""
    return {
        "version": TRACE_VERSION,
        "enabled": is_enabled(),
        "metrics": snapshot(),
        "spans": TRACER.export(),
        "span_summary": span_summary(),
    }


def write_trace(path: Union[str, Path]) -> Path:
    """Write :func:`export_trace` to ``path`` as indented JSON."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(export_trace(), indent=2, sort_keys=True) + "\n")
    return path


def metrics_summary() -> Dict[str, Any]:
    """Compact non-zero metrics view (what BENCH artifacts embed)."""
    snap = snapshot()
    out: Dict[str, Any] = {}
    counters = {n: v for n, v in snap["counters"].items() if v}
    gauges = {n: v for n, v in snap["gauges"].items() if v}
    hists = {
        n: {"count": h["count"], "mean": h["mean"], "max": h["max"]}
        for n, h in snap["histograms"].items()
        if h["count"]
    }
    if counters:
        out["counters"] = counters
    if gauges:
        out["gauges"] = gauges
    if hists:
        out["histograms"] = hists
    return out


def reset() -> None:
    """Zero metrics and drop spans (instrument identities survive)."""
    _registry.reset()
    TRACER.reset()
