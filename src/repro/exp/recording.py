"""Artifact recording: compact JSON snapshots of sweep results.

``BENCH_<name>.json`` artifacts are committed to track the output and
performance trajectory of the reproduction across PRs, so they must stay
reviewable: floats are rounded to a few significant digits and long
numeric series are decimated to a bounded number of points (full fidelity
lives in the result cache and in the printed benchmark output, not in
git).  The compaction settings are recorded in the artifact itself so
:mod:`repro.exp.cli`'s ``diff`` can apply the same compaction to a fresh
run before comparing.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import resource
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = [
    "FLOAT_DIGITS",
    "MAX_SERIES",
    "MemoryProbe",
    "peak_rss_bytes",
    "anon_rss_bytes",
    "host_metadata",
    "to_jsonable",
    "compact",
    "write_artifact",
    "read_artifact",
]

#: significant digits kept for floats in committed artifacts
FLOAT_DIGITS = int(os.environ.get("REPRO_BENCH_FLOAT_DIGITS", "6"))
#: longest numeric series kept verbatim; longer ones are decimated
MAX_SERIES = int(os.environ.get("REPRO_BENCH_MAX_SERIES", "256"))


def to_jsonable(value: Any) -> Any:
    """Convert results (numpy, dataclasses, tuple keys) to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {
            k if isinstance(k, str) else repr(k): to_jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return value.tolist()
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _round_float(value: float, digits: int) -> float:
    if not math.isfinite(value):
        return value
    return float(f"{value:.{digits}g}")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_series_point(value: Any) -> bool:
    """A scalar or a short (<= 8) all-number tuple such as an (x, y) pair."""
    if _is_number(value):
        return True
    return (
        isinstance(value, list)
        and 0 < len(value) <= 8
        and all(_is_number(v) for v in value)
    )


def _decimate(series: list, cap: int) -> list:
    """Evenly subsample to at most ``cap`` points, keeping first and last."""
    stride = -(-len(series) // cap)  # ceil division
    sampled = series[::stride]
    if sampled[-1] != series[-1]:
        if len(sampled) >= cap:
            sampled[-1] = series[-1]
        else:
            sampled.append(series[-1])
    return sampled


def compact(value: Any, *, float_digits: int = FLOAT_DIGITS, max_series: int = MAX_SERIES) -> Any:
    """Round floats and cap numeric series in an already-JSONable structure."""
    if isinstance(value, float):
        return _round_float(value, float_digits)
    if isinstance(value, dict):
        return {
            k: compact(v, float_digits=float_digits, max_series=max_series)
            for k, v in value.items()
        }
    if isinstance(value, list):
        if len(value) > max_series and all(_is_series_point(v) for v in value):
            value = _decimate(value, max_series)
        return [
            compact(v, float_digits=float_digits, max_series=max_series) for v in value
        ]
    return value


def peak_rss_bytes() -> int:
    """This process's peak resident set size, in bytes.

    ``ru_maxrss`` is a monotonic high-water mark: kibibytes on Linux, bytes
    on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) * (1 if sys.platform == "darwin" else 1024)


def anon_rss_bytes() -> Optional[int]:
    """Current *anonymous* resident memory in bytes (Linux), else ``None``.

    Reads ``RssAnon`` from ``/proc/self/status``.  Unlike ``ru_maxrss``
    this is a current value, not a high-water mark, and it excludes
    file-backed and shared-memory pages — attaching a shared route table
    adds ~nothing here, which is exactly the per-worker overhead the
    scale-out benchmarks assert on.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("RssAnon:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


def host_metadata(*, workers: Optional[int] = None) -> Dict[str, Any]:
    """Host context for BENCH artifacts (pass as ``extra={"host": ...}``).

    Parallel numbers are meaningless without the machine they ran on:
    records the CPU count, the worker count actually used, and the shared
    route-table segments/bytes currently exported by this process (the
    ``routing.shm_*`` gauges).
    """
    from .. import obs

    gauges = obs.snapshot().get("gauges", {})
    return {
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "shm_segments": int(gauges.get("routing.shm_segments", 0) or 0),
        "shm_bytes": int(gauges.get("routing.shm_bytes", 0) or 0),
    }


class MemoryProbe:
    """Capture a block's memory footprint (the BENCH memory axis).

    Records three complementary signals:

    * ``peak_rss_bytes`` — the OS-level high-water mark at block exit, plus
      ``rss_growth_bytes`` (exit minus entry).  Essentially free, but
      monotonic across the process lifetime: a block after a bigger block
      reports the bigger peak.
    * ``anon_rss_bytes`` / ``anon_growth_bytes`` — current anonymous
      resident memory (Linux only, ``None`` elsewhere).  Excludes
      shared-memory pages, so it isolates a worker's *private* footprint
      from any attached route-table segments.
    * ``tracemalloc_peak_bytes`` — the peak of *Python* allocations inside
      the block, which resets per block and so isolates the block's own
      footprint.  Only measured when tracing is active: pass ``trace=True``
      to own a :mod:`tracemalloc` session for the block (2-4x slowdown — use
      for memory-focused benchmarks, not hot sweeps), or start tracemalloc
      yourself; when tracing is off the field is ``None``.
    """

    def __init__(self, *, trace: bool = False) -> None:
        self._trace = trace
        self._owns_trace = False
        self.entry_rss_bytes = 0
        self.peak_rss_bytes = 0
        self.rss_growth_bytes = 0
        self.entry_anon_rss_bytes: Optional[int] = None
        self.anon_rss_bytes: Optional[int] = None
        self.anon_growth_bytes: Optional[int] = None
        self.tracemalloc_peak_bytes: Optional[int] = None

    def __enter__(self) -> "MemoryProbe":
        self.entry_rss_bytes = peak_rss_bytes()
        self.entry_anon_rss_bytes = anon_rss_bytes()
        if self._trace and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_trace = True
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        return self

    def __exit__(self, *exc: Any) -> None:
        if tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self.tracemalloc_peak_bytes = int(peak)
            if self._owns_trace:
                tracemalloc.stop()
        self.peak_rss_bytes = peak_rss_bytes()
        self.rss_growth_bytes = self.peak_rss_bytes - self.entry_rss_bytes
        self.anon_rss_bytes = anon_rss_bytes()
        if self.anon_rss_bytes is not None and self.entry_anon_rss_bytes is not None:
            self.anon_growth_bytes = self.anon_rss_bytes - self.entry_anon_rss_bytes

    def as_dict(self) -> Dict[str, Optional[int]]:
        """JSON-ready snapshot (artifact/``CellResult`` payload shape)."""
        return {
            "peak_rss_bytes": self.peak_rss_bytes,
            "rss_growth_bytes": self.rss_growth_bytes,
            "anon_rss_bytes": self.anon_rss_bytes,
            "anon_growth_bytes": self.anon_growth_bytes,
            "tracemalloc_peak_bytes": self.tracemalloc_peak_bytes,
        }


def write_artifact(
    name: str,
    result: Any,
    wall_seconds: float,
    *,
    directory: Union[str, Path],
    float_digits: int = FLOAT_DIGITS,
    max_series: int = MAX_SERIES,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` with the compacted result and timing."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    payload: Dict[str, Any] = {
        "benchmark": name,
        "wall_seconds": _round_float(float(wall_seconds), 4),
        "compaction": {"float_digits": float_digits, "max_series": max_series},
        "result": compact(
            to_jsonable(result), float_digits=float_digits, max_series=max_series
        ),
    }
    if extra:
        payload.update(to_jsonable(extra))
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def read_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Load an artifact written by :func:`write_artifact`."""
    return json.loads(Path(path).read_text())
