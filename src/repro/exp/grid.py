"""The :class:`Grid` combinator: declarative cartesian/zipped sweeps.

A grid starts from a kernel and a set of common parameters, then grows
axes:

* :meth:`Grid.cross` adds an independent axis (cartesian product with all
  existing axes).  An axis can bind several parameter names at once by
  passing a tuple of names with tuple values -- those values move together
  (a *zipped* group) while still crossing against the other axes.
* :meth:`Grid.zipped` is sugar for a multi-name zipped axis built from
  parallel keyword lists.
* :meth:`Grid.derive` registers a function computing extra parameters from
  the axis values of each cell (per-cell seeds, topology dimensions looked
  up from a label, ...).

``chunk`` names the parameter (or callable) whose value groups cells onto
the same worker -- chunk by topology so per-process route-table memoization
stays hot.  ``drop`` lists parameters that are labels only: they are kept
as scenario tags for post-processing but removed from the kernel call.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from .scenario import Scenario, kernel_ref

__all__ = ["Grid", "scenarios_of"]


class Grid:
    """Declarative sweep over the cartesian product of parameter axes."""

    def __init__(
        self,
        kernel: Union[str, Callable],
        *,
        common: Optional[Mapping[str, Any]] = None,
        chunk: Union[str, Callable[[Mapping[str, Any]], str], None] = None,
        drop: Sequence[str] = (),
    ) -> None:
        self.kernel = kernel_ref(kernel)
        self.common: Dict[str, Any] = dict(common or {})
        self.chunk = chunk
        self.drop = tuple(drop)
        #: list of (param-name tuple, list of value tuples)
        self._axes: List[Tuple[Tuple[str, ...], List[Tuple[Any, ...]]]] = []
        self._derivations: List[Callable[[Dict[str, Any]], Mapping[str, Any]]] = []

    # ------------------------------------------------------------------ axes
    def cross(
        self,
        names: Union[str, Sequence[str], None] = None,
        values: Optional[Iterable[Any]] = None,
        **axes: Iterable[Any],
    ) -> "Grid":
        """Add independent axes (cartesian product with existing axes).

        ``cross(x=[1, 2], y=[3, 4])`` adds two scalar axes (4 combinations);
        ``cross(("preset", "sort"), [("greedy", False), ...])`` adds one
        zipped axis binding both names together.
        """
        if names is not None:
            if values is None:
                raise ValueError("cross(names, values) requires values")
            if isinstance(names, str):
                packed = [(v,) for v in values]
                self._axes.append(((names,), packed))
            else:
                names = tuple(names)
                packed = [tuple(v) for v in values]
                for v in packed:
                    if len(v) != len(names):
                        raise ValueError(
                            f"axis value {v!r} does not match names {names!r}"
                        )
                self._axes.append((names, packed))
        for name, vals in axes.items():
            self._axes.append(((name,), [(v,) for v in vals]))
        return self

    def zipped(self, **axes: Sequence[Any]) -> "Grid":
        """Add one axis zipping several same-length parameter lists."""
        if not axes:
            return self
        lengths = {len(list(v)) for v in axes.values()}
        if len(lengths) != 1:
            raise ValueError(f"zipped axes must have equal lengths, got {lengths}")
        names = tuple(axes)
        values = [tuple(combo) for combo in zip(*axes.values())]
        self._axes.append((names, values))
        return self

    def derive(self, fn: Callable[[Dict[str, Any]], Mapping[str, Any]]) -> "Grid":
        """Compute extra parameters per cell from the axis values."""
        self._derivations.append(fn)
        return self

    # ------------------------------------------------------------- scenarios
    def __len__(self) -> int:
        n = 1
        for _, values in self._axes:
            n *= len(values)
        return n

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios())

    def scenarios(self) -> List[Scenario]:
        """Materialise the grid into an ordered list of scenarios.

        Ordering is the nested-loop order of axis addition (first axis is
        the outermost loop), so declarations read like the loops they
        replace and results reassemble deterministically.
        """
        axis_names = [names for names, _ in self._axes]
        axis_values = [values for _, values in self._axes]
        out: List[Scenario] = []
        for combo in itertools.product(*axis_values) if axis_values else [()]:
            params: Dict[str, Any] = dict(self.common)
            tag_keys: List[str] = []
            for names, values in zip(axis_names, combo):
                for name, value in zip(names, values):
                    params[name] = value
                    tag_keys.append(name)
            for fn in self._derivations:
                derived = fn(dict(params))
                params.update(derived)
            for name in self.drop:
                if name in params and name not in tag_keys:
                    tag_keys.append(name)
            tags = {k: params[k] for k in tag_keys if k in params}
            chunk = self._chunk_of(params)
            kernel_params = {k: v for k, v in params.items() if k not in self.drop}
            out.append(Scenario(self.kernel, kernel_params, chunk=chunk, tags=tags))
        return out

    def _chunk_of(self, params: Mapping[str, Any]) -> str:
        if self.chunk is None:
            return ""
        if callable(self.chunk):
            return str(self.chunk(params))
        return str(params[self.chunk])


def scenarios_of(spec: Any) -> List[Scenario]:
    """Flatten a Scenario / Grid / nested iterable of either into a list."""
    if isinstance(spec, Scenario):
        return [spec]
    if hasattr(spec, "scenarios"):
        return list(spec.scenarios())
    out: List[Scenario] = []
    for item in spec:
        out.extend(scenarios_of(item))
    return out
