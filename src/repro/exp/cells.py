"""Generic simulator cell kernels (not tied to one paper figure).

These are the engine-facing entry points the simulator benchmarks and the
engine's own tests sweep over: pure functions of JSON parameters, importable
by worker processes.  Figure-specific cells live next to their figures in
:mod:`repro.analysis.figures`.
"""

from __future__ import annotations

import time
from typing import Optional

from .scenario import cell
from .seeding import as_generator

__all__ = [
    "probe_cell",
    "flow_alltoall_cell",
    "packet_vs_flow_cell",
    "packet_event_rate_cell",
    "route_table_reuse_cell",
]


@cell(version=1)
def probe_cell(*, value=None, seed: int = 0, draws: int = 0):
    """Trivial deterministic cell used by tests and smoke runs.

    Echoes ``value`` and, when ``draws > 0``, a few seeded random numbers
    (to exercise the bit-identity guarantees across execution paths).
    """
    rng = as_generator(seed)
    return {
        "value": value,
        "draws": [float(x) for x in rng.random(draws)] if draws else [],
    }


@cell(version=1)
def flow_alltoall_cell(
    *,
    a: int,
    b: int,
    x: int,
    y: int,
    max_paths: int = 8,
    num_phases: Optional[int] = 16,
    seed: int = 1,
    backend: str = "flow",
) -> float:
    """Alltoall fraction of an ``HxaMesh`` (a x b boards of x x y) via a backend."""
    from ..core import build_hammingmesh
    from ..sim import get_backend

    topo = build_hammingmesh(a, b, x, y)
    model = get_backend(backend, topo, max_paths=max_paths)
    return float(model.alltoall_fraction(num_phases=num_phases, seed=seed))


@cell(version=1)
def packet_vs_flow_cell(
    *,
    a: int,
    b: int,
    x: int,
    y: int,
    max_paths: int = 4,
    message_size: int = 1 << 18,
    seed: int = 4,
) -> dict:
    """Mean permutation bandwidth of the packet vs the flow backend."""
    from ..core import build_hammingmesh
    from ..sim import get_backend, random_permutation

    topo = build_hammingmesh(a, b, x, y)
    flows = random_permutation(topo.num_accelerators, seed=seed)
    packet = get_backend("packet", topo, max_paths=max_paths, message_size=message_size)
    flow = get_backend("flow", topo, max_paths=max_paths)
    return {
        "packet_mean": float(packet.phase_rates(flows).mean()),
        "flow_mean": float(flow.phase_rates(flows, exact=True).mean()),
    }


@cell(version=1)
def packet_event_rate_cell(
    *, a: int, b: int, x: int, y: int, message_size: int = 1 << 17, seed: int = 9
) -> int:
    """Events processed by the packet simulator for one permutation load."""
    from ..core import build_hammingmesh
    from ..sim import PacketNetwork, random_permutation

    topo = build_hammingmesh(a, b, x, y)
    flows = random_permutation(topo.num_accelerators, seed=seed)
    net = PacketNetwork(topo)
    net.send_flows(flows, message_size)
    net.run()
    return int(net.engine.processed_events)


@cell(version=1, cacheable=False)
def route_table_reuse_cell(
    *,
    a: int,
    b: int,
    x: int,
    y: int,
    max_paths: int = 8,
    num_phases: int = 12,
    seed: int = 3,
) -> dict:
    """Cold-vs-warm shared-RouteTable measurement (wall-clock; never cached)."""
    from ..core import build_hammingmesh
    from ..sim import FlowSimulator, clear_route_tables, random_permutation, route_table_for

    topo = build_hammingmesh(a, b, x, y)
    flows = random_permutation(topo.num_accelerators, seed=seed)

    def sweep():
        sim = FlowSimulator(topo, max_paths=max_paths)
        a2a = sim.alltoall_bandwidth(num_phases=num_phases, seed=1)
        perm = float(sim.permutation_bandwidths(flows).mean())
        return a2a, perm

    clear_route_tables()
    t0 = time.perf_counter()
    cold = sweep()
    t_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = sweep()
    t_warm = time.perf_counter() - t0
    table = route_table_for(topo, max_paths=max_paths)
    return {
        "cold_seconds": t_cold,
        "warm_seconds": t_warm,
        "speedup": t_cold / max(t_warm, 1e-12),
        "alltoall_fraction": cold[0],
        "permutation_mean": cold[1],
        "warm_matches_cold": cold == warm,
        "pairs_routed": table.num_pairs_routed,
        "pair_hits": table.stats.hits,
    }
