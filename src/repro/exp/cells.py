"""Generic simulator cell kernels (not tied to one paper figure).

These are the engine-facing entry points the simulator benchmarks and the
engine's own tests sweep over: pure functions of JSON parameters, importable
by worker processes.  Figure-specific cells live next to their figures in
:mod:`repro.analysis.figures`.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from .scenario import cell
from .seeding import as_generator

__all__ = [
    "probe_cell",
    "fragile_cell",
    "flow_alltoall_cell",
    "packet_vs_flow_cell",
    "packet_event_rate_cell",
    "flowsim_maxmin_cell",
    "flowsim_batch_cell",
    "flowsim_delta_cell",
    "fault_delta_cell",
    "maxmin_permutation_cell",
    "maxmin_permutation_batch",
    "route_table_reuse_cell",
    "obs_overhead_cell",
]


@cell(version=1)
def probe_cell(*, value=None, seed: int = 0, draws: int = 0):
    """Trivial deterministic cell used by tests and smoke runs.

    Echoes ``value`` and, when ``draws > 0``, a few seeded random numbers
    (to exercise the bit-identity guarantees across execution paths).
    """
    rng = as_generator(seed)
    return {
        "value": value,
        "draws": [float(x) for x in rng.random(draws)] if draws else [],
    }


@cell(version=1, cacheable=False)
def fragile_cell(
    *, mode: str = "ok", sentinel: str = "", seconds: float = 0.0, value: int = 0
):
    """Deliberately misbehaving cell for runner-hardening tests.

    ``mode`` selects the failure: ``"ok"`` returns immediately,
    ``"crash"`` hard-kills the worker process (``os._exit`` — the
    :class:`BrokenProcessPool` scenario), ``"raise"`` raises, ``"hang"``
    sleeps ``seconds`` (the cell-timeout scenario).  With ``sentinel``
    set, the misbehavior only happens while the sentinel file is absent
    (it is created first), so a retried cell succeeds — the
    crash-once-then-recover scenario.  Non-cacheable: its behavior
    depends on on-disk state.
    """
    misbehave = mode != "ok"
    if misbehave and sentinel:
        if os.path.exists(sentinel):
            misbehave = False
        else:
            with open(sentinel, "w") as fh:
                fh.write(mode)
    if misbehave:
        if mode == "crash":
            os._exit(17)
        elif mode == "raise":
            raise RuntimeError("poison cell")
        elif mode == "hang":
            time.sleep(seconds)
    return {"value": value, "mode": mode}


@cell(version=1)
def flow_alltoall_cell(
    *,
    a: int,
    b: int,
    x: int,
    y: int,
    max_paths: int = 8,
    num_phases: Optional[int] = 16,
    seed: int = 1,
    backend: str = "flow",
    policy: str = "minimal",
) -> float:
    """Alltoall fraction of an ``HxaMesh`` (a x b boards of x x y) via a backend."""
    from ..core import build_hammingmesh
    from ..sim import get_backend

    topo = build_hammingmesh(a, b, x, y)
    model = get_backend(backend, topo, max_paths=max_paths, policy=policy)
    return float(model.alltoall_fraction(num_phases=num_phases, seed=seed))


@cell(version=1)
def packet_vs_flow_cell(
    *,
    a: int,
    b: int,
    x: int,
    y: int,
    max_paths: int = 4,
    message_size: int = 1 << 18,
    seed: int = 4,
) -> dict:
    """Mean permutation bandwidth of the packet vs the flow backend."""
    from ..core import build_hammingmesh
    from ..sim import get_backend, random_permutation

    topo = build_hammingmesh(a, b, x, y)
    flows = random_permutation(topo.num_accelerators, seed=seed)
    packet = get_backend("packet", topo, max_paths=max_paths, message_size=message_size)
    flow = get_backend("flow", topo, max_paths=max_paths)
    return {
        "packet_mean": float(packet.phase_rates(flows).mean()),
        "flow_mean": float(flow.phase_rates(flows, exact=True).mean()),
    }


@cell(version=2, cacheable=False)
def packet_event_rate_cell(
    *,
    a: int,
    b: int,
    x: int,
    y: int,
    message_size: int = 1 << 17,
    max_paths: int = 4,
    seed: int = 9,
    impl: str = "vectorized",
    repeats: int = 3,
) -> dict:
    """Packet-simulator event throughput for one permutation load.

    Runs either the vectorized core (``impl="vectorized"``) or the
    pre-vectorization reference (``impl="reference"``) on an identical
    workload and reports events processed, core wall-clock seconds
    (best of ``repeats`` fresh runs, the standard noise guard), and the
    event rate.  The shared route table is warmed by a tiny pre-run first,
    so the measurement isolates the simulator core (route enumeration has
    its own benchmark).  Never cached: the result is a timing.
    """
    from ..core import build_hammingmesh
    from ..sim import (
        PacketNetwork,
        PacketSimConfig,
        ReferencePacketNetwork,
        random_permutation,
    )

    topo = build_hammingmesh(a, b, x, y)
    flows = random_permutation(topo.num_accelerators, seed=seed)
    config = PacketSimConfig(max_paths=max_paths)
    if impl not in ("vectorized", "reference"):
        raise ValueError(f"unknown packet impl {impl!r}")
    cls = ReferencePacketNetwork if impl == "reference" else PacketNetwork
    warm = cls(topo, config=config)
    warm.send_flows(flows, 1)
    warm.run()
    seconds = float("inf")
    for _ in range(max(1, repeats)):
        net = cls(topo, config=config)
        net.send_flows(flows, message_size)
        start = time.perf_counter()
        net.run()
        seconds = min(seconds, time.perf_counter() - start)
    events = int(net.engine.processed_events)
    return {
        "impl": impl,
        "events": events,
        "seconds": seconds,
        "events_per_second": events / seconds,
    }


@cell(version=1, cacheable=False)
def flowsim_maxmin_cell(
    *,
    cluster: str = "small",
    keys: tuple = ("ft_nonblocking", "dragonfly", "hx4mesh", "torus"),
    num_permutations: int = 2,
    max_paths: int = 8,
    seed: int = 11,
    impl: str = "incremental",
    repeats: int = 2,
) -> dict:
    """Fig12-style max-min permutation sweep timing (wall-clock, never cached).

    Solves ``num_permutations`` random permutations on each selected
    fig12-cluster topology with either the incremental solver
    (:meth:`FlowSimulator.maxmin_rates`) or the full-rescan reference
    (:func:`repro.sim.reference.reference_maxmin_rates`).  Assignments are
    warmed before timing, so only the progressive-filling solve is measured
    (best of ``repeats`` passes per solve); the mean rates come along so
    callers can assert both solvers produce the same numbers.
    """
    from ..analysis.clusters import cluster_configs
    from ..sim import FlowSimulator, random_permutation, reference_maxmin_rates

    if impl not in ("incremental", "reference"):
        raise ValueError(f"unknown maxmin impl {impl!r}")
    configs = {c.key: c for c in cluster_configs(cluster)}
    seconds = 0.0
    mean_rates = {}
    for key in keys:
        topo = configs[key].build()
        sim = FlowSimulator(topo, max_paths=max_paths)
        means = []
        for p in range(num_permutations):
            flows = random_permutation(topo.num_accelerators, seed=seed + p)
            sim.assign(flows)  # route + build incidence outside the clock
            best = float("inf")
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                if impl == "reference":
                    result = reference_maxmin_rates(sim, flows)
                else:
                    result = sim.maxmin_rates(flows)
                best = min(best, time.perf_counter() - start)
            seconds += best
            means.append(float(result.flow_rates.mean()))
        mean_rates[key] = means
    return {"impl": impl, "seconds": seconds, "mean_rates": mean_rates}


@cell(version=1, cacheable=False)
def flowsim_batch_cell(
    *,
    cluster: str = "small",
    keys: tuple = ("ft_nonblocking", "dragonfly", "hx4mesh", "torus"),
    num_permutations: int = 8,
    max_paths: int = 8,
    seed: int = 21,
    impl: str = "batched",
    repeats: int = 4,
) -> dict:
    """Serial vs batched max-min solve timing (wall-clock, never cached).

    The batched-solver contract probe: solves ``num_permutations`` random
    permutations on each selected fig12-cluster topology either one at a
    time (``impl="serial"``, repeated :meth:`FlowSimulator.maxmin_rates`
    calls) or stacked into one vectorized
    :meth:`FlowSimulator.maxmin_rates_batch` call (``impl="batched"``).
    Assignments are warmed outside the clock, so only the solves are
    measured (best of ``repeats``); the mean rates come along so callers
    can assert both paths produce bit-identical numbers.
    """
    from ..analysis.clusters import cluster_configs
    from ..sim import FlowSimulator, random_permutation

    if impl not in ("serial", "batched"):
        raise ValueError(f"unknown batch impl {impl!r}")
    configs = {c.key: c for c in cluster_configs(cluster)}
    seconds = 0.0
    mean_rates = {}
    for key in keys:
        topo = configs[key].build()
        sim = FlowSimulator(topo, max_paths=max_paths)
        flow_sets = [
            random_permutation(topo.num_accelerators, seed=seed + p)
            for p in range(num_permutations)
        ]
        for flows in flow_sets:
            sim.assign(flows)  # route + build incidence outside the clock
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            if impl == "serial":
                results = [sim.maxmin_rates(flows) for flows in flow_sets]
            else:
                results = sim.maxmin_rates_batch(flow_sets)
            best = min(best, time.perf_counter() - start)
        seconds += best
        mean_rates[key] = [float(r.flow_rates.mean()) for r in results]
    return {"impl": impl, "seconds": seconds, "mean_rates": mean_rates}


@cell(version=1, cacheable=False)
def flowsim_delta_cell(
    *,
    topo_key: str = "fattree_tapered",
    policy: str = "minimal",
    num_moves: int = 32,
    batch: int = 16,
    max_paths: int = 8,
    seed: int = 13,
    repeats: int = 3,
) -> dict:
    """Per-neighbour-evaluation cost of the delta engine vs cold solves.

    Builds one routing-policy-study topology, solves its hand-built
    adversarial permutation into a warm state, and evaluates ``num_moves``
    random swap-two-destinations candidates two ways: speculatively
    batched through :meth:`FlowSimulator.maxmin_rates_delta_batch` (the
    adversary search's inner loop) and one cold
    :meth:`FlowSimulator.maxmin_rates` per candidate.  Both paths run once
    outside the clock first — whichever engine sees a (src, dst) pair
    first pays its route enumeration, which would otherwise bias the
    comparison — then are timed interleaved, best of ``repeats``, so slow
    multiplicative machine noise hits both sides alike.  The assignment
    LRU is disabled: a real search never revisits a candidate, so cached
    assignments would flatter the cold baseline.  Reports per-evaluation
    times, the speedup, warm/fallback counts, and the worst rate
    disagreement (the ``<= 1e-12`` parity evidence).  Never cached: the
    result is a timing.
    """
    import numpy as np

    from ..analysis.figures import _routing_policy_topo
    from ..sim import FlowSimulator, adversarial_permutation, swap_destinations

    topo = _routing_policy_topo(topo_key)
    sim = FlowSimulator(topo, policy=policy, max_paths=max_paths, assign_cache=0)
    flows = adversarial_permutation(topo)
    n = len(flows)
    rng = as_generator(seed)
    state = sim.maxmin_warm_state(flows)
    moves: list = []
    cands: list = []
    while len(cands) < num_moves:
        i, j = (int(v) for v in rng.choice(n, size=2, replace=False))
        cand = swap_destinations(flows, i, j)
        if cand[i].src != cand[i].dst and cand[j].src != cand[j].dst:
            moves.append((i, j))
            cands.append(cand)

    def eval_delta():
        out = []
        for k in range(0, num_moves, batch):
            out.extend(
                sim.maxmin_rates_delta_batch(
                    state, cands[k : k + batch], changed=moves[k : k + batch]
                )
            )
        return out

    def eval_cold():
        return [sim.maxmin_rates(cand) for cand in cands]

    delta_results = eval_delta()  # clock-free pass: warm the route caches
    cold_results = eval_cold()
    max_abs_diff = max(
        float(np.abs(d.result.flow_rates - c.flow_rates).max())
        for d, c in zip(delta_results, cold_results)
    )
    delta_seconds = cold_seconds = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        eval_delta()
        delta_seconds = min(delta_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        eval_cold()
        cold_seconds = min(cold_seconds, time.perf_counter() - start)
    return {
        "topo_key": topo_key,
        "policy": policy,
        "num_moves": num_moves,
        "warm_evals": sum(1 for d in delta_results if d.warm),
        "delta_ms_per_eval": 1e3 * delta_seconds / num_moves,
        "cold_ms_per_eval": 1e3 * cold_seconds / num_moves,
        "speedup": cold_seconds / max(delta_seconds, 1e-12),
        "max_abs_diff": max_abs_diff,
    }


@cell(version=1, cacheable=False)
def fault_delta_cell(
    *,
    topo_key: str = "fattree_tapered",
    policy: str = "minimal",
    num_events: int = 6,
    max_paths: int = 8,
    seed: int = 3,
    repeats: int = 3,
) -> dict:
    """Fault-event replay cost: warm delta re-solves vs per-event cold solves.

    Builds one routing-policy-study topology, solves its hand-built
    adversarial permutation, then replays a cumulative ``num_events``-cable
    fault schedule two ways: through :class:`FaultEventSolver` (each event
    warm delta re-solves only the flows whose routes crossed the newly-dead
    cable) and through one cold :meth:`FlowSimulator.maxmin_rates` per
    event over the degraded table.  Every degraded table is built once
    outside the clock — table construction is memoized and identical for
    both engines, so the timing compares solver work.  Reports per-event
    times, the speedup, the warm-event count, and the worst rate
    disagreement across the schedule.  Never cached: the result is a
    timing.
    """
    import numpy as np

    from ..analysis.figures import _routing_policy_topo
    from ..sim import FlowSimulator, adversarial_permutation, link_fault_schedule
    from ..sim.faults import FaultEventSolver, degraded_route_table, split_connected

    topo = _routing_policy_topo(topo_key)
    flows = adversarial_permutation(topo)
    #: events with >= 1 dead cable — the baseline (schedule[0]) solve is the
    #: solver's constructor and stays outside the clock on both engines.
    events = link_fault_schedule(topo, num_events, seed=seed)[1:]

    def make_solver():
        return FaultEventSolver(topo, flows, policy=policy, max_paths=max_paths)

    def eval_warm(solver):
        return solver.apply_schedule(events)

    def eval_cold():
        out = []
        for faults in events:
            table = degraded_route_table(
                topo, faults, max_paths=max_paths, policy=policy
            )
            sim = FlowSimulator(topo, table=table)
            ranks = sim.ranks
            pairs = [(ranks[f.src], ranks[f.dst]) for f in flows]
            ok, _ = split_connected(table, pairs)
            active = [flows[i] for i in ok]
            rates = np.zeros(len(flows))
            if active:
                rates[ok] = sim.maxmin_rates(active).flow_rates
            out.append(rates)
        return out

    warm_reports = eval_warm(make_solver())  # clock-free: memoize every table
    cold_rates = eval_cold()
    max_abs_diff = max(
        float(np.abs(r.rates - c).max()) for r, c in zip(warm_reports, cold_rates)
    )
    warm_seconds = cold_seconds = float("inf")
    for _ in range(max(1, repeats)):
        solver = make_solver()  # baseline solve outside the clock
        start = time.perf_counter()
        eval_warm(solver)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        eval_cold()
        cold_seconds = min(cold_seconds, time.perf_counter() - start)
    return {
        "topo_key": topo_key,
        "policy": policy,
        "num_events": num_events,
        "warm_events": sum(1 for r in warm_reports if r.warm),
        "delta_ms_per_event": 1e3 * warm_seconds / len(events),
        "cold_ms_per_event": 1e3 * cold_seconds / len(events),
        "speedup": cold_seconds / max(warm_seconds, 1e-12),
        "max_abs_diff": max_abs_diff,
    }


#: Keyword defaults shared by :func:`maxmin_permutation_cell` and its batch
#: companion.  The runner hands the companion raw scenario parameter dicts,
#: which omit parameters left at their defaults -- both paths must fill the
#: same values or batched and per-cell results could diverge.
_MAXMIN_PERM_DEFAULTS = {
    "seed": 0,
    "max_paths": 8,
    "policy": "minimal",
    "mem_budget": None,
}


def _permutation_summary(sim, flows, result) -> dict:
    """Per-rank receive fractions of one solved permutation, summarised.

    Replicates the :meth:`FlowSimulator.permutation_bandwidths` post-step on
    an already-solved :class:`PhaseResult`, so the solo cell and the batch
    companion share one code path from solver output to JSON result.
    """
    import numpy as np

    by_dst = np.zeros(len(sim.ranks))
    dst = np.fromiter((f.dst for f in flows), dtype=np.int64, count=len(flows))
    np.add.at(by_dst, dst, result.flow_rates)
    fractions = by_dst / sim.injection_capacity
    return {
        "mean_fraction": float(fractions.mean()),
        "min_fraction": float(fractions.min()),
        "p5_fraction": float(np.percentile(fractions, 5.0)),
        "bottleneck_link": int(result.bottleneck_link),
        "num_flows": len(flows),
    }


@cell(version=1, batch="repro.exp.cells:maxmin_permutation_batch")
def maxmin_permutation_cell(
    *,
    a: int,
    b: int,
    x: int,
    y: int,
    seed: int = 0,
    max_paths: int = 8,
    policy: str = "minimal",
    mem_budget=None,
) -> dict:
    """Receive-bandwidth summary of one random permutation on an HxaMesh.

    The scale-out sweep cell: builds an ``a x b`` boards of ``x x y``
    HammingMesh, routes under an optional route-table ``mem_budget``
    (bytes, or ``"4G"``-style strings; see
    :func:`repro.sim.routing.parse_mem_budget`), and solves one seeded
    permutation with the incremental max-min solver.  Declares
    :func:`maxmin_permutation_batch` as its batch companion, so a chunk of
    same-topology cells is solved in one vectorized
    :meth:`~repro.sim.flowsim.FlowSimulator.maxmin_rates_batch` call —
    bit-identically, because the batch solver is bit-identical to the
    serial one.
    """
    from ..core import build_hammingmesh
    from ..sim import FlowSimulator, random_permutation

    topo = build_hammingmesh(a, b, x, y)
    sim = FlowSimulator(topo, max_paths=max_paths, policy=policy, mem_budget=mem_budget)
    flows = random_permutation(topo.num_accelerators, seed=seed)
    result = sim.maxmin_rates(flows)
    return _permutation_summary(sim, flows, result)


def maxmin_permutation_batch(param_list) -> list:
    """Batch companion of :func:`maxmin_permutation_cell`.

    Groups the parameter dicts by everything except ``seed`` (scenarios on
    different topologies or routing knobs cannot share a solve), builds one
    :class:`FlowSimulator` per group, and solves each group's permutations
    in a single :meth:`maxmin_rates_batch` call.  Results come back in
    input order and match per-cell calls bit-for-bit.
    """
    from ..core import build_hammingmesh
    from ..sim import FlowSimulator, random_permutation

    filled = [{**_MAXMIN_PERM_DEFAULTS, **p} for p in param_list]
    groups: dict = {}
    for i, p in enumerate(filled):
        key = (p["a"], p["b"], p["x"], p["y"], p["max_paths"], p["policy"], p["mem_budget"])
        groups.setdefault(key, []).append(i)
    out: list = [None] * len(filled)
    for (a, b, x, y, max_paths, policy, mem_budget), members in groups.items():
        topo = build_hammingmesh(a, b, x, y)
        sim = FlowSimulator(topo, max_paths=max_paths, policy=policy, mem_budget=mem_budget)
        flow_sets = [
            random_permutation(topo.num_accelerators, seed=filled[i]["seed"])
            for i in members
        ]
        results = sim.maxmin_rates_batch(flow_sets)
        for i, flows, result in zip(members, flow_sets, results):
            out[i] = _permutation_summary(sim, flows, result)
    return out


@cell(version=1, cacheable=False)
def obs_overhead_cell(
    *,
    a: int = 2,
    b: int = 2,
    x: int = 4,
    y: int = 4,
    message_size: int = 1 << 17,
    max_paths: int = 4,
    seed: int = 9,
    rounds: int = 30,
) -> dict:
    """Overhead of ``repro.obs`` on the packet-simulator hot loop.

    Runs ``rounds`` back-to-back *(disabled, enabled, disabled)* triples of
    one short (milliseconds-scale) permutation workload on a shared warmed
    topology.  The workload is deliberately small so a whole triple fits
    inside one noise epoch of a shared/virtualised host — slow multiplicative
    machine noise then cancels out of each triple's within-triple ratios:

    * ``drift`` — relative gap between the triple's two disabled passes.
      Bounds residual noise *and* any obs state leaking past ``disable()``
      (the disabled path must stay the uninstrumented-era fast path);
    * ``overhead`` — relative slowdown of the enabled pass against the
      faster disabled bracket (sampled drive, histograms, spans included).

    The reported ``disabled_drift`` / ``enabled_overhead`` are the **best
    (minimum) triple**.  That is sound, not optimistic: noise can only
    inflate a run above its true floor, so the cleanest triple converges on
    the true leak/overhead, while a genuine regression raises *every*
    triple and therefore the minimum with them — the repository's standard
    best-of guard, applied to ratios instead of times.  The medians ride
    along as noise diagnostics.  Never cached (the result is a timing), and
    the caller's enable state is restored, so a ``--trace`` run can measure
    itself safely.
    """
    from .. import obs
    from ..core import build_hammingmesh
    from ..sim import PacketNetwork, PacketSimConfig, random_permutation

    topo = build_hammingmesh(a, b, x, y)
    flows = random_permutation(topo.num_accelerators, seed=seed)
    config = PacketSimConfig(max_paths=max_paths)
    warm = PacketNetwork(topo, config=config)
    warm.send_flows(flows, message_size)
    warm.run()

    events = [0]

    def one_run(enabled: bool) -> float:
        if enabled:
            obs.enable()
        else:
            obs.disable()
        net = PacketNetwork(topo, config=config)
        net.send_flows(flows, message_size)
        start = time.perf_counter()
        net.run()
        elapsed = time.perf_counter() - start
        events[0] = int(net.engine.processed_events)
        return elapsed

    drifts: list = []
    overheads: list = []
    best_off = float("inf")
    best_on = float("inf")
    was_enabled = obs.is_enabled()
    try:
        for _ in range(max(1, rounds)):
            t_off1 = one_run(False)
            t_on = one_run(True)
            t_off2 = one_run(False)
            off = min(t_off1, t_off2)
            best_off = min(best_off, off)
            best_on = min(best_on, t_on)
            drifts.append(abs(t_off1 - t_off2) / max(t_off1, t_off2))
            overheads.append(max(0.0, t_on / off - 1.0))
    finally:
        if was_enabled:
            obs.enable()
        else:
            obs.disable()
    drifts.sort()
    overheads.sort()
    mid = len(drifts) // 2
    return {
        "events_per_second_disabled": events[0] / best_off,
        "events_per_second_enabled": events[0] / best_on,
        "disabled_drift": drifts[0],
        "enabled_overhead": overheads[0],
        "median_drift": drifts[mid],
        "median_overhead": overheads[mid],
        "rounds": len(drifts),
    }


@cell(version=1, cacheable=False)
def route_table_reuse_cell(
    *,
    a: int,
    b: int,
    x: int,
    y: int,
    max_paths: int = 8,
    num_phases: int = 12,
    seed: int = 3,
) -> dict:
    """Cold-vs-warm shared-RouteTable measurement (wall-clock; never cached)."""
    from ..core import build_hammingmesh
    from ..sim import FlowSimulator, clear_route_tables, random_permutation, route_table_for

    topo = build_hammingmesh(a, b, x, y)
    flows = random_permutation(topo.num_accelerators, seed=seed)

    def sweep():
        sim = FlowSimulator(topo, max_paths=max_paths)
        a2a = sim.alltoall_bandwidth(num_phases=num_phases, seed=1)
        perm = float(sim.permutation_bandwidths(flows).mean())
        return a2a, perm

    clear_route_tables()
    t0 = time.perf_counter()
    cold = sweep()
    t_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = sweep()
    t_warm = time.perf_counter() - t0
    table = route_table_for(topo, max_paths=max_paths)
    return {
        "cold_seconds": t_cold,
        "warm_seconds": t_warm,
        "speedup": t_cold / max(t_warm, 1e-12),
        "alltoall_fraction": cold[0],
        "permutation_mean": cold[1],
        "warm_matches_cold": cold == warm,
        "pairs_routed": table.num_pairs_routed,
        "pair_hits": table.stats.hits,
    }
