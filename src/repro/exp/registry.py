"""Named sweep registry: every figure/table sweep, runnable by name.

A :class:`SweepSpec` couples a grid *builder* (keyword parameters -> Grid)
with a *post-processing* function (cell results -> the figure's data
structure) and the artifact name the benchmark harness records it under.
The analysis layer registers its sweeps at import time;
:func:`ensure_registered` imports those modules lazily so that
``repro.exp`` itself stays import-light and free of circular imports.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from .grid import scenarios_of
from .runner import RunReport, Runner

__all__ = [
    "SweepSpec",
    "SweepRun",
    "register_sweep",
    "get_sweep",
    "list_sweeps",
    "run_sweep",
    "run_sweeps",
]

#: modules whose import registers the standard sweeps
_SWEEP_MODULES = (
    "repro.analysis.figures",
    "repro.analysis.table2",
    "repro.analysis.lifetime",
    "repro.analysis.scaleout",
    "repro.analysis.adversary",
    "repro.analysis.resilience",
)

_SWEEPS: Dict[str, "SweepSpec"] = {}


@dataclass(frozen=True)
class SweepSpec:
    """A named, parameterised sweep: grid builder + post-processing."""

    name: str
    build: Callable[..., Any]
    post: Callable[[RunReport], Any]
    description: str = ""
    artifact: str = ""
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def grid(self, **params: Any):
        merged = {**self.defaults, **params}
        return self.build(**merged)

    def accepts(self, key: str) -> bool:
        """Whether the grid builder takes ``key`` as a keyword parameter."""
        sig = inspect.signature(self.build)
        if any(p.kind is p.VAR_KEYWORD for p in sig.parameters.values()):
            return True
        return key in sig.parameters

    def artifact_name(self, **params: Any) -> str:
        """The artifact name, with ``{param}`` placeholders filled in."""
        merged = {**self.defaults, **params}
        try:
            return self.artifact.format(**merged)
        except (KeyError, IndexError):
            return self.artifact


@dataclass(frozen=True)
class SweepRun:
    """Result of one named sweep: the figure payload plus the run report."""

    name: str
    payload: Any
    report: RunReport


def register_sweep(
    name: str,
    *,
    build: Callable[..., Any],
    post: Callable[[RunReport], Any],
    description: str = "",
    artifact: str = "",
    defaults: Optional[Mapping[str, Any]] = None,
) -> SweepSpec:
    spec = SweepSpec(
        name=name,
        build=build,
        post=post,
        description=description,
        artifact=artifact or name,
        defaults=dict(defaults or {}),
    )
    _SWEEPS[name] = spec
    return spec


def ensure_registered() -> None:
    for module in _SWEEP_MODULES:
        importlib.import_module(module)


def get_sweep(name: str) -> SweepSpec:
    ensure_registered()
    try:
        return _SWEEPS[name]
    except KeyError:
        known = ", ".join(sorted(_SWEEPS))
        raise ValueError(f"unknown sweep {name!r}; registered sweeps: {known}") from None


def list_sweeps() -> List[SweepSpec]:
    ensure_registered()
    return [_SWEEPS[name] for name in sorted(_SWEEPS)]


def run_sweep(
    name: str,
    *,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
    cache: Any = "auto",
    **params: Any,
) -> SweepRun:
    """Build and run one named sweep; returns payload + report."""
    spec = get_sweep(name)
    if runner is None:
        runner = Runner(workers=workers, cache=cache)
    report = runner.run(spec.grid(**params))
    return SweepRun(name, spec.post(report), report)


def run_sweeps(
    sweeps: Mapping[str, Mapping[str, Any]],
    *,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
    cache: Any = "auto",
) -> Tuple[Dict[str, SweepRun], RunReport]:
    """Run several named sweeps as ONE scenario set (one worker pool).

    Cells of all sweeps are interleaved across workers, so a multi-figure
    run parallelises across figures, not just within one.  Returns the
    per-sweep runs plus the combined report.
    """
    if runner is None:
        runner = Runner(workers=workers, cache=cache)
    specs = {name: get_sweep(name) for name in sweeps}
    grids = {name: specs[name].grid(**dict(params)) for name, params in sweeps.items()}
    sizes = {name: len(scenarios_of(grid)) for name, grid in grids.items()}
    report = runner.run(list(grids.values()))
    runs: Dict[str, SweepRun] = {}
    offset = 0
    for name, grid in grids.items():
        part = report.slice(offset, offset + sizes[name])
        offset += sizes[name]
        runs[name] = SweepRun(name, specs[name].post(part), part)
    return runs, report
