"""``python -m repro.exp`` -- list, run, and diff figure sweeps by name.

Examples::

    python -m repro.exp list
    python -m repro.exp run fig8 --workers 4 --set num_traces=10
    python -m repro.exp run fig8 fig12 --cache .exp-cache --out benchmarks/artifacts
    python -m repro.exp run fig8 --cache .exp-cache --require-warm
    python -m repro.exp diff fig8 --against benchmarks/artifacts/BENCH_fig08_utilization.json
"""

from __future__ import annotations

import argparse
import ast
import json
import math
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .. import obs
from .cache import MISS, ResultCache
from .grid import scenarios_of
from .recording import (
    compact,
    host_metadata,
    read_artifact,
    to_jsonable,
    write_artifact,
)
from .registry import get_sweep, list_sweeps, run_sweeps
from .runner import Runner

__all__ = ["main"]


class _RefreshCache(ResultCache):
    """A cache that never reads (forces recompute) but still writes."""

    def get(self, content_hash: str) -> Any:
        self.stats.misses += 1
        return MISS


def _parse_set(items: List[str]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for item in items:
        key, sep, raw = item.partition("=")
        if not sep:
            raise SystemExit(f"--set expects key=value, got {item!r}")
        try:
            params[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            params[key] = raw
    return params


def _params_for(sweep_names: List[str], params: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Distribute --set overrides across the requested sweeps.

    ``sweep.key=value`` targets one sweep explicitly; a bare ``key=value``
    applies to every listed sweep whose grid builder accepts that keyword
    (so ``run fig8 fig16 --set num_traces=10`` tunes fig8 without crashing
    fig16).  A bare key no sweep accepts is an error.
    """
    per_sweep: Dict[str, Dict[str, Any]] = {name: {} for name in sweep_names}
    for key, value in params.items():
        target, sep, subkey = key.partition(".")
        if sep and target in per_sweep:
            per_sweep[target][subkey] = value
            continue
        takers = [n for n in sweep_names if get_sweep(n).accepts(key)]
        if not takers:
            raise SystemExit(
                f"--set {key}: none of the requested sweeps accept this parameter"
            )
        for name in takers:
            per_sweep[name][key] = value
    return per_sweep


def _resolve_cache(args: argparse.Namespace) -> Any:
    if getattr(args, "no_cache", False):
        return None
    root = getattr(args, "cache", None)
    if getattr(args, "refresh", False):
        return _RefreshCache(root)
    if root is not None:
        return ResultCache(root)
    return True  # CLI runs default to the standard cache location


# ---------------------------------------------------------------------- list
def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for spec in list_sweeps():
        try:
            cells = len(scenarios_of(spec.grid()))
        except Exception:
            cells = -1
        rows.append((spec.name, cells, spec.artifact_name(), spec.description))
    width = max(len(r[0]) for r in rows)
    print(f"{'sweep':<{width}}  {'cells':>5}  description")
    for name, cells, artifact, description in rows:
        cell_text = str(cells) if cells >= 0 else "?"
        print(f"{name:<{width}}  {cell_text:>5}  {description}  [BENCH_{artifact}.json]")
    return 0


# ----------------------------------------------------------------------- run
def _cmd_run(args: argparse.Namespace) -> int:
    per_sweep = _params_for(args.sweep, _parse_set(args.set or []))
    if args.trace:
        obs.enable()
    runner = Runner(workers=args.workers, cache=_resolve_cache(args))
    runs, report = run_sweeps(per_sweep, runner=runner)
    stats = report.stats()
    for name, run in runs.items():
        spec = get_sweep(name)
        line = (
            f"{name}: {len(run.report)} cells, "
            f"{run.report.cache_hits} cached / {run.report.cache_misses} computed"
        )
        if args.out:
            path = write_artifact(
                spec.artifact_name(**per_sweep[name]),
                run.payload,
                run.report.wall_seconds,
                directory=args.out,
                extra={"host": host_metadata(workers=args.workers)},
            )
            line += f" -> {path}"
        print(line)
        if args.json:
            target = Path(args.json)
            if len(args.sweep) > 1:
                target = target.with_name(f"{target.stem}_{name}{target.suffix}")
            target.write_text(
                json.dumps(to_jsonable(run.payload), indent=2, sort_keys=True) + "\n"
            )
    print(
        f"total: {stats['cells']} cells in {stats['wall_seconds']:.2f}s wall "
        f"({stats['compute_seconds']:.2f}s live compute, "
        f"{stats['replayed_seconds']:.2f}s replayed from cache) on "
        f"{stats['workers']} worker(s), "
        f"{stats['chunks']} chunk(s), cache {stats['cache_hits']} hit / "
        f"{stats['cache_misses']} miss"
    )
    if args.trace:
        path = obs.write_trace(args.trace)
        print(f"trace: {path} (inspect with: python -m repro.obs.report {path})")
    if args.require_warm and stats["cache_misses"] > 0:
        print(
            f"error: --require-warm but {stats['cache_misses']} cell(s) "
            "were computed instead of served from cache",
            file=sys.stderr,
        )
        return 3
    return 0


# ---------------------------------------------------------------------- diff
def _walk_diff(
    fresh: Any, stored: Any, *, rtol: float, atol: float, path: str = "$"
) -> List[Tuple[str, Any, Any]]:
    diffs: List[Tuple[str, Any, Any]] = []
    number = (int, float)
    if isinstance(fresh, number) and isinstance(stored, number) and not (
        isinstance(fresh, bool) or isinstance(stored, bool)
    ):
        a, b = float(fresh), float(stored)
        if math.isnan(a) and math.isnan(b):
            return diffs
        if abs(a - b) > atol + rtol * max(abs(a), abs(b)):
            diffs.append((path, fresh, stored))
        return diffs
    if isinstance(fresh, dict) and isinstance(stored, dict):
        for key in sorted(set(fresh) | set(stored)):
            if key not in fresh or key not in stored:
                diffs.append((f"{path}.{key}", fresh.get(key), stored.get(key)))
            else:
                diffs.extend(
                    _walk_diff(fresh[key], stored[key], rtol=rtol, atol=atol, path=f"{path}.{key}")
                )
        return diffs
    if isinstance(fresh, list) and isinstance(stored, list):
        if len(fresh) != len(stored):
            diffs.append((f"{path}.length", len(fresh), len(stored)))
            return diffs
        for i, (a, b) in enumerate(zip(fresh, stored)):
            diffs.extend(_walk_diff(a, b, rtol=rtol, atol=atol, path=f"{path}[{i}]"))
        return diffs
    if fresh != stored:
        diffs.append((path, fresh, stored))
    return diffs


def _cmd_diff(args: argparse.Namespace) -> int:
    spec = get_sweep(args.sweep)
    params = _params_for([args.sweep], _parse_set(args.set or []))[args.sweep]
    against = (
        args.against
        or f"benchmarks/artifacts/BENCH_{spec.artifact_name(**params)}.json"
    )
    artifact = read_artifact(against)
    runner = Runner(workers=args.workers, cache=_resolve_cache(args))
    runs, _ = run_sweeps({args.sweep: params}, runner=runner)
    compaction = artifact.get("compaction", {})
    fresh = compact(
        to_jsonable(runs[args.sweep].payload),
        float_digits=int(compaction.get("float_digits", 6)),
        max_series=int(compaction.get("max_series", 256)),
    )
    diffs = _walk_diff(fresh, artifact["result"], rtol=args.rtol, atol=args.atol)
    if not diffs:
        print(f"{args.sweep}: fresh run matches {against} (rtol={args.rtol:g})")
        return 0
    print(f"{args.sweep}: {len(diffs)} difference(s) vs {against}")

    def _short(value: Any) -> str:
        text = repr(value)
        return text if len(text) <= 120 else text[:117] + "..."

    for path, a, b in diffs[: args.limit]:
        print(f"  {path}: fresh={_short(a)} stored={_short(b)}")
    if len(diffs) > args.limit:
        print(f"  ... {len(diffs) - args.limit} more")
    return 1


# --------------------------------------------------------------------- parser
def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None, help="worker processes (default: REPRO_EXP_WORKERS or 1)")
    parser.add_argument("--cache", metavar="DIR", default=None, help="result-cache directory (default: REPRO_EXP_CACHE or ~/.cache/repro-exp)")
    parser.add_argument("--no-cache", action="store_true", help="disable the result cache")
    parser.add_argument("--refresh", action="store_true", help="recompute every cell but refresh the cache")
    parser.add_argument("--set", action="append", metavar="KEY=VALUE", help="override a sweep parameter (python literal)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp",
        description="Run the reproduction's figure sweeps through the experiment engine.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered sweeps").set_defaults(fn=_cmd_list)

    run = sub.add_parser("run", help="run one or more sweeps by name")
    run.add_argument("sweep", nargs="+", help="sweep name(s), see 'list'")
    _add_run_flags(run)
    run.add_argument("--out", metavar="DIR", default=None, help="write BENCH_<artifact>.json artifacts to DIR")
    run.add_argument("--json", metavar="FILE", default=None, help="write the raw payload as JSON")
    run.add_argument("--trace", metavar="FILE", default=None, help="enable repro.obs and write the metrics/span trace as JSON")
    run.add_argument("--require-warm", action="store_true", help="fail unless every cell was served from cache")
    run.set_defaults(fn=_cmd_run)

    diff = sub.add_parser("diff", help="compare a fresh run against a stored artifact")
    diff.add_argument("sweep", help="sweep name")
    _add_run_flags(diff)
    diff.add_argument("--against", metavar="PATH", default=None, help="artifact to compare against (default: benchmarks/artifacts/BENCH_<artifact>.json)")
    diff.add_argument("--rtol", type=float, default=1e-5)
    diff.add_argument("--atol", type=float, default=1e-9)
    diff.add_argument("--limit", type=int, default=20, help="max differences to print")
    diff.set_defaults(fn=_cmd_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
