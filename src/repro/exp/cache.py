"""Content-addressed on-disk result cache for experiment cells.

Layout: ``<root>/<hh>/<hash>.json`` where ``hash`` is the scenario's
content hash (see :meth:`repro.exp.scenario.Scenario.content_hash`) and
``hh`` its first two hex digits.  Each entry stores the scenario
description next to the result, so entries are self-describing and can be
audited or garbage-collected by hand.

The cache root resolves, in order: an explicit constructor argument, the
``REPRO_EXP_CACHE`` environment variable, ``~/.cache/repro-exp``.  Writes
are atomic (temp file + rename), so concurrent runs sharing a cache are
safe: the worst case is both computing the same cell and one rename
winning.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from .. import obs
from .scenario import Scenario, jsonify

__all__ = ["ResultCache", "CacheStats", "MISS", "resolve_cache"]

_CACHE_CORRUPT = obs.counter("exp.cache_corrupt")

#: sentinel distinguishing "not cached" from a cached ``None`` result
MISS = object()

_DEFAULT_ROOT = Path.home() / ".cache" / "repro-exp"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }


class ResultCache:
    """On-disk JSON store keyed by scenario content hash."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            env = os.environ.get("REPRO_EXP_CACHE")
            root = Path(env).expanduser() if env else _DEFAULT_ROOT
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, content_hash: str) -> Path:
        return self.root / content_hash[:2] / f"{content_hash}.json"

    # ------------------------------------------------------------------- get
    def get(self, content_hash: str) -> Any:
        """The cached ``(result, elapsed_seconds)`` or :data:`MISS`.

        A corrupted entry — truncated write, bad JSON, or a payload
        missing the ``result`` key — is a **miss**, not an error: the
        file is quarantined aside (``.corrupt`` suffix) with a warning so
        the cell recomputes and the next write replaces the entry.
        """
        path = self.path_for(content_hash)
        try:
            text = path.read_text()
        except (FileNotFoundError, OSError):
            self.stats.misses += 1
            return MISS
        try:
            payload = json.loads(text)
            result = payload["result"]
            elapsed = float(payload.get("elapsed_s", 0.0))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            self._quarantine(path)
            self.stats.misses += 1
            return MISS
        self.stats.hits += 1
        return result, elapsed

    def _quarantine(self, path: Path) -> None:
        """Move a corrupted entry aside so it cannot shadow the rewrite."""
        self.stats.corrupt += 1
        _CACHE_CORRUPT.inc()
        target = path.with_suffix(path.suffix + ".corrupt")
        try:
            os.replace(path, target)
            where = f"quarantined to {target}"
        except OSError:
            where = "and could not be quarantined"
        warnings.warn(
            f"corrupted result-cache entry {path} ({where}); treating as a miss",
            RuntimeWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------- put
    def put(
        self, content_hash: str, scenario: Scenario, result: Any, elapsed_s: float
    ) -> Path:
        """Atomically persist one cell result; returns the entry path."""
        path = self.path_for(content_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "hash": content_hash,
            "scenario": scenario.describe(),
            "elapsed_s": elapsed_s,
            "result": jsonify(result),
        }
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path


def resolve_cache(cache: Any = "auto") -> Optional[ResultCache]:
    """Resolve the Runner's ``cache`` argument.

    * ``"auto"`` (default): a :class:`ResultCache` if ``REPRO_EXP_CACHE``
      names a directory, otherwise no cache -- library calls stay hermetic
      unless the user opts in via the environment.
    * ``True``: the default cache root (``REPRO_EXP_CACHE`` or
      ``~/.cache/repro-exp``).
    * ``False``/``None``: caching off.
    * a path or :class:`ResultCache`: that cache.
    """
    if cache == "auto":
        env = os.environ.get("REPRO_EXP_CACHE")
        return ResultCache(Path(env).expanduser()) if env else None
    if cache is True:
        return ResultCache()
    if cache is False or cache is None:
        return None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(Path(cache))
