"""Declarative experiment engine: parallel, cached scenario sweeps.

Every evaluation figure and benchmark of the reproduction runs through
this package.  The vocabulary:

* :class:`Scenario` -- one experiment cell: a kernel import path plus pure
  JSON parameters, content-hashable for caching.
* :class:`Grid` -- cartesian/zipped sweep combinator producing scenarios.
* :class:`Runner` -- executes scenario sets serially or on a process pool,
  chunking cells by topology so per-process route-table memoization stays
  hot, and serving warm cells from the on-disk :class:`ResultCache`.
* named sweeps -- :func:`run_sweep`/:func:`run_sweeps` run registered
  figure sweeps by name (also exposed via ``python -m repro.exp``).

Environment knobs: ``REPRO_EXP_WORKERS`` (default worker count),
``REPRO_EXP_CACHE`` (cache directory; enables caching for library calls).
"""

from .cache import CacheStats, ResultCache, resolve_cache
from .grid import Grid, scenarios_of
from .registry import (
    SweepRun,
    SweepSpec,
    get_sweep,
    list_sweeps,
    register_sweep,
    run_sweep,
    run_sweeps,
)
from .runner import CellResult, RunReport, Runner, default_workers, run_grid
from .scenario import Scenario, canonical_json, cell, jsonify, kernel_ref, resolve_kernel
from .seeding import as_generator, cell_seed

__all__ = [
    "Scenario",
    "Grid",
    "Runner",
    "RunReport",
    "CellResult",
    "ResultCache",
    "CacheStats",
    "SweepSpec",
    "SweepRun",
    "cell",
    "cell_seed",
    "as_generator",
    "canonical_json",
    "jsonify",
    "kernel_ref",
    "resolve_kernel",
    "resolve_cache",
    "scenarios_of",
    "default_workers",
    "run_grid",
    "run_sweep",
    "run_sweeps",
    "register_sweep",
    "get_sweep",
    "list_sweeps",
]
