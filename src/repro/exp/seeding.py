"""Deterministic seeding helpers for experiment cells.

Every sweep cell receives an explicit integer seed derived from *content*
(the base seed plus the cell's identifying coordinates), never from
execution order.  That is what makes parallel and serial runs of the same
grid bit-identical: a cell's randomness depends only on what the cell *is*,
not on which worker ran it or when.
"""

from __future__ import annotations

import hashlib
from typing import Any, Union

import numpy as np

from .scenario import canonical_json

__all__ = ["cell_seed", "as_generator", "SeedLike"]

SeedLike = Union[int, np.random.Generator, None]


def cell_seed(*parts: Any) -> int:
    """A stable 63-bit seed mixed from arbitrary JSON-serialisable parts.

    Uses SHA-256 over the canonical JSON of ``parts``, so the result is
    independent of process, platform, and ``PYTHONHASHSEED`` -- unlike
    ``hash()`` -- and avalanche-mixed, so neighbouring cells (``seed``,
    ``seed + 1``) get uncorrelated streams.
    """
    blob = canonical_json(list(parts))
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") >> 1


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce an int seed (or pass through a Generator) to a Generator.

    Lets traffic/workload helpers accept either an explicit integer seed
    (the engine's convention -- serialisable, order-independent) or a
    caller-managed ``numpy.random.Generator`` stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
