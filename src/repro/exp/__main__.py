"""Entry point for ``python -m repro.exp``."""

import sys

from .cli import main

sys.exit(main())
