"""Declarative description of one experiment cell.

A :class:`Scenario` names a *cell kernel* -- a module-level function
addressed as ``"package.module:function"`` -- together with the keyword
parameters it will be called with.  Scenarios are pure data: every
parameter must be canonically JSON-serialisable, which is what makes them

* **executable anywhere** -- a worker process resolves the kernel by import
  path and calls it, so sweeps parallelise over processes without pickling
  closures;
* **content-addressable** -- the cache key is a SHA-256 over the kernel
  path, the kernel's declared code version, and the canonical JSON of the
  parameters, so a warm re-run of an unchanged cell never recomputes.

The optional ``chunk`` key groups cells that should execute in the same
worker process (e.g. all cells touching one topology, so the memoized
:class:`~repro.sim.routing.RouteTable` stays hot), and ``tags`` carries
free-form labels the post-processing step uses to reassemble figure
structures; neither participates in the content hash.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, Mapping

__all__ = [
    "Scenario",
    "cell",
    "canonical_json",
    "jsonify",
    "kernel_ref",
    "resolve_kernel",
]


def cell(
    version: int = 1, *, cacheable: bool = True, batch: Any = None
) -> Callable:
    """Mark a function as an experiment cell kernel.

    ``version`` participates in the content hash: bump it whenever the
    kernel's *output* changes for identical parameters, so stale cache
    entries are invalidated.  ``cacheable=False`` exempts the kernel from
    the result cache entirely (timing probes, benchmarks-of-the-engine).

    ``batch`` declares a **batch companion kernel** — a module-level
    function (or its ``"module:function"`` reference) that takes a *list*
    of this kernel's parameter dicts and returns the matching list of
    results.  When a chunk contains consecutive cells of a batchable
    kernel, the runner hands the whole run to the companion in one call
    (e.g. :meth:`~repro.sim.flowsim.FlowSimulator.maxmin_rates_batch`
    solving a chunk's scenarios together).  The companion must return
    results identical to per-cell calls — cached and batched runs of the
    same cell must agree — and it does not participate in the content
    hash, so declaring one never invalidates cached results.
    """

    def decorate(fn: Callable) -> Callable:
        fn.exp_version = version
        fn.exp_cacheable = cacheable
        if batch is not None:
            fn.exp_batch = kernel_ref(batch)
        return fn

    return decorate


def jsonify(value: Any) -> Any:
    """Convert a parameter/result structure to plain JSON types.

    Tuples become lists, numpy scalars/arrays become Python numbers/lists;
    anything else non-JSON raises ``TypeError`` (scenario parameters must be
    pure data -- pass names or specs instead of live objects).
    """
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise TypeError(f"scenario mapping keys must be strings, got {k!r}")
            out[k] = jsonify(v)
        return out
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays
        return jsonify(value.tolist())
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()  # numpy scalars
    raise TypeError(
        f"value of type {type(value).__name__} is not scenario-serialisable: {value!r}"
    )


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(jsonify(value), sort_keys=True, separators=(",", ":"))


def kernel_ref(fn: Callable) -> str:
    """The ``"module:qualname"`` import path of a module-level kernel."""
    if isinstance(fn, str):
        return fn
    ref = f"{fn.__module__}:{fn.__qualname__}"
    if "<locals>" in ref:
        raise ValueError(
            f"cell kernels must be module-level functions, got {ref} "
            "(closures cannot be resolved in worker processes)"
        )
    return ref


@lru_cache(maxsize=None)
def resolve_kernel(ref: str) -> Callable:
    """Import the kernel function behind a ``"module:qualname"`` reference."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"kernel reference must look like 'module:function', got {ref!r}")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"kernel reference {ref!r} does not resolve to a callable")
    return obj


@dataclass(frozen=True)
class Scenario:
    """One cell of a sweep: a kernel reference plus pure-data parameters."""

    kernel: str
    params: Mapping[str, Any]
    #: cells sharing a chunk key run sequentially in one worker process
    chunk: str = ""
    #: labels for post-processing (not hashed, not passed to the kernel)
    tags: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "tags", dict(self.tags))

    # ------------------------------------------------------------------ hash
    def content_hash(self) -> str:
        """SHA-256 over (kernel path, kernel version, canonical params)."""
        fn = resolve_kernel(self.kernel)
        blob = canonical_json(
            {
                "kernel": self.kernel,
                "version": getattr(fn, "exp_version", 0),
                "params": self.params,
            }
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @property
    def cacheable(self) -> bool:
        return bool(getattr(resolve_kernel(self.kernel), "exp_cacheable", True))

    def describe(self) -> Dict[str, Any]:
        """JSON-ready description (used by cache payloads and the CLI)."""
        return {
            "kernel": self.kernel,
            "params": jsonify(self.params),
            "chunk": self.chunk,
            "tags": jsonify(self.tags),
        }
