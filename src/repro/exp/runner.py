"""Execution engine: serial or process-parallel runs of scenario sets.

The runner takes any mix of grids/scenarios and

1. resolves each cell against the on-disk result cache (content hash);
2. groups the remaining cells by ``chunk`` key -- cells of one chunk run
   sequentially inside one worker task, so per-process memoization (the
   shared :class:`~repro.sim.routing.RouteTable` above all) stays hot for
   repeated measurements on the same topology;
3. executes chunks inline (serial fallback) or on a
   :class:`~concurrent.futures.ProcessPoolExecutor`;
4. canonicalises every result through a JSON round-trip and reassembles
   them in scenario order.

Step 4 is what makes the three execution paths -- serial, parallel, and
warm-from-cache -- **bit-identical**: every result the caller sees has
passed through the same canonical encoding, whether it came from this
process, a worker, or a cache file.
"""

from __future__ import annotations

import json
import os
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import obs
from .cache import MISS, ResultCache, resolve_cache
from .grid import scenarios_of
from .recording import MemoryProbe
from .scenario import Scenario, canonical_json, resolve_kernel

__all__ = ["CellResult", "RunReport", "Runner", "run_grid", "default_workers"]

_CELLS_LIVE = obs.counter("exp.cells_live")
_CELLS_CACHED = obs.counter("exp.cells_cached")
_CELLS_BATCHED = obs.counter("exp.cells_batched")
_WORKER_RETRIES = obs.counter("exp.worker_retries")
_CELLS_QUARANTINED = obs.counter("exp.cells_quarantined")
_CELL_TIMEOUTS = obs.counter("exp.cell_timeouts")
_WORKERS_SEEDED = obs.counter("exp.workers_seeded")


def default_workers() -> int:
    """Worker count when none is given: ``REPRO_EXP_WORKERS`` or 1 (serial)."""
    env = os.environ.get("REPRO_EXP_WORKERS", "").strip()
    if env:
        return max(1, int(env))
    return 1


def _normalize(result: Any) -> Any:
    """Canonical JSON round-trip: the one representation of a cell result."""
    return json.loads(canonical_json(result))


def _seed_worker(handles: Sequence[Any]) -> None:
    """Pool initializer: install the parent's shared route tables.

    Workers never rebuild a table the parent already built — any
    ``route_table_for`` matching a handle attaches the parent's
    shared-memory segment (zero-copy, read-only) instead.  Module-level so
    it pickles under every start method.
    """
    if handles:
        from ..sim.routing import seed_shared_route_tables

        seed_shared_route_tables(handles)


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """Finalizer: tear down a Runner's persistent pool when it is GC'd."""
    pool.shutdown(wait=False, cancel_futures=True)


def _route_table_bytes() -> Optional[int]:
    """This process' private route-table bytes (None if unavailable).

    Attached shared tables count only their above-baseline growth, so a
    seeded worker reports ~0 here while a rebuilding worker reports the
    table footprint — the per-worker memory axis of the scale-out bench.
    """
    try:
        from ..sim.routing import private_route_table_bytes

        return int(private_route_table_bytes())
    except Exception:  # pragma: no cover - diagnostics must never fail a cell
        return None


def _run_cells(cells: Sequence[Tuple[int, str, Dict[str, Any]]], collect_obs: bool = False):
    """Worker entry point: run one chunk of cells sequentially.

    Module-level so it pickles under every start method; returns
    ``((index, normalized result, elapsed seconds, memory) tuples, obs
    payload)``.  Each cell carries a :class:`~repro.exp.recording.MemoryProbe`
    snapshot (peak RSS always; tracemalloc peak when
    ``REPRO_EXP_TRACE_MEMORY`` is set or tracing is already on).

    **Batching**: consecutive cells of a kernel that declares a batch
    companion (``@cell(batch=...)``) are handed to the companion in one
    call — one ``params`` list in, one result list out — so a chunk of
    same-topology cells can share vectorized work (e.g. the batched
    max-min solver).  The companion's results are bit-identical to per-cell
    calls by contract, so cached, serial, parallel, and batched runs of a
    cell all agree; the measured batch time is attributed evenly across the
    cells it covered.

    ``collect_obs`` implements the worker side of the observability merge
    protocol: the worker enables collection locally (a spawned process does
    not inherit the parent's programmatic ``obs.enable()``), marks the
    registry before the chunk, and ships back only the delta — so it also
    behaves correctly under ``fork``, where the worker *does* inherit the
    parent's accumulated state.  The parent folds the payload back with
    :func:`repro.obs.merge_state`.  When the chunk runs inline (serial
    path), spans and counters land in the parent's registry directly and no
    payload is produced.
    """
    marker = None
    if collect_obs:
        obs.enable()
        marker = obs.capture()
    out = []
    worker = os.getpid()
    trace_memory = os.environ.get("REPRO_EXP_TRACE_MEMORY", "") not in ("", "0")
    n = len(cells)
    pos = 0
    while pos < n:
        index, kernel, params = cells[pos]
        fn = resolve_kernel(kernel)
        batch_ref = getattr(fn, "exp_batch", None)
        end = pos + 1
        if batch_ref is not None:
            while end < n and cells[end][1] == kernel:
                end += 1
        if end - pos > 1:
            group = cells[pos:end]
            batch_fn = resolve_kernel(batch_ref)
            with obs.span(
                "exp.cell_batch", kernel=kernel, size=len(group), worker=worker
            ):
                with MemoryProbe(trace=trace_memory) as probe:
                    start = time.perf_counter()
                    raws = batch_fn([dict(p) for _, _, p in group])
                    elapsed = time.perf_counter() - start
            if len(raws) != len(group):  # pragma: no cover - contract guard
                raise RuntimeError(
                    f"batch kernel {batch_ref} returned {len(raws)} results "
                    f"for {len(group)} cells"
                )
            share = elapsed / len(group)
            memory = probe.as_dict()
            memory["route_table_bytes"] = _route_table_bytes()
            _CELLS_BATCHED.inc(len(group))
            for (cell_index, _, _), raw in zip(group, raws):
                _CELLS_LIVE.inc()
                out.append((cell_index, _normalize(raw), share, memory))
        else:
            with obs.span(
                "exp.cell", kernel=kernel, index=index, cached=False, worker=worker
            ):
                with MemoryProbe(trace=trace_memory) as probe:
                    start = time.perf_counter()
                    raw = fn(**params)
                    elapsed = time.perf_counter() - start
            _CELLS_LIVE.inc()
            memory = probe.as_dict()
            memory["route_table_bytes"] = _route_table_bytes()
            out.append((index, _normalize(raw), elapsed, memory))
        pos = end
    payload = obs.export_delta(marker) if marker is not None else None
    return out, payload


@dataclass(frozen=True)
class CellResult:
    """One executed (or cache-served) cell.

    ``seconds`` is the cell's **compute attribution**: the kernel's measured
    run time, replayed from the cache entry for a warm cell.  ``wall_seconds``
    is what *this* run actually spent on the cell: the same measurement for a
    live cell, but only the cache-lookup time for a warm one.  The two were
    historically conflated, which made warm runs look as expensive as cold
    ones.
    """

    scenario: Scenario
    value: Any
    seconds: float
    cached: bool
    wall_seconds: float = 0.0
    #: memory probe snapshot for a live cell (peak RSS, RSS growth,
    #: tracemalloc peak when traced); ``None`` for cache-served cells
    memory: Optional[Dict[str, Any]] = None
    #: why the cell was quarantined instead of executed ("timeout" or the
    #: exception summary from the serial fallback); ``None`` for healthy
    #: cells.  Quarantined cells carry ``value=None`` and are never cached.
    error: Optional[str] = None


class RunReport:
    """Ordered cell results plus execution statistics."""

    def __init__(
        self,
        cells: List[CellResult],
        *,
        wall_seconds: float,
        workers: int,
        chunks: int,
        cache_hits: int,
        cache_misses: int,
    ) -> None:
        self.cells = cells
        self.wall_seconds = wall_seconds
        self.workers = workers
        self.chunks = chunks
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def values(self) -> List[Any]:
        return [c.value for c in self.cells]

    def slice(self, start: int, stop: int) -> "RunReport":
        """A view over a contiguous cell range (multi-sweep runs).

        A slice's ``wall_seconds`` is the summed per-cell **spent** time of
        the slice (live compute plus cache lookups) -- the whole run's wall
        clock is shared across sweeps and would misattribute time to each of
        them, and a warm cell's replayed compute time was not spent here.
        """
        part = self.cells[start:stop]
        return RunReport(
            part,
            wall_seconds=sum(c.wall_seconds for c in part),
            workers=self.workers,
            chunks=self.chunks,
            cache_hits=sum(c.cached for c in part),
            cache_misses=sum(not c.cached for c in part),
        )

    def stats(self) -> Dict[str, Any]:
        """Execution statistics.

        ``compute_seconds`` is time spent computing live cells in this run;
        ``replayed_seconds`` is the compute time warm cells originally cost
        (replayed from their cache entries, not spent now).
        """
        peaks = [
            c.memory["peak_rss_bytes"]
            for c in self.cells
            if c.memory and c.memory.get("peak_rss_bytes")
        ]
        return {
            "cells": len(self.cells),
            "wall_seconds": self.wall_seconds,
            "workers": self.workers,
            "chunks": self.chunks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "compute_seconds": sum(c.seconds for c in self.cells if not c.cached),
            "replayed_seconds": sum(c.seconds for c in self.cells if c.cached),
            "quarantined": sum(1 for c in self.cells if c.error is not None),
            # Highest per-cell worker peak RSS seen this run (live cells
            # only; None on a fully warm run).
            "peak_rss_bytes": max(peaks) if peaks else None,
        }


class Runner:
    """Executes scenario sets with caching, chunking, and worker processes.

    ``workers=None`` reads ``REPRO_EXP_WORKERS`` (default 1: serial in
    process); ``workers=0`` means one per CPU.  See
    :func:`repro.exp.cache.resolve_cache` for the ``cache`` argument.

    The parallel path runs on a **persistent warm pool**: one
    :class:`ProcessPoolExecutor` lives across :meth:`run` calls, and its
    initializer seeds every worker with shared-memory handles for each
    route table already built in the parent
    (:meth:`repro.sim.routing.RouteTable.share`).  Workers attach those
    segments zero-copy instead of rebuilding tables, so per-worker memory
    stays ~flat in the number of workers.  Call :meth:`close` (or use the
    runner as a context manager) to tear the pool down; an unclosed
    runner's pool is shut down when the runner is garbage collected.

    The parallel path is hardened against misbehaving cells:

    * ``cell_timeout`` (or ``REPRO_EXP_CELL_TIMEOUT`` seconds) bounds each
      cell's run; a chunk exceeding ``timeout * len(chunk)`` has its cells
      quarantined, the stuck worker pool is killed, and the remaining
      chunks continue on a fresh pool.
    * A crashed worker (:class:`BrokenProcessPool` — segfault, OOM kill,
      ``os._exit``) retries the unfinished chunks on a fresh pool with
      exponential backoff, up to ``max_retries`` times; after that the
      survivors run serially, one cell at a time, and a cell that still
      raises is quarantined instead of sinking the run.

    Quarantined cells surface as :class:`CellResult`\\ s with
    ``error`` set and ``value=None``; they are never written to the
    cache.  A run with no timeouts or crashes is bit-identical to the
    unhardened path.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        cache: Any = "auto",
        cell_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
    ) -> None:
        if workers is None:
            workers = default_workers()
        elif workers == 0:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        self.cache: Optional[ResultCache] = resolve_cache(cache)
        if cell_timeout is None:
            env = os.environ.get("REPRO_EXP_CELL_TIMEOUT", "").strip()
            cell_timeout = float(env) if env else None
        self.cell_timeout = cell_timeout
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff = max(0.0, float(retry_backoff))
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_finalizer: Optional[weakref.finalize] = None
        self._seeded_bytes = 0

    # ------------------------------------------------------ persistent pool
    def _share_handles(self) -> List[Any]:
        """Export every built route table as a picklable shared handle.

        ``share()`` is idempotent and memoizes the handle on the table, so
        repeated pool (re)creation re-uses the same segments — replacing a
        crashed pool re-seeds workers without copying any table bytes.
        """
        from ..sim.routing import live_route_tables

        handles: List[Any] = []
        for table in live_route_tables():
            try:
                if table.num_pairs_routed > 0:
                    handles.append(table.share())
            except Exception:
                continue  # unshareable table: workers rebuild it as before
        self._seeded_bytes = sum(h.nbytes for h in handles)
        return handles

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Return the persistent worker pool, creating and seeding it lazily.

        The pool survives across :meth:`run` calls (warm workers keep their
        attached route tables and imported modules).  It is replaced only
        when a worker crashes or times out, and torn down by
        :meth:`close` / garbage collection.
        """
        if self._pool is None:
            handles = self._share_handles()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_seed_worker,
                initargs=(handles,),
            )
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
            if handles:
                # Parent-side accounting: worker initializers run outside
                # the per-chunk obs delta window, so their increments would
                # otherwise be lost.
                _WORKERS_SEEDED.inc(self.workers)
        return self._pool

    def _discard_pool(self, *, wait: bool = False, kill: bool = False) -> None:
        """Drop the persistent pool (crashed, hung, or being closed)."""
        pool, self._pool = self._pool, None
        finalizer, self._pool_finalizer = self._pool_finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if pool is None:
            return
        if kill:
            self._kill_pool(pool)
        else:
            pool.shutdown(wait=wait, cancel_futures=True)

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        self._discard_pool(wait=True)

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------- run
    def run(self, spec: Any) -> RunReport:
        scenarios = scenarios_of(spec)
        t_start = time.perf_counter()
        hashes = [s.content_hash() for s in scenarios]
        done: Dict[int, CellResult] = {}
        pending: List[Tuple[int, Scenario]] = []

        for index, (scenario, content_hash) in enumerate(zip(scenarios, hashes)):
            hit = MISS
            t_lookup = time.perf_counter()
            if self.cache is not None and scenario.cacheable:
                hit = self.cache.get(content_hash)
            if hit is MISS:
                pending.append((index, scenario))
            else:
                value, elapsed = hit
                lookup_end = time.perf_counter()
                done[index] = CellResult(
                    scenario, value, elapsed, cached=True,
                    wall_seconds=lookup_end - t_lookup,
                )
                _CELLS_CACHED.inc()
                obs.add_span(
                    "exp.cell", t_lookup, lookup_end, clock="wall",
                    kernel=scenario.kernel, index=index, cached=True,
                    worker=os.getpid(),
                )

        chunks = self._chunk(pending)
        if self.workers <= 1 or len(chunks) <= 1:
            for chunk in chunks:
                triples, _ = _run_cells(chunk)
                self._absorb(done, scenarios, triples)
        else:
            self._execute_parallel(chunks, done, scenarios, obs.is_enabled())

        cells = [done[i] for i in range(len(scenarios))]
        if self.cache is not None:
            for content_hash, cell_result in zip(hashes, cells):
                if (
                    not cell_result.cached
                    and cell_result.scenario.cacheable
                    and cell_result.error is None
                ):
                    self.cache.put(
                        content_hash,
                        cell_result.scenario,
                        cell_result.value,
                        cell_result.seconds,
                    )
        return RunReport(
            cells,
            wall_seconds=time.perf_counter() - t_start,
            workers=self.workers,
            chunks=len(chunks),
            cache_hits=sum(c.cached for c in cells),
            cache_misses=sum(not c.cached for c in cells),
        )

    # ------------------------------------------------- hardened parallel path
    def _execute_parallel(
        self,
        chunks: List[List[Tuple[int, str, Dict[str, Any]]]],
        done: Dict[int, "CellResult"],
        scenarios: Sequence[Scenario],
        collect_obs: bool,
    ) -> None:
        """Drive chunks through worker pools until every cell is accounted for.

        Each pass runs the remaining chunks on one pool.  A pass ends
        clean (nothing left), after quarantining timed-out chunks (the
        rest continue on a fresh pool, no retry consumed), or on a pool
        crash — which consumes a retry with exponential backoff and, once
        ``max_retries`` is exhausted, drops to the one-cell-at-a-time
        serial fallback.
        """
        pending = list(chunks)
        attempt = 0
        while pending:
            pending, crashed = self._pool_pass(pending, done, scenarios, collect_obs)
            if not pending:
                return
            if crashed:
                attempt += 1
                _WORKER_RETRIES.inc()
                if attempt > self.max_retries:
                    self._serial_fallback(pending, done, scenarios)
                    return
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))

    def _pool_pass(
        self,
        chunks: List[List[Tuple[int, str, Dict[str, Any]]]],
        done: Dict[int, "CellResult"],
        scenarios: Sequence[Scenario],
        collect_obs: bool,
    ) -> Tuple[List[List[Tuple[int, str, Dict[str, Any]]]], bool]:
        """One pool's worth of work; returns ``(unfinished chunks, crashed)``.

        Uses the persistent warm pool: a clean pass leaves it running for
        the next pass (or the next :meth:`run`), while a crash or timeout
        discards it so the caller resubmits on a freshly seeded one.
        """
        timeout = self.cell_timeout
        pool = self._ensure_pool()
        futures: Dict[Any, int] = {
            pool.submit(_run_cells, chunk, collect_obs): ci
            for ci, chunk in enumerate(chunks)
        }
        deadline = {
            f: (time.monotonic() + timeout * max(1, len(chunks[ci])))
            for f, ci in futures.items()
        } if timeout else {}
        while futures:
            wait_for = None
            if timeout:
                wait_for = max(
                    0.0, min(deadline[f] for f in futures) - time.monotonic()
                )
            finished, _ = wait(
                list(futures), return_when=FIRST_COMPLETED, timeout=wait_for
            )
            for future in finished:
                ci = futures.pop(future)
                try:
                    triples, payload = future.result()
                except BrokenProcessPool:
                    remaining = [chunks[ci]]
                    remaining += [chunks[i] for i in sorted(futures.values())]
                    self._discard_pool()
                    return remaining, True
                except Exception:
                    # The kernel raised (the pool itself is healthy):
                    # isolate the chunk inline so its healthy cells
                    # still complete and only the poison cell is
                    # quarantined, then keep draining the pool.
                    self._serial_fallback([chunks[ci]], done, scenarios)
                    continue
                obs.merge_state(payload)
                self._absorb(done, scenarios, triples)
            if timeout and not finished:
                now = time.monotonic()
                expired = [f for f in list(futures) if deadline[f] <= now]
                if expired:
                    for future in expired:
                        ci = futures.pop(future)
                        self._quarantine_chunk(
                            chunks[ci], done, scenarios, reason="timeout"
                        )
                        _CELL_TIMEOUTS.inc(len(chunks[ci]))
                    # The stuck worker keeps grinding regardless of the
                    # cancelled future; kill the pool and let the caller
                    # resubmit the survivors on a fresh one.
                    remaining = [chunks[i] for i in sorted(futures.values())]
                    self._discard_pool(kill=True)
                    return remaining, False
        return [], False

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear down a pool that may have a hung worker (no graceful join)."""
        procs = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - best-effort teardown
                pass

    def _serial_fallback(
        self,
        chunks: Sequence[Sequence[Tuple[int, str, Dict[str, Any]]]],
        done: Dict[int, "CellResult"],
        scenarios: Sequence[Scenario],
    ) -> None:
        """Last resort after retries: isolate cells inline, quarantine raisers.

        Running one cell at a time pinpoints the poison cell — everything
        healthy in a chunk that shared a pool with a crasher still
        completes, and only the cell that raises is quarantined.
        """
        for chunk in chunks:
            for cell in chunk:
                index = cell[0]
                try:
                    triples, _ = _run_cells([cell])
                except Exception as exc:
                    self._quarantine_cell(
                        index, done, scenarios,
                        reason=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    self._absorb(done, scenarios, triples)

    def _quarantine_chunk(
        self,
        chunk: Sequence[Tuple[int, str, Dict[str, Any]]],
        done: Dict[int, "CellResult"],
        scenarios: Sequence[Scenario],
        *,
        reason: str,
    ) -> None:
        for index, _kernel, _params in chunk:
            self._quarantine_cell(index, done, scenarios, reason=reason)

    @staticmethod
    def _quarantine_cell(
        index: int,
        done: Dict[int, "CellResult"],
        scenarios: Sequence[Scenario],
        *,
        reason: str,
    ) -> None:
        done[index] = CellResult(
            scenarios[index], None, 0.0, cached=False, wall_seconds=0.0,
            error=reason,
        )
        _CELLS_QUARANTINED.inc()

    # ------------------------------------------------------------- internals
    def _chunk(
        self,
        pending: Sequence[Tuple[int, Scenario]],
    ) -> List[List[Tuple[int, str, Dict[str, Any]]]]:
        """Group pending cells by chunk key (unchunked cells stay singleton).

        Chunk order follows first appearance and cells keep scenario order
        within a chunk, so the serial fallback executes in declaration
        order.  Oversized chunks are then split so a single-topology grid
        still fans out across all workers — with shared route tables,
        chunks no longer need to be topology-homogeneous to be cheap.
        """
        groups: Dict[str, List[Tuple[int, str, Dict[str, Any]]]] = {}
        order: List[str] = []
        for index, scenario in pending:
            key = scenario.chunk if scenario.chunk else f"cell-{index}"
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((index, scenario.kernel, dict(scenario.params)))
        return self._split_chunks([groups[key] for key in order])

    def _split_chunks(
        self,
        chunks: List[List[Tuple[int, str, Dict[str, Any]]]],
    ) -> List[List[Tuple[int, str, Dict[str, Any]]]]:
        """Split chunks larger than an even per-worker share into slices.

        Contiguous slicing preserves within-chunk cell order, so the
        serial fallback and cache writes stay declaration-ordered; batch
        kernels regroup per slice, which is bit-identical because the
        batched solver is pinned to match per-cell solves.
        """
        if self.workers <= 1:
            return chunks
        total = sum(len(chunk) for chunk in chunks)
        if total == 0:
            return chunks
        target = max(1, -(-total // self.workers))
        out: List[List[Tuple[int, str, Dict[str, Any]]]] = []
        for chunk in chunks:
            if len(chunk) <= target:
                out.append(chunk)
            else:
                for lo in range(0, len(chunk), target):
                    out.append(chunk[lo:lo + target])
        return out

    @staticmethod
    def _absorb(
        done: Dict[int, CellResult],
        scenarios: Sequence[Scenario],
        rows: Sequence[Tuple[int, Any, float, Optional[Dict[str, Any]]]],
    ) -> None:
        for index, value, elapsed, memory in rows:
            done[index] = CellResult(
                scenarios[index], value, elapsed, cached=False,
                wall_seconds=elapsed, memory=memory,
            )


def run_grid(
    spec: Any,
    *,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
    cache: Any = "auto",
) -> RunReport:
    """Run a grid/scenario set with an existing or ad-hoc runner."""
    if runner is None:
        runner = Runner(workers=workers, cache=cache)
    return runner.run(spec)
