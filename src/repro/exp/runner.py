"""Execution engine: serial or process-parallel runs of scenario sets.

The runner takes any mix of grids/scenarios and

1. resolves each cell against the on-disk result cache (content hash);
2. groups the remaining cells by ``chunk`` key -- cells of one chunk run
   sequentially inside one worker task, so per-process memoization (the
   shared :class:`~repro.sim.routing.RouteTable` above all) stays hot for
   repeated measurements on the same topology;
3. executes chunks inline (serial fallback) or on a
   :class:`~concurrent.futures.ProcessPoolExecutor`;
4. canonicalises every result through a JSON round-trip and reassembles
   them in scenario order.

Step 4 is what makes the three execution paths -- serial, parallel, and
warm-from-cache -- **bit-identical**: every result the caller sees has
passed through the same canonical encoding, whether it came from this
process, a worker, or a cache file.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import obs
from .cache import MISS, ResultCache, resolve_cache
from .grid import scenarios_of
from .recording import MemoryProbe
from .scenario import Scenario, canonical_json, resolve_kernel

__all__ = ["CellResult", "RunReport", "Runner", "run_grid", "default_workers"]

_CELLS_LIVE = obs.counter("exp.cells_live")
_CELLS_CACHED = obs.counter("exp.cells_cached")
_CELLS_BATCHED = obs.counter("exp.cells_batched")


def default_workers() -> int:
    """Worker count when none is given: ``REPRO_EXP_WORKERS`` or 1 (serial)."""
    env = os.environ.get("REPRO_EXP_WORKERS", "").strip()
    if env:
        return max(1, int(env))
    return 1


def _normalize(result: Any) -> Any:
    """Canonical JSON round-trip: the one representation of a cell result."""
    return json.loads(canonical_json(result))


def _run_cells(cells: Sequence[Tuple[int, str, Dict[str, Any]]], collect_obs: bool = False):
    """Worker entry point: run one chunk of cells sequentially.

    Module-level so it pickles under every start method; returns
    ``((index, normalized result, elapsed seconds, memory) tuples, obs
    payload)``.  Each cell carries a :class:`~repro.exp.recording.MemoryProbe`
    snapshot (peak RSS always; tracemalloc peak when
    ``REPRO_EXP_TRACE_MEMORY`` is set or tracing is already on).

    **Batching**: consecutive cells of a kernel that declares a batch
    companion (``@cell(batch=...)``) are handed to the companion in one
    call — one ``params`` list in, one result list out — so a chunk of
    same-topology cells can share vectorized work (e.g. the batched
    max-min solver).  The companion's results are bit-identical to per-cell
    calls by contract, so cached, serial, parallel, and batched runs of a
    cell all agree; the measured batch time is attributed evenly across the
    cells it covered.

    ``collect_obs`` implements the worker side of the observability merge
    protocol: the worker enables collection locally (a spawned process does
    not inherit the parent's programmatic ``obs.enable()``), marks the
    registry before the chunk, and ships back only the delta — so it also
    behaves correctly under ``fork``, where the worker *does* inherit the
    parent's accumulated state.  The parent folds the payload back with
    :func:`repro.obs.merge_state`.  When the chunk runs inline (serial
    path), spans and counters land in the parent's registry directly and no
    payload is produced.
    """
    marker = None
    if collect_obs:
        obs.enable()
        marker = obs.capture()
    out = []
    worker = os.getpid()
    trace_memory = os.environ.get("REPRO_EXP_TRACE_MEMORY", "") not in ("", "0")
    n = len(cells)
    pos = 0
    while pos < n:
        index, kernel, params = cells[pos]
        fn = resolve_kernel(kernel)
        batch_ref = getattr(fn, "exp_batch", None)
        end = pos + 1
        if batch_ref is not None:
            while end < n and cells[end][1] == kernel:
                end += 1
        if end - pos > 1:
            group = cells[pos:end]
            batch_fn = resolve_kernel(batch_ref)
            with obs.span(
                "exp.cell_batch", kernel=kernel, size=len(group), worker=worker
            ):
                with MemoryProbe(trace=trace_memory) as probe:
                    start = time.perf_counter()
                    raws = batch_fn([dict(p) for _, _, p in group])
                    elapsed = time.perf_counter() - start
            if len(raws) != len(group):  # pragma: no cover - contract guard
                raise RuntimeError(
                    f"batch kernel {batch_ref} returned {len(raws)} results "
                    f"for {len(group)} cells"
                )
            share = elapsed / len(group)
            memory = probe.as_dict()
            _CELLS_BATCHED.inc(len(group))
            for (cell_index, _, _), raw in zip(group, raws):
                _CELLS_LIVE.inc()
                out.append((cell_index, _normalize(raw), share, memory))
        else:
            with obs.span(
                "exp.cell", kernel=kernel, index=index, cached=False, worker=worker
            ):
                with MemoryProbe(trace=trace_memory) as probe:
                    start = time.perf_counter()
                    raw = fn(**params)
                    elapsed = time.perf_counter() - start
            _CELLS_LIVE.inc()
            out.append((index, _normalize(raw), elapsed, probe.as_dict()))
        pos = end
    payload = obs.export_delta(marker) if marker is not None else None
    return out, payload


@dataclass(frozen=True)
class CellResult:
    """One executed (or cache-served) cell.

    ``seconds`` is the cell's **compute attribution**: the kernel's measured
    run time, replayed from the cache entry for a warm cell.  ``wall_seconds``
    is what *this* run actually spent on the cell: the same measurement for a
    live cell, but only the cache-lookup time for a warm one.  The two were
    historically conflated, which made warm runs look as expensive as cold
    ones.
    """

    scenario: Scenario
    value: Any
    seconds: float
    cached: bool
    wall_seconds: float = 0.0
    #: memory probe snapshot for a live cell (peak RSS, RSS growth,
    #: tracemalloc peak when traced); ``None`` for cache-served cells
    memory: Optional[Dict[str, Any]] = None


class RunReport:
    """Ordered cell results plus execution statistics."""

    def __init__(
        self,
        cells: List[CellResult],
        *,
        wall_seconds: float,
        workers: int,
        chunks: int,
        cache_hits: int,
        cache_misses: int,
    ) -> None:
        self.cells = cells
        self.wall_seconds = wall_seconds
        self.workers = workers
        self.chunks = chunks
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def values(self) -> List[Any]:
        return [c.value for c in self.cells]

    def slice(self, start: int, stop: int) -> "RunReport":
        """A view over a contiguous cell range (multi-sweep runs).

        A slice's ``wall_seconds`` is the summed per-cell **spent** time of
        the slice (live compute plus cache lookups) -- the whole run's wall
        clock is shared across sweeps and would misattribute time to each of
        them, and a warm cell's replayed compute time was not spent here.
        """
        part = self.cells[start:stop]
        return RunReport(
            part,
            wall_seconds=sum(c.wall_seconds for c in part),
            workers=self.workers,
            chunks=self.chunks,
            cache_hits=sum(c.cached for c in part),
            cache_misses=sum(not c.cached for c in part),
        )

    def stats(self) -> Dict[str, Any]:
        """Execution statistics.

        ``compute_seconds`` is time spent computing live cells in this run;
        ``replayed_seconds`` is the compute time warm cells originally cost
        (replayed from their cache entries, not spent now).
        """
        peaks = [
            c.memory["peak_rss_bytes"]
            for c in self.cells
            if c.memory and c.memory.get("peak_rss_bytes")
        ]
        return {
            "cells": len(self.cells),
            "wall_seconds": self.wall_seconds,
            "workers": self.workers,
            "chunks": self.chunks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "compute_seconds": sum(c.seconds for c in self.cells if not c.cached),
            "replayed_seconds": sum(c.seconds for c in self.cells if c.cached),
            # Highest per-cell worker peak RSS seen this run (live cells
            # only; None on a fully warm run).
            "peak_rss_bytes": max(peaks) if peaks else None,
        }


class Runner:
    """Executes scenario sets with caching, chunking, and worker processes.

    ``workers=None`` reads ``REPRO_EXP_WORKERS`` (default 1: serial in
    process); ``workers=0`` means one per CPU.  See
    :func:`repro.exp.cache.resolve_cache` for the ``cache`` argument.
    """

    def __init__(self, *, workers: Optional[int] = None, cache: Any = "auto") -> None:
        if workers is None:
            workers = default_workers()
        elif workers == 0:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        self.cache: Optional[ResultCache] = resolve_cache(cache)

    # ------------------------------------------------------------------- run
    def run(self, spec: Any) -> RunReport:
        scenarios = scenarios_of(spec)
        t_start = time.perf_counter()
        hashes = [s.content_hash() for s in scenarios]
        done: Dict[int, CellResult] = {}
        pending: List[Tuple[int, Scenario]] = []

        for index, (scenario, content_hash) in enumerate(zip(scenarios, hashes)):
            hit = MISS
            t_lookup = time.perf_counter()
            if self.cache is not None and scenario.cacheable:
                hit = self.cache.get(content_hash)
            if hit is MISS:
                pending.append((index, scenario))
            else:
                value, elapsed = hit
                lookup_end = time.perf_counter()
                done[index] = CellResult(
                    scenario, value, elapsed, cached=True,
                    wall_seconds=lookup_end - t_lookup,
                )
                _CELLS_CACHED.inc()
                obs.add_span(
                    "exp.cell", t_lookup, lookup_end, clock="wall",
                    kernel=scenario.kernel, index=index, cached=True,
                    worker=os.getpid(),
                )

        chunks = self._chunk(pending)
        if self.workers <= 1 or len(chunks) <= 1:
            for chunk in chunks:
                triples, _ = _run_cells(chunk)
                self._absorb(done, scenarios, triples)
        else:
            collect_obs = obs.is_enabled()
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = {pool.submit(_run_cells, chunk, collect_obs) for chunk in chunks}
                while futures:
                    finished, futures = wait(futures, return_when=FIRST_COMPLETED)
                    for future in finished:
                        triples, payload = future.result()
                        obs.merge_state(payload)
                        self._absorb(done, scenarios, triples)

        cells = [done[i] for i in range(len(scenarios))]
        if self.cache is not None:
            for content_hash, cell_result in zip(hashes, cells):
                if not cell_result.cached and cell_result.scenario.cacheable:
                    self.cache.put(
                        content_hash,
                        cell_result.scenario,
                        cell_result.value,
                        cell_result.seconds,
                    )
        return RunReport(
            cells,
            wall_seconds=time.perf_counter() - t_start,
            workers=self.workers,
            chunks=len(chunks),
            cache_hits=sum(c.cached for c in cells),
            cache_misses=sum(not c.cached for c in cells),
        )

    # ------------------------------------------------------------- internals
    @staticmethod
    def _chunk(
        pending: Sequence[Tuple[int, Scenario]]
    ) -> List[List[Tuple[int, str, Dict[str, Any]]]]:
        """Group pending cells by chunk key (unchunked cells stay singleton).

        Chunk order follows first appearance and cells keep scenario order
        within a chunk, so the serial fallback executes in declaration
        order.
        """
        groups: Dict[str, List[Tuple[int, str, Dict[str, Any]]]] = {}
        order: List[str] = []
        for index, scenario in pending:
            key = scenario.chunk if scenario.chunk else f"cell-{index}"
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((index, scenario.kernel, dict(scenario.params)))
        return [groups[key] for key in order]

    @staticmethod
    def _absorb(
        done: Dict[int, CellResult],
        scenarios: Sequence[Scenario],
        rows: Sequence[Tuple[int, Any, float, Optional[Dict[str, Any]]]],
    ) -> None:
        for index, value, elapsed, memory in rows:
            done[index] = CellResult(
                scenarios[index], value, elapsed, cached=False,
                wall_seconds=elapsed, memory=memory,
            )


def run_grid(
    spec: Any,
    *,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
    cache: Any = "auto",
) -> RunReport:
    """Run a grid/scenario set with an existing or ad-hoc runner."""
    if runner is None:
        runner = Runner(workers=workers, cache=cache)
    return runner.run(spec)
