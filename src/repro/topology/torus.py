"""2D torus baseline topology (board-granular, switchless).

The paper's torus comparison point (Table II) is a 2D torus built from 2x2
PCB boards: on-board links are free PCB traces, the wrap-around links between
neighbouring boards are DAC cables.  Every accelerator has four directional
ports per plane; the simulation collapses to a single plane with unit link
capacity per port (total injection 4.0 units = 1.6 Tb/s), matching the
normalisation used for all topologies (see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import CableClass, Topology, TopologyError, register_topology
from .board import add_board

__all__ = ["build_torus2d"]


@register_topology("torus2d")
def build_torus2d(
    board_cols: int,
    board_rows: int,
    *,
    board_a: int = 2,
    board_b: int = 2,
    link_capacity: float = 1.0,
    plane_count: int = 4,
) -> Topology:
    """Build a 2D torus of ``board_cols`` x ``board_rows`` boards.

    The resulting accelerator grid has ``board_rows * board_b`` rows and
    ``board_cols * board_a`` columns with full wrap-around connectivity in
    both dimensions.  ``meta`` records coordinate lookups and the per-link
    direction table used by the torus path provider.
    """
    if board_cols < 1 or board_rows < 1:
        raise TopologyError("torus needs at least one board in each dimension")
    rows = board_rows * board_b
    cols = board_cols * board_a
    if rows < 3 or cols < 3:
        raise TopologyError(
            "torus accelerator grid must be at least 3x3 (smaller rings would "
            "need parallel wrap links, which this builder does not model)"
        )

    topo = Topology(f"torus2d-{cols}x{rows}")
    grid: List[List[int]] = [[-1] * cols for _ in range(rows)]
    boards = {}
    for gr in range(board_rows):
        for gc in range(board_cols):
            handle = add_board(topo, (gr, gc), board_a, board_b, capacity=link_capacity)
            boards[(gr, gc)] = handle
            for br in range(board_b):
                for bc in range(board_a):
                    grid[gr * board_b + br][gc * board_a + bc] = handle.node_at(br, bc)

    # Directed link lookup: (row, col, direction) -> link index.  Directions:
    # "E" = +col, "W" = -col, "S" = +row, "N" = -row (all modulo grid size).
    dir_links: Dict[Tuple[int, int, str], int] = {}

    def record(u_rc, v_rc, fwd_tag, link_uv, link_vu):
        dir_links[(u_rc[0], u_rc[1], fwd_tag)] = link_uv
        back = {"E": "W", "W": "E", "S": "N", "N": "S"}[fwd_tag]
        dir_links[(v_rc[0], v_rc[1], back)] = link_vu

    # Horizontal links (East direction = increasing column, wrapping).
    for r in range(rows):
        for c in range(cols):
            nc = (c + 1) % cols
            u, v = grid[r][c], grid[r][nc]
            existing = topo.find_links(u, v)
            if existing:
                uv = existing[0]
                vu = topo.find_links(v, u)[0]
            else:
                # inter-board or wrap-around cable
                uv, vu = topo.add_link(
                    u, v, capacity=link_capacity, cable=CableClass.DAC, tag="torus-EW"
                )
            record((r, c), (r, nc), "E", uv, vu)
    # Vertical links (South direction = increasing row, wrapping).
    for c in range(cols):
        for r in range(rows):
            nr = (r + 1) % rows
            u, v = grid[r][c], grid[nr][c]
            existing = topo.find_links(u, v)
            if existing:
                uv = existing[0]
                vu = topo.find_links(v, u)[0]
            else:
                uv, vu = topo.add_link(
                    u, v, capacity=link_capacity, cable=CableClass.DAC, tag="torus-NS"
                )
            record((r, c), (nr, c), "S", uv, vu)

    coord_of: Dict[int, Tuple[int, int]] = {}
    for r in range(rows):
        for c in range(cols):
            coord_of[grid[r][c]] = (r, c)

    topo.meta.update(
        family="torus",
        rows=rows,
        cols=cols,
        board_a=board_a,
        board_b=board_b,
        board_cols=board_cols,
        board_rows=board_rows,
        grid=grid,
        coord_of=coord_of,
        dir_links=dir_links,
        boards=boards,
        plane_count=plane_count,
        injection_capacity=4.0 * link_capacity,
    )
    topo.validate()
    return topo
