"""Core topology graph model shared by every network in the reproduction.

A :class:`Topology` is a directed multigraph of *accelerators* (compute
endpoints) and *switches* connected by *links*.  Links carry a capacity in
normalised bandwidth units (1.0 == one 400 Gb/s port), a cable class used by
the cost model (PCB trace, DAC copper, AoC optical), and an optional plane
index.  All concrete topologies (fat tree, Dragonfly, torus, HyperX,
HammingMesh) are built on top of this model so that the property analysis,
the cost model, and both simulators can treat them uniformly.

The module intentionally avoids heavyweight per-node Python objects in hot
paths: node attributes live in plain dictionaries and link endpoints are
stored in parallel integer lists so that they can be converted to NumPy
arrays cheaply by the flow-level simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "NodeKind",
    "CableClass",
    "Link",
    "Topology",
    "TopologyError",
    "register_topology",
    "build_topology",
    "available_topologies",
]


class TopologyError(ValueError):
    """Raised for malformed topology constructions or invalid queries."""


class NodeKind(enum.Enum):
    """Role of a node inside a :class:`Topology`."""

    ACCELERATOR = "accelerator"
    SWITCH = "switch"


class CableClass(enum.Enum):
    """Physical cable technology, used by the capital-cost model.

    ``PCB`` traces are on-board and free (included in packaging cost),
    ``DAC`` are short passive copper cables, ``AOC`` are long active optical
    cables.  These mirror the three technology tiers in Section III-C of the
    paper.
    """

    PCB = "pcb"
    DAC = "dac"
    AOC = "aoc"


@dataclass(frozen=True)
class Link:
    """A directed link between two nodes.

    Attributes
    ----------
    src, dst:
        Node indices of the link endpoints.
    capacity:
        Bandwidth in normalised units (1.0 == one 400 Gb/s port).
    cable:
        Cable technology class (PCB / DAC / AOC).
    plane:
        Network plane the link belongs to (0-based).  HammingMesh simulates a
        single plane with four ports; other topologies collapse their four
        identical planes into one plane with 4x capacity (see DESIGN.md).
    tag:
        Free-form label used by routing engines (e.g. ``"board-E"``,
        ``"tree-up"``).
    """

    src: int
    dst: int
    capacity: float = 1.0
    cable: CableClass = CableClass.DAC
    plane: int = 0
    tag: str = ""


class Topology:
    """A directed multigraph of accelerators and switches.

    Nodes are integers assigned on creation.  Every physical cable is added
    as a *bidirectional* connection, i.e. two directed links, via
    :meth:`add_link`.  Directed links can be added explicitly with
    :meth:`add_directed_link` (used for asymmetric constructions in tests).
    """

    def __init__(self, name: str):
        self.name = name
        self._kinds: List[NodeKind] = []
        self._labels: List[str] = []
        self._attrs: List[Dict[str, Any]] = []
        self._links: List[Link] = []
        # adjacency: node -> list of link indices leaving that node
        self._out: List[List[int]] = []
        self._in: List[List[int]] = []
        self._accelerators: List[int] = []
        self._switches: List[int] = []
        # number of physical (bidirectional) cables per cable class,
        # maintained incrementally by add_link for the cost model.
        self._cable_counts: Dict[CableClass, int] = {c: 0 for c in CableClass}
        self.meta: Dict[str, Any] = {}

    # ------------------------------------------------------------------ nodes
    def _add_node(self, kind: NodeKind, label: str, **attrs: Any) -> int:
        node = len(self._kinds)
        self._kinds.append(kind)
        self._labels.append(label)
        self._attrs.append(dict(attrs))
        self._out.append([])
        self._in.append([])
        if kind is NodeKind.ACCELERATOR:
            self._accelerators.append(node)
        else:
            self._switches.append(node)
        return node

    def add_accelerator(self, label: str = "", **attrs: Any) -> int:
        """Add an accelerator endpoint and return its node id."""
        return self._add_node(NodeKind.ACCELERATOR, label, **attrs)

    def add_switch(self, label: str = "", **attrs: Any) -> int:
        """Add a packet switch and return its node id."""
        return self._add_node(NodeKind.SWITCH, label, **attrs)

    # ------------------------------------------------------------------ links
    def add_directed_link(
        self,
        src: int,
        dst: int,
        *,
        capacity: float = 1.0,
        cable: CableClass = CableClass.DAC,
        plane: int = 0,
        tag: str = "",
    ) -> int:
        """Add a single directed link and return its link index."""
        if not (0 <= src < len(self._kinds)) or not (0 <= dst < len(self._kinds)):
            raise TopologyError(f"link endpoints out of range: {src}->{dst}")
        if src == dst:
            raise TopologyError("self links are not allowed")
        if capacity <= 0:
            raise TopologyError("link capacity must be positive")
        idx = len(self._links)
        self._links.append(Link(src, dst, capacity, cable, plane, tag))
        self._out[src].append(idx)
        self._in[dst].append(idx)
        return idx

    def add_link(
        self,
        a: int,
        b: int,
        *,
        capacity: float = 1.0,
        cable: CableClass = CableClass.DAC,
        plane: int = 0,
        tag: str = "",
        count_cable: bool = True,
    ) -> Tuple[int, int]:
        """Add a bidirectional connection (two directed links).

        ``count_cable`` controls whether the connection is counted as a
        physical cable for the cost model; set to ``False`` for logical
        shortcut links that do not correspond to purchasable cables.
        """
        i = self.add_directed_link(a, b, capacity=capacity, cable=cable, plane=plane, tag=tag)
        j = self.add_directed_link(b, a, capacity=capacity, cable=cable, plane=plane, tag=tag)
        if count_cable:
            self._cable_counts[cable] += 1
        return i, j

    # ---------------------------------------------------------------- queries
    @property
    def num_nodes(self) -> int:
        return len(self._kinds)

    @property
    def num_links(self) -> int:
        return len(self._links)

    @property
    def accelerators(self) -> Sequence[int]:
        return tuple(self._accelerators)

    @property
    def switches(self) -> Sequence[int]:
        return tuple(self._switches)

    @property
    def num_accelerators(self) -> int:
        return len(self._accelerators)

    @property
    def num_switches(self) -> int:
        return len(self._switches)

    @property
    def links(self) -> Sequence[Link]:
        return tuple(self._links)

    def link(self, index: int) -> Link:
        return self._links[index]

    def kind(self, node: int) -> NodeKind:
        return self._kinds[node]

    def is_accelerator(self, node: int) -> bool:
        return self._kinds[node] is NodeKind.ACCELERATOR

    def is_switch(self, node: int) -> bool:
        return self._kinds[node] is NodeKind.SWITCH

    def label(self, node: int) -> str:
        return self._labels[node]

    def attrs(self, node: int) -> Dict[str, Any]:
        return self._attrs[node]

    def out_links(self, node: int) -> Sequence[int]:
        """Indices of directed links leaving ``node``."""
        return tuple(self._out[node])

    def in_links(self, node: int) -> Sequence[int]:
        """Indices of directed links entering ``node``."""
        return tuple(self._in[node])

    def neighbors(self, node: int) -> List[int]:
        """Unique successor nodes of ``node``."""
        seen: Dict[int, None] = {}
        for li in self._out[node]:
            seen.setdefault(self._links[li].dst, None)
        return list(seen)

    def degree(self, node: int) -> int:
        """Number of outgoing directed links (port count on that plane)."""
        return len(self._out[node])

    def cable_count(self, cable: CableClass) -> int:
        """Number of physical bidirectional cables of the given class."""
        return self._cable_counts[cable]

    def find_links(self, src: int, dst: int) -> List[int]:
        """All directed link indices from ``src`` to ``dst``."""
        return [li for li in self._out[src] if self._links[li].dst == dst]

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Check structural invariants; raise :class:`TopologyError` on error.

        Invariants: every accelerator has at least one outgoing and one
        incoming link, link endpoint indices are in range, and capacities are
        positive (the latter two are enforced at construction already).
        """
        for node in self._accelerators:
            if not self._out[node] or not self._in[node]:
                raise TopologyError(
                    f"accelerator {node} ({self._labels[node]!r}) is disconnected"
                )

    def is_connected(self) -> bool:
        """True if the underlying undirected graph is connected."""
        if self.num_nodes == 0:
            return True
        seen = [False] * self.num_nodes
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for li in self._out[u]:
                v = self._links[li].dst
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
            for li in self._in[u]:
                v = self._links[li].src
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self.num_nodes

    # ------------------------------------------------------------ conversions
    def to_networkx(self):
        """Export as a :class:`networkx.MultiDiGraph` (for analysis/tests)."""
        import networkx as nx

        g = nx.MultiDiGraph(name=self.name)
        for node in range(self.num_nodes):
            g.add_node(node, kind=self._kinds[node].value, label=self._labels[node], **self._attrs[node])
        for idx, link in enumerate(self._links):
            g.add_edge(link.src, link.dst, key=idx, capacity=link.capacity,
                       cable=link.cable.value, plane=link.plane, tag=link.tag)
        return g

    def link_capacity_array(self):
        """Per-directed-link capacity as a NumPy array (flow simulator input)."""
        import numpy as np

        return np.array([l.capacity for l in self._links], dtype=np.float64)

    def accelerator_index(self) -> Dict[int, int]:
        """Map node id -> dense accelerator rank (0..P-1)."""
        return {node: rank for rank, node in enumerate(self._accelerators)}

    # ----------------------------------------------------------------- dunder
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Topology {self.name!r}: {self.num_accelerators} accelerators, "
            f"{self.num_switches} switches, {self.num_links} directed links>"
        )


# --------------------------------------------------------------------- registry
_REGISTRY: Dict[str, Callable[..., Topology]] = {}


def register_topology(name: str) -> Callable[[Callable[..., Topology]], Callable[..., Topology]]:
    """Decorator registering a topology builder under ``name``.

    Builders registered here can be constructed generically with
    :func:`build_topology`, which the benchmark harness uses to sweep over
    topology families.
    """

    def decorator(fn: Callable[..., Topology]) -> Callable[..., Topology]:
        if name in _REGISTRY:
            raise TopologyError(f"topology {name!r} registered twice")
        _REGISTRY[name] = fn
        return fn

    return decorator


def build_topology(name: str, /, **kwargs: Any) -> Topology:
    """Build a registered topology by name."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise TopologyError(
            f"unknown topology {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return builder(**kwargs)


def available_topologies() -> List[str]:
    """Names of all registered topology builders."""
    return sorted(_REGISTRY)
