"""Canonical Dragonfly baseline topology (Kim et al. 2008).

The paper compares HammingMesh against full-bandwidth Dragonfly networks
built from 64-port switches with the canonical balance ``a = 2p = 2h``
(Section III-D / Appendix C): ``a`` routers per group, ``p`` endpoints per
router, ``h`` global links per router, all-to-all local links inside a group
and (close to) uniformly distributed global links between groups.

As for the other baselines, the four identical network planes are collapsed
into a single simulated plane whose links carry 4x capacity, so every
accelerator has a total injection bandwidth of 4.0 units (1.6 Tb/s).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import CableClass, Topology, TopologyError, register_topology

__all__ = ["build_dragonfly", "dragonfly_small", "dragonfly_large"]


@register_topology("dragonfly")
def build_dragonfly(
    num_groups: int,
    *,
    routers_per_group: int = 16,
    endpoints_per_router: int = 8,
    global_links_per_router: int = 8,
    link_capacity: float = 4.0,
    plane_count: int = 4,
) -> Topology:
    """Build a Dragonfly with ``num_groups`` groups.

    ``meta`` records the router/group structure and the global-link table
    used by the Dragonfly path provider (minimal local-global-local routing
    with multipath over parallel group-to-group channels).
    """
    a = routers_per_group
    p = endpoints_per_router
    h = global_links_per_router
    g = num_groups
    if g < 2:
        raise TopologyError("a Dragonfly needs at least two groups")
    if a < 2:
        raise TopologyError("a Dragonfly group needs at least two routers")

    topo = Topology(f"dragonfly-g{g}-a{a}-p{p}-h{h}")

    routers: List[List[int]] = []
    acc_router: Dict[int, int] = {}
    router_group: Dict[int, int] = {}
    for gi in range(g):
        group_routers: List[int] = []
        for ri in range(a):
            sw = topo.add_switch(f"df-g{gi}-r{ri}", group=gi, router=ri)
            group_routers.append(sw)
            router_group[sw] = gi
            for ei in range(p):
                acc = topo.add_accelerator(
                    f"acc-g{gi}-r{ri}-e{ei}", group=gi, router=ri, endpoint=ei
                )
                topo.add_link(
                    acc, sw, capacity=link_capacity, cable=CableClass.DAC, tag="df-access"
                )
                acc_router[acc] = sw
        routers.append(group_routers)

    # Local links: all-to-all within each group (DAC inside the group).
    local_links: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for gi in range(g):
        grp = routers[gi]
        for i in range(a):
            for j in range(i + 1, a):
                up, down = topo.add_link(
                    grp[i], grp[j], capacity=link_capacity, cable=CableClass.DAC,
                    tag="df-local",
                )
                local_links[(grp[i], grp[j])] = (up, down)
                local_links[(grp[j], grp[i])] = (down, up)

    # Global links: each group owns a*h global channels distributed as evenly
    # as possible over the other g-1 groups; channel endpoints are assigned to
    # routers round-robin.  ``group_links[(g1, g2)]`` lists the physical
    # router-to-router channels between the two groups (both orders stored).
    group_links: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
    total_channels = a * h
    # Desired number of channels between every unordered pair of groups.
    pair_count: Dict[Tuple[int, int], int] = {}
    for gi in range(g):
        others = [x for x in range(g) if x != gi]
        for q in range(total_channels):
            peer = others[q % len(others)]
            key = (min(gi, peer), max(gi, peer))
            pair_count[key] = pair_count.get(key, 0) + 1
    # Every channel was counted from both sides; two ports make one cable.
    next_port = [0] * g  # round-robin router assignment per group
    for (g1, g2), cnt in sorted(pair_count.items()):
        cables = max(1, cnt // 2)
        for _ in range(cables):
            r1 = routers[g1][next_port[g1] % a]
            r2 = routers[g2][next_port[g2] % a]
            next_port[g1] += 1
            next_port[g2] += 1
            up, down = topo.add_link(
                r1, r2, capacity=link_capacity, cable=CableClass.AOC, tag="df-global"
            )
            group_links.setdefault((g1, g2), []).append((r1, r2, up))
            group_links.setdefault((g2, g1), []).append((r2, r1, down))

    access_links: Dict[int, Tuple[int, int]] = {}
    for acc in topo.accelerators:
        sw = acc_router[acc]
        up = topo.find_links(acc, sw)[0]
        down = topo.find_links(sw, acc)[0]
        access_links[acc] = (up, down)

    topo.meta.update(
        family="dragonfly",
        num_groups=g,
        routers_per_group=a,
        endpoints_per_router=p,
        global_links_per_router=h,
        routers=routers,
        acc_router=acc_router,
        router_group=router_group,
        local_links=local_links,
        group_links=group_links,
        access_links=access_links,
        plane_count=plane_count,
        injection_capacity=link_capacity,
    )
    topo.validate()
    return topo


def dragonfly_small(**kwargs) -> Topology:
    """The paper's ~1k-accelerator Dragonfly: a=16, p=8, h=8, 8 groups."""
    return build_dragonfly(
        8, routers_per_group=16, endpoints_per_router=8, global_links_per_router=8,
        **kwargs,
    )


def dragonfly_large(**kwargs) -> Topology:
    """The paper's ~16k-accelerator Dragonfly: a=32, p=17, h=16, 30 groups."""
    return build_dragonfly(
        30, routers_per_group=32, endpoints_per_router=17, global_links_per_router=16,
        **kwargs,
    )
