"""2D HyperX baseline topology.

The paper's "2D HyperX" comparison point is structurally an Hx1Mesh
(footnote 2), and its *cost* is accounted that way (Appendix C).  Its
*bandwidth*, however, is simulated with SST's switch-based HyperX model in
which dimension-wise fully-connected switches forward traffic directly,
without consuming accelerator ports for transit.  We therefore provide two
constructions:

* :func:`build_hyperx2d` -- a switch-based 2D HyperX (switch grid with
  direct row/column links and ``terminals`` accelerators per switch), used
  by the bandwidth simulations; and
* :func:`build_hx1mesh` -- the Hx1Mesh realisation (row/column switch
  networks, accelerator forwarding), used by the cost model and available
  for experiments on endpoint-forwarding effects.

EXPERIMENTS.md discusses the discrepancy between the two views.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import CableClass, Topology, TopologyError, register_topology

__all__ = ["build_hyperx2d", "build_hx1mesh"]


@register_topology("hyperx2d")
def build_hyperx2d(
    x: int,
    y: int,
    *,
    terminals: int = 1,
    access_capacity: float = 4.0,
    link_capacity: float = 1.0,
    plane_count: int = 4,
) -> Topology:
    """Build a switch-based ``x`` x ``y`` 2D HyperX.

    Switches form an ``x`` x ``y`` grid; every switch is directly connected
    to all other switches of its row and of its column, and hosts
    ``terminals`` accelerators.  ``meta`` carries the grid lookups used by
    the HyperX path provider (dimension-ordered minimal routing through at
    most one intermediate switch).
    """
    if x < 2 or y < 2:
        raise TopologyError("a 2D HyperX needs at least 2 switches per dimension")
    if terminals < 1:
        raise TopologyError("terminals per switch must be >= 1")
    topo = Topology(f"hyperx2d-{x}x{y}t{terminals}")

    switch_grid: List[List[int]] = []
    acc_switch: Dict[int, int] = {}
    switch_coord: Dict[int, Tuple[int, int]] = {}
    for r in range(y):
        row: List[int] = []
        for c in range(x):
            sw = topo.add_switch(f"hx-sw[{r},{c}]", coord=(r, c))
            row.append(sw)
            switch_coord[sw] = (r, c)
            for t in range(terminals):
                acc = topo.add_accelerator(f"acc[{r},{c},{t}]", coord=(r, c), terminal=t)
                topo.add_link(
                    acc, sw, capacity=access_capacity, cable=CableClass.DAC, tag="hx-access"
                )
                acc_switch[acc] = sw
        switch_grid.append(row)

    # (switch_a, switch_b) -> directed link a->b
    switch_links: Dict[Tuple[int, int], int] = {}
    # Row links (DAC within a row per the Hx1Mesh cost convention).
    for r in range(y):
        for c1 in range(x):
            for c2 in range(c1 + 1, x):
                a, b = switch_grid[r][c1], switch_grid[r][c2]
                ab, ba = topo.add_link(
                    a, b, capacity=link_capacity, cable=CableClass.DAC, tag="hx-row"
                )
                switch_links[(a, b)] = ab
                switch_links[(b, a)] = ba
    # Column links (AoC, longer runs).
    for c in range(x):
        for r1 in range(y):
            for r2 in range(r1 + 1, y):
                a, b = switch_grid[r1][c], switch_grid[r2][c]
                ab, ba = topo.add_link(
                    a, b, capacity=link_capacity, cable=CableClass.AOC, tag="hx-col"
                )
                switch_links[(a, b)] = ab
                switch_links[(b, a)] = ba

    access_links: Dict[int, Tuple[int, int]] = {}
    for acc in topo.accelerators:
        sw = acc_switch[acc]
        access_links[acc] = (topo.find_links(acc, sw)[0], topo.find_links(sw, acc)[0])

    topo.meta.update(
        family="hyperx",
        x=x,
        y=y,
        terminals=terminals,
        switch_grid=switch_grid,
        switch_coord=switch_coord,
        acc_switch=acc_switch,
        switch_links=switch_links,
        access_links=access_links,
        plane_count=plane_count,
        injection_capacity=access_capacity,
    )
    topo.validate()
    return topo


def build_hx1mesh(
    x: int,
    y: int,
    *,
    radix: int = 64,
    global_taper: float = 1.0,
    planes: int = 4,
    link_capacity: float = 1.0,
) -> Topology:
    """Build the Hx1Mesh realisation of a 2D HyperX (1x1 boards).

    Every accelerator's East/West ports attach to its row network and its
    North/South ports to its column network; traffic between different rows
    and columns transits through an intermediate accelerator's forwarding
    ports, exactly like on larger HxMeshes.
    """
    # Imported lazily to avoid a package import cycle (core depends on the
    # topology.base/board/fattree siblings of this module).
    from ..core.hammingmesh import build_hammingmesh

    topo = build_hammingmesh(
        1, 1, x, y,
        radix=radix, global_taper=global_taper, planes=planes,
        link_capacity=link_capacity,
    )
    topo.name = f"hx1mesh-{x}x{y}"
    topo.meta["is_hyperx"] = True
    return topo
