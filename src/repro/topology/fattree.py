"""Fat-tree construction: standalone fat-tree clusters and reusable
"global networks" used to connect the rows and columns of a HammingMesh.

Two things live here:

* :class:`GlobalNetwork` -- a switched, logically fully-connected network
  built *inside* an existing :class:`~repro.topology.base.Topology` over an
  arbitrary list of port nodes.  Depending on the port count it is realised
  as a single switch, a two-level folded Clos (fat tree), or a three-level
  fat tree.  HammingMesh uses one of these per global row and per global
  column (Section III of the paper); the standalone fat-tree cluster uses a
  single one spanning all accelerators.

* :func:`build_fat_tree` -- the standalone fat-tree baseline topology
  (nonblocking or tapered) used in Table II and Section V.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .._hash import mix64
from .base import CableClass, Topology, TopologyError, register_topology

__all__ = ["GlobalNetwork", "build_fat_tree", "fat_tree_levels_for"]


def fat_tree_levels_for(num_ports: int, radix: int = 64) -> int:
    """Number of switch levels a fat tree needs for ``num_ports`` endpoints.

    A single switch covers up to ``radix`` ports, a two-level folded Clos up
    to ``radix^2 / 2`` ports, and a three-level tree up to ``radix^3 / 4``.
    """
    if num_ports <= 0:
        raise TopologyError("num_ports must be positive")
    if num_ports <= radix:
        return 1
    if num_ports <= (radix // 2) * radix:
        return 2
    if num_ports <= (radix // 2) ** 2 * radix:
        return 3
    raise TopologyError(
        f"{num_ports} ports exceed the capacity of a 3-level radix-{radix} fat tree"
    )


@dataclass
class _Attachment:
    """One port attachment of a node to the network edge."""

    node: int
    leaf: int
    up_link: int     # node -> leaf
    down_link: int   # leaf -> node


class GlobalNetwork:
    """A logically fully-connected switch network over a set of port nodes.

    Parameters
    ----------
    topo:
        Topology the switches and links are created in.
    ports:
        Node ids to attach.  A node may appear multiple times if it attaches
        with several physical ports (e.g. the single accelerator of a 1x1
        HyperX board attaches both its East and West port to the same row
        network).
    radix:
        Switch radix (64-port switches throughout the paper).
    taper:
        Ratio of uplink to downlink ports at each level below the top
        (1.0 = nonblocking, 0.5 = "50% tapered", 0.25 = "75% tapered").
    access_capacity / trunk_capacity:
        Link capacities for port-to-leaf and switch-to-switch links in
        normalised 400 Gb/s units.
    access_cable / trunk_cable:
        Cable classes used for the cost census.
    """

    def __init__(
        self,
        topo: Topology,
        ports: Sequence[int],
        *,
        radix: int = 64,
        taper: float = 1.0,
        access_capacity: float = 1.0,
        trunk_capacity: float = 1.0,
        access_cable: CableClass = CableClass.DAC,
        trunk_cable: CableClass = CableClass.AOC,
        plane: int = 0,
        tag: str = "tree",
        leaf_down_ports: Optional[int] = None,
        leaf_up_ports: Optional[int] = None,
    ):
        if not ports:
            raise TopologyError("GlobalNetwork needs at least one port")
        if not (0.0 < taper <= 1.0):
            raise TopologyError(f"taper must be in (0, 1], got {taper}")
        self.topo = topo
        self.radix = radix
        self.taper = taper
        self.plane = plane
        self.tag = tag
        self._access_capacity = access_capacity
        self._trunk_capacity = trunk_capacity
        self._access_cable = access_cable
        self._trunk_cable = trunk_cable

        self.attachments: List[_Attachment] = []
        self.node_attachments: Dict[int, List[int]] = {}
        self.leaf_switches: List[int] = []
        self.spine_switches: List[int] = []
        self.core_switches: List[int] = []
        # (leaf, spine) -> [(up link, down link), ...]; analogous for spine/core
        self.leaf_spine: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self.spine_core: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self.spines_of_leaf: Dict[int, List[int]] = {}
        self.cores_of_spine: Dict[int, List[int]] = {}
        self.leaf_pod: Dict[int, int] = {}
        self.spine_pod: Dict[int, int] = {}
        self.spine_index: Dict[int, int] = {}

        n = len(ports)
        self.levels = fat_tree_levels_for(n, radix)
        if self.levels == 1:
            self._build_single_switch(ports)
        elif self.levels == 2:
            self._build_two_level(ports, leaf_down_ports, leaf_up_ports)
        else:
            self._build_three_level(ports)

        for idx, att in enumerate(self.attachments):
            self.node_attachments.setdefault(att.node, []).append(idx)

    # ------------------------------------------------------------------ build
    def _new_switch(self, role: str, index: int) -> int:
        return self.topo.add_switch(
            f"{self.tag}-{role}{index}", role=role, network=self.tag, plane=self.plane
        )

    def _attach(self, node: int, leaf: int) -> None:
        up, down = self.topo.add_link(
            node,
            leaf,
            capacity=self._access_capacity,
            cable=self._access_cable,
            plane=self.plane,
            tag=f"{self.tag}-access",
        )
        self.attachments.append(_Attachment(node, leaf, up, down))

    def _trunk(self, lo: int, hi: int, store: Dict[Tuple[int, int], List[Tuple[int, int]]]) -> None:
        up, down = self.topo.add_link(
            lo,
            hi,
            capacity=self._trunk_capacity,
            cable=self._trunk_cable,
            plane=self.plane,
            tag=f"{self.tag}-trunk",
        )
        store.setdefault((lo, hi), []).append((up, down))

    def _build_single_switch(self, ports: Sequence[int]) -> None:
        if len(ports) > self.radix:
            raise TopologyError("too many ports for a single switch")
        sw = self._new_switch("leaf", 0)
        self.leaf_switches.append(sw)
        for node in ports:
            self._attach(node, sw)

    def _build_two_level(
        self,
        ports: Sequence[int],
        leaf_down_ports: Optional[int],
        leaf_up_ports: Optional[int],
    ) -> None:
        n = len(ports)
        down = leaf_down_ports if leaf_down_ports is not None else self.radix // 2
        up = (
            leaf_up_ports
            if leaf_up_ports is not None
            else max(1, round(down * self.taper))
        )
        if down + up > self.radix:
            raise TopologyError(
                f"leaf switch needs {down}+{up} ports but radix is {self.radix}"
            )
        num_leaves = -(-n // down)
        num_spines = max(1, -(-(num_leaves * up) // self.radix))
        leaves = [self._new_switch("leaf", i) for i in range(num_leaves)]
        spines = [self._new_switch("spine", i) for i in range(num_spines)]
        self.leaf_switches.extend(leaves)
        self.spine_switches.extend(spines)
        for i, node in enumerate(ports):
            self._attach(node, leaves[i // down])
        for li, leaf in enumerate(leaves):
            self.spines_of_leaf[leaf] = []
            for u in range(up):
                spine = spines[(li * up + u) % num_spines]
                self._trunk(leaf, spine, self.leaf_spine)
                if spine not in self.spines_of_leaf[leaf]:
                    self.spines_of_leaf[leaf].append(spine)
            self.leaf_pod[leaf] = 0
        for spine in spines:
            self.spine_pod[spine] = 0

    def _build_three_level(self, ports: Sequence[int]) -> None:
        n = len(ports)
        half = self.radix // 2
        pod_capacity = half * half          # endpoints per pod (nonblocking)
        num_pods = -(-n // pod_capacity)
        down = half
        up = max(1, round(down * self.taper))            # leaf uplinks
        spine_up = max(1, round(half * self.taper))      # pod-spine uplinks
        cores_per_index = max(1, -(-(spine_up * num_pods) // self.radix))
        num_cores = half * cores_per_index
        cores = [self._new_switch("core", i) for i in range(num_cores)]
        self.core_switches.extend(cores)

        port_iter = iter(range(n))
        ports = list(ports)
        for pod in range(num_pods):
            pod_ports = ports[pod * pod_capacity : (pod + 1) * pod_capacity]
            if not pod_ports:
                continue
            num_leaves = -(-len(pod_ports) // down)
            leaves = [self._new_switch("leaf", pod * half + i) for i in range(num_leaves)]
            spines = [self._new_switch("spine", pod * half + i) for i in range(half)]
            self.leaf_switches.extend(leaves)
            self.spine_switches.extend(spines)
            for leaf in leaves:
                self.leaf_pod[leaf] = pod
            for si, spine in enumerate(spines):
                self.spine_pod[spine] = pod
                self.spine_index[spine] = si
            for i, node in enumerate(pod_ports):
                self._attach(node, leaves[i // down])
            # leaf <-> pod spine links: distribute each leaf's uplinks round
            # robin over the pod's spines.
            for li, leaf in enumerate(leaves):
                self.spines_of_leaf[leaf] = []
                for u in range(up):
                    spine = spines[(li * up + u) % len(spines)]
                    self._trunk(leaf, spine, self.leaf_spine)
                    if spine not in self.spines_of_leaf[leaf]:
                        self.spines_of_leaf[leaf].append(spine)
            # pod spine <-> core links: spine with index s connects only to the
            # core group [s*cores_per_index, (s+1)*cores_per_index), so that
            # same-index spines of different pods share cores (valid up/down
            # paths exist between any two pods).
            for si, spine in enumerate(spines):
                self.cores_of_spine[spine] = []
                group = cores[si * cores_per_index : (si + 1) * cores_per_index]
                for u in range(spine_up):
                    core = group[u % len(group)]
                    self._trunk(spine, core, self.spine_core)
                    if core not in self.cores_of_spine[spine]:
                        self.cores_of_spine[spine].append(core)

    # ------------------------------------------------------------------ paths
    @property
    def num_switches(self) -> int:
        return len(self.leaf_switches) + len(self.spine_switches) + len(self.core_switches)

    @property
    def switches(self) -> List[int]:
        return self.leaf_switches + self.spine_switches + self.core_switches

    def attachments_of(self, node: int) -> List[_Attachment]:
        return [self.attachments[i] for i in self.node_attachments.get(node, [])]

    def has_port(self, node: int) -> bool:
        return node in self.node_attachments

    @staticmethod
    def _rotated(seq: List[int], key: int) -> List[int]:
        """Deterministically rotate ``seq`` by a hash of ``key``.

        Candidate paths are enumerated starting at a pair-dependent offset so
        that different flows spread their (capped) path choices over all
        parallel spines/cores, approximating adaptive routing's load
        balancing instead of always hammering the first few switches.
        """
        if len(seq) <= 1:
            return seq
        off = mix64(key) % len(seq)
        return seq[off:] + seq[:off]

    @staticmethod
    def _rotated(seq: List, key: int) -> List:
        """Deterministically rotate ``seq`` by a hash of ``key``.

        Candidate paths are enumerated starting at a flow-dependent offset so
        that different flows spread their (capped) path choices over all
        parallel spines/cores, approximating adaptive routing's load
        balancing instead of always hammering the first few switches.
        """
        if len(seq) <= 1:
            return list(seq)
        off = mix64(key) % len(seq)
        return list(seq[off:]) + list(seq[:off])

    def _leaf_to_leaf_paths(self, leaf_a: int, leaf_b: int, max_paths: int, key: int = 0) -> List[List[int]]:
        """Switch-level up/down paths from ``leaf_a`` to ``leaf_b`` (link lists).

        ``key`` (typically derived from the flow endpoints) rotates the spine
        and parallel-link enumeration so that different flows between the
        same leaf pair exercise different parallel resources.  Paths are
        enumerated spine-first: one path per distinct spine before a second
        parallel link of any spine is used.
        """
        if leaf_a == leaf_b:
            return [[]]
        paths: List[List[int]] = []
        pod_a = self.leaf_pod.get(leaf_a, 0)
        pod_b = self.leaf_pod.get(leaf_b, 0)
        if self.levels == 2 or pod_a == pod_b:
            spines = self._rotated(self.spines_of_leaf.get(leaf_a, []), key)
            # Round-robin over parallel (up, down) link pairs per spine.
            for round_idx in range(4):
                for spine in spines:
                    if (leaf_b, spine) not in self.leaf_spine:
                        continue
                    ups = self.leaf_spine[(leaf_a, spine)]
                    downs = self.leaf_spine[(leaf_b, spine)]
                    if round_idx >= max(len(ups), len(downs)):
                        continue
                    u = ups[(round_idx + mix64(key ^ 0xA5)) % len(ups)][0]
                    d = downs[(round_idx + mix64(key ^ 0x5A)) % len(downs)][1]
                    paths.append([u, d])
                    if len(paths) >= max_paths:
                        return paths
                if paths and round_idx == 0:
                    # one full spine round already gives the needed diversity
                    break
            return paths
        # three-level, different pods: leaf_a -> spine s -> core -> spine s' -> leaf_b
        for spine_a in self._rotated(self.spines_of_leaf.get(leaf_a, []), key):
            for spine_b in self.spines_of_leaf.get(leaf_b, []):
                if self.spine_index.get(spine_a) != self.spine_index.get(spine_b):
                    continue
                for core in self._rotated(self.cores_of_spine.get(spine_a, []), key):
                    if (spine_b, core) not in self.spine_core:
                        continue
                    ups1 = self.leaf_spine[(leaf_a, spine_a)]
                    ups2 = self.spine_core[(spine_a, core)]
                    downs2 = self.spine_core[(spine_b, core)]
                    downs1 = self.leaf_spine[(leaf_b, spine_b)]
                    up1 = ups1[mix64(key) % len(ups1)][0]
                    up2 = ups2[mix64(key ^ 1) % len(ups2)][0]
                    down2 = downs2[mix64(key ^ 2) % len(downs2)][1]
                    down1 = downs1[mix64(key ^ 3) % len(downs1)][1]
                    paths.append([up1, up2, down2, down1])
                    if len(paths) >= max_paths:
                        return paths
                    break  # one core per (spine_a, spine_b) pair, move to next spine
        return paths

    def paths(self, src: int, dst: int, max_paths: int = 4) -> List[List[int]]:
        """Minimal up/down paths (as directed-link index lists) from node
        ``src`` to node ``dst`` through this network, including the access
        links at both ends."""
        out: List[List[int]] = []
        key = (src * 1000003 + dst) & 0x7FFFFFFF
        for att_s in self.attachments_of(src):
            for att_d in self.attachments_of(dst):
                if att_d is att_s:
                    continue
                for mid in self._leaf_to_leaf_paths(att_s.leaf, att_d.leaf, max_paths, key=key):
                    out.append([att_s.up_link] + mid + [att_d.down_link])
                    if len(out) >= max_paths:
                        return out
        return out

    def entry_paths(self, src: int, leaf_target: Optional[int] = None) -> List[_Attachment]:
        """Attachments usable to enter the network from ``src``."""
        return self.attachments_of(src)


# --------------------------------------------------------------------------
#  Standalone fat-tree cluster (baseline topology of Table II)
# --------------------------------------------------------------------------
@register_topology("fattree")
def build_fat_tree(
    num_accelerators: int,
    *,
    radix: int = 64,
    taper: float = 1.0,
    accelerator_capacity: float = 4.0,
    plane_count: int = 4,
    leaf_down_ports: Optional[int] = None,
    leaf_up_ports: Optional[int] = None,
) -> Topology:
    """Build a standalone fat-tree cluster.

    The simulation collapses the ``plane_count`` identical planes into a
    single plane whose links carry ``accelerator_capacity`` units (see
    DESIGN.md).  ``taper`` < 1 reproduces the "50% tapered" (0.5) and
    "75% tapered" (0.25) variants of Table II.  ``leaf_down_ports`` /
    ``leaf_up_ports`` may be given to pin the exact leaf configuration used
    in Appendix C (e.g. 42/22 and 51/13 for the small tapered trees).
    """
    if num_accelerators < 2:
        raise TopologyError("a fat tree needs at least two accelerators")
    topo = Topology(f"fattree-{num_accelerators}-taper{taper:g}")
    accs = [topo.add_accelerator(f"acc{i}", index=i) for i in range(num_accelerators)]
    network = GlobalNetwork(
        topo,
        accs,
        radix=radix,
        taper=taper,
        access_capacity=accelerator_capacity,
        trunk_capacity=accelerator_capacity,
        access_cable=CableClass.DAC,
        trunk_cable=CableClass.AOC,
        tag="ft",
        leaf_down_ports=leaf_down_ports,
        leaf_up_ports=leaf_up_ports,
    )
    topo.meta.update(
        family="fattree",
        network=network,
        taper=taper,
        radix=radix,
        plane_count=plane_count,
        accelerator_capacity=accelerator_capacity,
        injection_capacity=accelerator_capacity,
    )
    topo.validate()
    return topo
