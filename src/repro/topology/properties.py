"""Structural property analysis: diameter, bisection, cable/switch census.

These reproduce the analytic columns of Table II (network diameter counted in
cables, relative bisection bandwidth) and Section III-A/B of the paper.  Two
flavours are provided: closed-form per-family formulas (used for the large
configurations) and exact graph computations (BFS diameter, dimension-cut
bisection) used to validate the formulas on small instances in the tests.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Iterable, Optional

from .base import CableClass, NodeKind, Topology, TopologyError

__all__ = [
    "analytic_diameter",
    "bfs_diameter",
    "relative_bisection_bandwidth",
    "cable_census",
    "switch_count",
    "fat_tree_global_stage",
]


# --------------------------------------------------------------------- helpers
def fat_tree_global_stage(ports: int, radix: int) -> int:
    """Cable count contributed by one dimension's global network.

    Per Section III-B the per-dimension contribution to the HxMesh diameter is
    ``2 * (ceil(log_{k/2}(q / k)) + 1)`` cables, where ``q`` is the number of
    endpoints of that dimension's tree and ``k`` the switch radix.  A single
    switch (``q <= k``) contributes 2 cables (in and out).
    """
    if ports <= 0:
        raise TopologyError("ports must be positive")
    if ports <= radix:
        return 2
    levels = math.ceil(math.log(ports / radix, radix / 2))
    return 2 * (max(levels, 0) + 1)


# --------------------------------------------------------------------- diameter
def analytic_diameter(topo: Topology) -> int:
    """Closed-form network diameter in cables, per topology family.

    Matches the derivations of Section III-B: fat trees count the endpoint
    cables (diameter 4 for two levels, 6 for three), the torus uses the
    Manhattan distance of the farthest wrap-around pair, Dragonfly is 3 when
    every router reaches every other group directly and 5 otherwise, and
    HammingMesh combines on-board hops with two global-tree traversals.
    """
    family = topo.meta.get("family")
    if family == "fattree":
        # Up/down path through an L-level tree: L cables up, L cables down
        # (including the endpoint cables), i.e. 4 for two levels, 6 for three.
        network = topo.meta["network"]
        return 2 * network.levels
    if family == "torus":
        rows, cols = topo.meta["rows"], topo.meta["cols"]
        return rows // 2 + cols // 2
    if family == "dragonfly":
        g = topo.meta["num_groups"]
        h = topo.meta["global_links_per_router"]
        return 3 if h >= g - 1 else 5
    if family == "hyperx":
        # acc -> switch -> (row hop) -> (column hop) -> switch -> acc
        return 4
    if family == "hammingmesh":
        params = topo.meta["params"]
        board = 2 * ((params.a - 1) // 2 + (params.b - 1) // 2)
        row = fat_tree_global_stage(params.row_ports, params.radix) if params.x > 1 else 0
        col = fat_tree_global_stage(params.col_ports, params.radix) if params.y > 1 else 0
        return board + row + col
    raise TopologyError(f"no analytic diameter for family {family!r}")


def bfs_diameter(topo: Topology, sources: Optional[Iterable[int]] = None) -> int:
    """Exact accelerator-to-accelerator diameter in cables by BFS.

    ``sources`` restricts the BFS roots (all accelerators by default); the
    result is the maximum over the selected sources of the eccentricity with
    respect to all accelerators.  Intended for small topologies and tests.
    """
    if sources is None:
        sources = topo.accelerators
    best = 0
    for src in sources:
        dist = [-1] * topo.num_nodes
        dist[src] = 0
        q = deque([src])
        while q:
            u = q.popleft()
            for li in topo.out_links(u):
                v = topo.link(li).dst
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    q.append(v)
        for acc in topo.accelerators:
            if dist[acc] < 0:
                raise TopologyError(f"accelerator {acc} unreachable from {src}")
            if dist[acc] > best:
                best = dist[acc]
    return best


# -------------------------------------------------------------------- bisection
def relative_bisection_bandwidth(topo: Topology) -> float:
    """Bisection bandwidth as a fraction of total injection bandwidth.

    * Fat tree: the taper factor (1.0 when nonblocking).
    * Dragonfly (full bandwidth): ~1.0 by construction.
    * 2D torus with C columns of accelerators and per-port capacity c:
      cutting the longer dimension cuts ``2 * rows`` links against
      ``rows*cols/2`` accelerators injecting 4c each.
    * HammingMesh with square a x a boards: ``1 / (2a)`` (Section III-A).
    """
    family = topo.meta.get("family")
    if family == "fattree":
        return float(topo.meta.get("taper", 1.0))
    if family in ("dragonfly", "hyperx"):
        return 1.0
    if family == "torus":
        rows, cols = topo.meta["rows"], topo.meta["cols"]
        long_dim, short_dim = max(rows, cols), min(rows, cols)
        # Cut perpendicular to the long dimension: 2 wrap directions per row
        # of the short dimension.
        cut_links = 2 * short_dim
        half_injection = (rows * cols / 2) * 4.0
        return cut_links / half_injection * 1.0
    if family == "hammingmesh":
        params = topo.meta["params"]
        # Cut the y-dimension links of half the boards: a links per board per
        # direction -> 2a per board column crossing, x*a links total per
        # board row... following Section III-A's derivation for square
        # boards the relative bisection bandwidth is 1/(2a); for rectangular
        # boards we use the dimension actually cut.
        a = params.a if params.a == params.b else max(params.a, params.b)
        return 1.0 / (2.0 * a)
    raise TopologyError(f"no bisection model for family {family!r}")


# ----------------------------------------------------------------------- census
def cable_census(topo: Topology) -> Dict[CableClass, int]:
    """Number of physical bidirectional cables per cable class (one plane)."""
    return {c: topo.cable_count(c) for c in CableClass}


def switch_count(topo: Topology) -> int:
    """Number of external switches in the simulated plane."""
    return topo.num_switches
