"""Network topology substrates: graph model, baseline topologies, analysis.

The :class:`~repro.topology.base.Topology` graph model is shared by every
network in the reproduction; the submodules provide builders for the
baseline topologies the paper compares against (fat tree, Dragonfly, 2D
torus, 2D HyperX) and structural analysis (diameter, bisection, cable
census).  The HammingMesh builder itself lives in :mod:`repro.core`.
"""

from .base import (
    CableClass,
    Link,
    NodeKind,
    Topology,
    TopologyError,
    available_topologies,
    build_topology,
    register_topology,
)
from .board import BoardHandle, add_board
from .dragonfly import build_dragonfly, dragonfly_large, dragonfly_small
from .fattree import GlobalNetwork, build_fat_tree, fat_tree_levels_for
from .hyperx import build_hx1mesh, build_hyperx2d
from .properties import (
    analytic_diameter,
    bfs_diameter,
    cable_census,
    relative_bisection_bandwidth,
    switch_count,
)
from .torus import build_torus2d

__all__ = [
    "CableClass",
    "Link",
    "NodeKind",
    "Topology",
    "TopologyError",
    "available_topologies",
    "build_topology",
    "register_topology",
    "BoardHandle",
    "add_board",
    "GlobalNetwork",
    "build_fat_tree",
    "fat_tree_levels_for",
    "build_dragonfly",
    "dragonfly_small",
    "dragonfly_large",
    "build_hyperx2d",
    "build_hx1mesh",
    "build_torus2d",
    "analytic_diameter",
    "bfs_diameter",
    "cable_census",
    "relative_bisection_bandwidth",
    "switch_count",
]
