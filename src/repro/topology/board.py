"""Accelerator board substrate: a x b 2D meshes of accelerators on a PCB.

A *board* is the local group of a HammingMesh (Section III, Figure 3 of the
paper): ``a`` columns times ``b`` rows of accelerator packages connected by
short, inexpensive PCB traces in a 2D mesh.  Each accelerator exposes four
directional ports per plane (North, South, East, West); interior ports connect
to the neighbouring accelerator on the board, edge ports leave the board and
attach to the global row/column networks.

The same helper is reused by the 2D-torus baseline (which also uses 2x2
boards with discounted local connectivity) and by the HyperX baseline
(degenerate 1x1 boards).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .base import CableClass, Topology

__all__ = ["BoardHandle", "add_board", "EAST", "WEST", "NORTH", "SOUTH"]

# Directional tags for on-board ports.  East/West span the ``a`` (column)
# dimension, North/South the ``b`` (row) dimension, matching Figure 3.
EAST = "E"
WEST = "W"
NORTH = "N"
SOUTH = "S"


@dataclass
class BoardHandle:
    """Handle to one board placed inside a :class:`Topology`.

    Attributes
    ----------
    coord:
        Global (row, column) coordinate of the board in the x*y grid.
    a, b:
        Board dimensions: ``a`` columns (East-West) and ``b`` rows
        (North-South).
    nodes:
        ``nodes[br][bc]`` is the accelerator node id at on-board row ``br``
        and column ``bc``.
    mesh_links:
        Mapping ``(node, direction) -> link index`` for every on-board PCB
        link leaving ``node`` in the given direction.
    """

    coord: Tuple[int, int]
    a: int
    b: int
    nodes: List[List[int]]
    mesh_links: Dict[Tuple[int, str], int]

    # -------------------------------------------------------------- accessors
    def node_at(self, br: int, bc: int) -> int:
        """Accelerator node id at on-board position (row ``br``, col ``bc``)."""
        return self.nodes[br][bc]

    def all_nodes(self) -> List[int]:
        """All accelerator node ids of the board in row-major order."""
        return [n for row in self.nodes for n in row]

    def east_ports(self) -> List[int]:
        """Accelerators on the East edge (one per on-board row)."""
        return [self.nodes[br][self.a - 1] for br in range(self.b)]

    def west_ports(self) -> List[int]:
        """Accelerators on the West edge (one per on-board row)."""
        return [self.nodes[br][0] for br in range(self.b)]

    def north_ports(self) -> List[int]:
        """Accelerators on the North edge (one per on-board column)."""
        return [self.nodes[0][bc] for bc in range(self.a)]

    def south_ports(self) -> List[int]:
        """Accelerators on the South edge (one per on-board column)."""
        return [self.nodes[self.b - 1][bc] for bc in range(self.a)]

    def mesh_link(self, node: int, direction: str) -> int:
        """On-board link index leaving ``node`` towards ``direction``."""
        return self.mesh_links[(node, direction)]

    def has_mesh_link(self, node: int, direction: str) -> bool:
        return (node, direction) in self.mesh_links


def add_board(
    topo: Topology,
    coord: Tuple[int, int],
    a: int,
    b: int,
    *,
    capacity: float = 1.0,
    plane: int = 0,
    label_prefix: str = "acc",
) -> BoardHandle:
    """Create an ``a`` x ``b`` accelerator board inside ``topo``.

    Accelerators are added with attributes ``board=coord`` and
    ``pos=(br, bc)``; PCB mesh links are added between horizontal and
    vertical neighbours.  Degenerate boards (``a == 1`` and/or ``b == 1``)
    simply have no links along the degenerate dimension.
    """
    if a < 1 or b < 1:
        raise ValueError(f"board dimensions must be >= 1, got {a}x{b}")
    gr, gc = coord
    nodes: List[List[int]] = []
    for br in range(b):
        row: List[int] = []
        for bc in range(a):
            node = topo.add_accelerator(
                f"{label_prefix}[{gr},{gc}][{br},{bc}]",
                board=coord,
                pos=(br, bc),
            )
            row.append(node)
        nodes.append(row)

    mesh_links: Dict[Tuple[int, str], int] = {}
    # East-West PCB links (within an on-board row).
    for br in range(b):
        for bc in range(a - 1):
            u, v = nodes[br][bc], nodes[br][bc + 1]
            e, w = topo.add_link(
                u, v, capacity=capacity, cable=CableClass.PCB, plane=plane,
                tag="board-EW", count_cable=False,
            )
            mesh_links[(u, EAST)] = e
            mesh_links[(v, WEST)] = w
    # North-South PCB links (within an on-board column).  Row 0 is North.
    for bc in range(a):
        for br in range(b - 1):
            u, v = nodes[br][bc], nodes[br + 1][bc]
            s, n = topo.add_link(
                u, v, capacity=capacity, cable=CableClass.PCB, plane=plane,
                tag="board-NS", count_cable=False,
            )
            mesh_links[(u, SOUTH)] = s
            mesh_links[(v, NORTH)] = n

    return BoardHandle(coord=coord, a=a, b=b, nodes=nodes, mesh_links=mesh_links)
