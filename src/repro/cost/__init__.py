"""Capital-cost model (Section III-C, Appendix C/E of the paper)."""

from .catalog import DEFAULT_CATALOG, PriceCatalog
from .model import (
    CostBreakdown,
    dragonfly_cost,
    fat_tree_cost,
    hammingmesh_cost,
    hyperx_cost,
    torus_cost,
)

__all__ = [
    "PriceCatalog",
    "DEFAULT_CATALOG",
    "CostBreakdown",
    "fat_tree_cost",
    "dragonfly_cost",
    "hammingmesh_cost",
    "hyperx_cost",
    "torus_cost",
]
