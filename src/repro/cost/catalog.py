"""Price catalog for the capital-cost model (Section III-C / Appendix E).

The paper prices all networks with a single switch type and two cable types,
sourced from colfaxdirect.com in spring 2022:

* 64-port switch (Edgecore AS7816-64X): $14,280
* 20 m active optical cable (AoC):      $603
* 5 m passive copper cable (DAC):       $272

On-board PCB traces are free (included in the accelerator packaging cost).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..topology.base import CableClass

__all__ = ["PriceCatalog", "DEFAULT_CATALOG"]


@dataclass(frozen=True)
class PriceCatalog:
    """Unit prices in US dollars."""

    switch: float = 14_280.0
    aoc_cable: float = 603.0
    dac_cable: float = 272.0
    pcb_trace: float = 0.0
    switch_radix: int = 64

    def cable_price(self, cable: CableClass) -> float:
        """Price of one bidirectional cable of the given class."""
        if cable is CableClass.AOC:
            return self.aoc_cable
        if cable is CableClass.DAC:
            return self.dac_cable
        return self.pcb_trace


#: Default catalog with the paper's April-2022 prices.
DEFAULT_CATALOG = PriceCatalog()
