"""Capital-cost accounting for every topology of Table II (Appendix C).

All functions return a :class:`CostBreakdown` (switch / DAC / AoC counts and
dollar totals) for the *full* system, i.e. summed over all network planes
(16 single-port planes for fat tree and Dragonfly, 4 four-port planes for
HammingMesh, HyperX/Hx1Mesh and the 2D torus), following the accounting in
Appendix C of the paper:

* fat trees connect endpoints with DAC and switches with AoC; tapering is
  applied between the first and second level only;
* Dragonfly uses DAC inside groups and AoC between groups;
* HammingMesh uses DAC for the row-dimension endpoint cables, AoC for the
  column dimension and for all inter-switch cables; PCB traces are free;
* the 2D torus only needs DAC cables between neighbouring boards.

Where our independent re-derivation of Appendix C disagrees with the numbers
printed in Table II (the 2D-torus and large-HyperX rows), EXPERIMENTS.md
records the difference; all other rows reproduce the published costs to
within ~2%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.params import HxMeshParams, hx1mesh
from .catalog import DEFAULT_CATALOG, PriceCatalog

__all__ = [
    "CostBreakdown",
    "fat_tree_cost",
    "dragonfly_cost",
    "hammingmesh_cost",
    "hyperx_cost",
    "torus_cost",
]


@dataclass(frozen=True)
class CostBreakdown:
    """Switch and cable counts with the resulting capital cost."""

    name: str
    num_switches: int
    num_dac: int
    num_aoc: int
    catalog: PriceCatalog = field(default=DEFAULT_CATALOG, repr=False)

    @property
    def switch_cost(self) -> float:
        return self.num_switches * self.catalog.switch

    @property
    def cable_cost(self) -> float:
        return self.num_dac * self.catalog.dac_cable + self.num_aoc * self.catalog.aoc_cable

    @property
    def total(self) -> float:
        """Total network cost in dollars."""
        return self.switch_cost + self.cable_cost

    @property
    def total_millions(self) -> float:
        """Total network cost in millions of dollars (Table II unit)."""
        return self.total / 1e6

    def scaled(self, factor: float) -> "CostBreakdown":
        """Breakdown with all counts scaled (used for per-plane views)."""
        return CostBreakdown(
            self.name,
            round(self.num_switches * factor),
            round(self.num_dac * factor),
            round(self.num_aoc * factor),
            self.catalog,
        )


# ----------------------------------------------------------------- fat trees
def _fat_tree_plane_counts(
    num_endpoints: int, taper: float, radix: int
) -> Dict[str, int]:
    """Per-plane switch/cable counts of a (possibly tapered) fat tree.

    Tapering is applied between the leaf and the second level only; higher
    levels are built nonblocking, matching the paper's construction
    ("tapered beginning from the second level").
    """
    half = radix // 2
    if taper >= 1.0:
        up = half
        down = half
    else:
        up = math.ceil(radix * taper / (1.0 + taper))
        down = radix - up
    if num_endpoints <= radix:
        return {"switches": 1, "dac": num_endpoints, "aoc": 0}
    leaves = math.ceil(num_endpoints / down)
    if num_endpoints <= down * radix:
        spines = math.ceil(leaves * up / radix)
        return {
            "switches": leaves + spines,
            "dac": leaves * down,
            "aoc": leaves * up,
        }
    # Three levels: leaves (tapered), middle and top built nonblocking.
    mid = math.ceil(leaves * up / half)
    top = math.ceil(mid * half / radix)
    return {
        "switches": leaves + mid + top,
        "dac": leaves * down,
        "aoc": leaves * up + mid * half,
    }


def fat_tree_cost(
    num_endpoints: int,
    *,
    taper: float = 1.0,
    planes: int = 16,
    catalog: PriceCatalog = DEFAULT_CATALOG,
    name: Optional[str] = None,
) -> CostBreakdown:
    """Cost of a fat-tree cluster with ``planes`` single-port planes."""
    counts = _fat_tree_plane_counts(num_endpoints, taper, catalog.switch_radix)
    label = name or f"fat tree ({int((1 - taper) * 100)}% tapered)" if taper < 1.0 else (
        name or "nonblocking fat tree"
    )
    return CostBreakdown(
        label,
        counts["switches"] * planes,
        counts["dac"] * planes,
        counts["aoc"] * planes,
        catalog,
    )


# ----------------------------------------------------------------- dragonfly
def dragonfly_cost(
    num_groups: int,
    routers_per_group: int,
    endpoints_per_router: int,
    global_links_per_router: int,
    *,
    planes: int = 16,
    virtual_per_physical: int = 1,
    catalog: PriceCatalog = DEFAULT_CATALOG,
) -> CostBreakdown:
    """Cost of a canonical Dragonfly (Appendix C conventions).

    ``virtual_per_physical`` mirrors the paper's small-cluster construction
    where two 31-port virtual routers are packed into one 64-port physical
    switch; DAC is used for endpoint and intra-group cables, AoC for the
    inter-group cables.
    """
    g, a, p, h = num_groups, routers_per_group, endpoints_per_router, global_links_per_router
    physical_per_group = math.ceil(a / virtual_per_physical)
    switches = g * physical_per_group
    # Endpoint cables + intra-group (local) cables, all DAC.
    local_cables_per_group = a * (a - 1) // 2
    if virtual_per_physical > 1:
        # Links internal to a physical switch are free.
        internal = physical_per_group * (virtual_per_physical * (virtual_per_physical - 1) // 2)
        local_cables_per_group -= internal
    dac = g * (a * p + local_cables_per_group)
    # Global cables, AoC; every cable is shared by two groups.
    aoc = g * a * h // 2
    return CostBreakdown(
        "Dragonfly",
        switches * planes,
        dac * planes,
        aoc * planes,
        catalog,
    )


# --------------------------------------------------------------- hammingmesh
def _tree_switches_and_trunks(ports: int, radix: int, taper: float) -> Dict[str, int]:
    """Switches and trunk (inter-switch) cable count of one global network."""
    if ports <= radix:
        return {"switches": 1, "trunks": 0}
    half = radix // 2
    up = max(1, round(half * taper))
    leaves = math.ceil(ports / half)
    spines = math.ceil(leaves * up / radix)
    return {"switches": leaves + spines, "trunks": leaves * up}


def hammingmesh_cost(
    params: HxMeshParams,
    *,
    catalog: PriceCatalog = DEFAULT_CATALOG,
    name: Optional[str] = None,
) -> CostBreakdown:
    """Cost of an HxMesh per Appendix C.

    Row-dimension endpoint cables are DAC, column-dimension endpoint cables
    and all inter-switch cables are AoC; PCB board traces are free.  When one
    64-port switch can serve a whole global row (2 * b * x <= 64 ports) the
    construction merges the ``b`` per-on-board-row networks into that single
    switch, as the paper does for the small clusters.
    """
    a, b, x, y = params.a, params.b, params.x, params.y
    radix = params.radix
    taper = params.global_taper

    # Row dimension (x direction): endpoint cables and switches.
    row_endpoint_cables = 2 * b * x * y
    if x > 1:
        if 2 * b * x <= radix:
            row_switches = y
            row_trunks = 0
        else:
            per = _tree_switches_and_trunks(2 * x, radix, taper)
            row_switches = y * b * per["switches"]
            row_trunks = y * b * per["trunks"]
    else:
        row_switches = row_trunks = row_endpoint_cables = 0

    # Column dimension (y direction).
    col_endpoint_cables = 2 * a * x * y
    if y > 1:
        if 2 * a * y <= radix:
            col_switches = x
            col_trunks = 0
        else:
            per = _tree_switches_and_trunks(2 * y, radix, taper)
            col_switches = x * a * per["switches"]
            col_trunks = x * a * per["trunks"]
    else:
        col_switches = col_trunks = col_endpoint_cables = 0

    switches = (row_switches + col_switches) * params.planes
    dac = row_endpoint_cables * params.planes
    aoc = (col_endpoint_cables + row_trunks + col_trunks) * params.planes
    return CostBreakdown(name or params.name, switches, dac, aoc, catalog)


def hyperx_cost(
    x: int,
    y: int,
    *,
    planes: int = 4,
    catalog: PriceCatalog = DEFAULT_CATALOG,
) -> CostBreakdown:
    """Cost of a 2D HyperX, accounted as an Hx1Mesh (Appendix C)."""
    breakdown = hammingmesh_cost(hx1mesh(x, y, planes=planes), catalog=catalog)
    return CostBreakdown("2D HyperX", breakdown.num_switches, breakdown.num_dac,
                         breakdown.num_aoc, catalog)


# -------------------------------------------------------------------- torus
def torus_cost(
    board_cols: int,
    board_rows: int,
    *,
    board_a: int = 2,
    board_b: int = 2,
    planes: int = 4,
    catalog: PriceCatalog = DEFAULT_CATALOG,
) -> CostBreakdown:
    """Cost of a switchless 2D torus of PCB boards.

    Every pair of neighbouring boards is connected by one DAC cable per edge
    accelerator per plane (``board_b`` cables in the x direction,
    ``board_a`` in the y direction); wrap-around cables are included.
    """
    x_cables = board_b * board_cols * board_rows          # per plane
    y_cables = board_a * board_cols * board_rows
    dac = (x_cables + y_cables) * planes
    return CostBreakdown("2D torus", 0, dac, 0, catalog)
