"""Parallelism decomposition and communication-volume model (Section V-B1).

A training job runs on ``D x P x O`` accelerators (data, pipeline, operator
parallelism).  Each dimension carries a characteristic per-iteration volume:

* data dimension:      ``V_D = W * N_P / (O * P)``  (gradient allreduce)
* pipeline dimension:  ``V_P = M * W * N_A / (D * P * O)`` (activations +
  errors across each pipeline cut, forward and backward)
* operator dimension:  ``V_O = W * N_O`` (operator-specific collectives, a
  function of the local minibatch ``M / (D * P)``)

``W`` is the word size, ``N_P`` the number of parameters, ``N_A`` the number
of activations at a pipeline cut and ``M`` the global minibatch size.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ParallelismConfig", "CommVolumes"]


@dataclass(frozen=True)
class ParallelismConfig:
    """Degrees of data, pipeline and operator parallelism."""

    data: int = 1
    pipeline: int = 1
    operator: int = 1

    def __post_init__(self) -> None:
        if min(self.data, self.pipeline, self.operator) < 1:
            raise ValueError("parallelism degrees must be >= 1")

    @property
    def num_accelerators(self) -> int:
        return self.data * self.pipeline * self.operator

    def logical_shape(self) -> tuple:
        """Non-trivial dimensions of the logical job topology, largest first."""
        dims = [d for d in (self.data, self.pipeline, self.operator) if d > 1]
        return tuple(sorted(dims, reverse=True)) or (1,)


@dataclass(frozen=True)
class CommVolumes:
    """Per-accelerator, per-iteration communication volumes in bytes."""

    data_allreduce: float = 0.0      # gradient allreduce along D
    pipeline_p2p: float = 0.0        # activations + errors along P
    operator_collective: float = 0.0  # allreduce/allgather/halo along O
    operator_alltoall: float = 0.0   # MoE / embedding alltoall volume

    @property
    def total(self) -> float:
        return (
            self.data_allreduce
            + self.pipeline_p2p
            + self.operator_collective
            + self.operator_alltoall
        )


def data_parallel_volume(word_size: float, num_parameters: float,
                         config: ParallelismConfig) -> float:
    """V_D: bytes each data-parallel rank contributes to the gradient allreduce."""
    return word_size * num_parameters / (config.operator * config.pipeline)


def pipeline_volume(word_size: float, activations_per_example: float,
                    minibatch: int, config: ParallelismConfig) -> float:
    """V_P: bytes sent to the next pipeline stage per iteration (per direction)."""
    return (
        minibatch
        * word_size
        * activations_per_example
        / (config.data * config.pipeline * config.operator)
    )


def operator_volume(word_size: float, elements: float) -> float:
    """V_O: bytes of one operator-parallel collective."""
    return word_size * elements
