"""DLRM recommendation-model workload (Section V-B4).

DLRM combines model parallelism for its embedding tables with data
parallelism for the MLP layers.  Sparse embedding lookups are aggregated
with two alltoall operations in the forward pass (and their gradients with
two more in the backward pass); the data-parallel MLP gradients are
synchronised with an allreduce.  Parallelism is limited by the minibatch and
the embedding dimension, so the paper trains on 128 accelerators.

Per-iteration compute on an A100 is roughly 95 us (embedding) + 209 us
(feature interaction) + 796 us (MLP) = 1.1 ms; each alltoall moves 1 MB and
the allreduce 2.96 MB.  The iteration is latency-dominated, which is why the
paper's per-topology times only span 2.94-3.12 ms.
"""

from __future__ import annotations

from .dnn import ModelWorkload, register_workload
from .overlap import CommOp
from .parallelism import ParallelismConfig

__all__ = ["dlrm"]

COMPUTE_TIME = 95e-6 + 209e-6 + 796e-6
ALLTOALL_BYTES = 1.0e6
ALLREDUCE_BYTES = 2.96e6
DEFAULT_NODES = 128


@register_workload("dlrm")
def dlrm(num_accelerators: int = DEFAULT_NODES) -> ModelWorkload:
    """DLRM on ``num_accelerators`` accelerators (default 128)."""
    if num_accelerators < 2:
        raise ValueError("DLRM needs at least two accelerators")
    parallelism = ParallelismConfig(data=num_accelerators)
    ops = (
        # Two alltoalls in the forward pass and two in the backward pass;
        # they sit on the critical path between embedding lookup and feature
        # interaction, so only a small share overlaps.
        CommOp(kind="alltoall", volume=ALLTOALL_BYTES, group=num_accelerators,
               count=4, overlap=0.3),
        # Data-parallel MLP gradient allreduce, partially overlapped with the
        # embedding backward pass.
        CommOp(kind="allreduce", volume=ALLREDUCE_BYTES, group=num_accelerators,
               count=1, overlap=0.3),
    )
    return ModelWorkload(
        name=f"DLRM (N={num_accelerators})",
        parallelism=parallelism,
        compute_time=COMPUTE_TIME,
        comm_ops=ops,
        description="DLRM with embedding model parallelism and MLP data parallelism",
        paper_reference={
            "nonblocking fat tree": 2.96e-3,
            "fat tree 50% tapered": 2.97e-3,
            "fat tree 75% tapered": 2.99e-3,
            "2D torus": 3.12e-3,
            "2D HyperX": 2.94e-3,
            "Hx2Mesh": 2.97e-3,
            "Hx4Mesh": 3.00e-3,
        },
    )
