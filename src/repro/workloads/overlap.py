"""Network profiles and the compute/communication overlap iteration model.

A :class:`NetworkProfile` condenses a topology into the handful of effective
bandwidths the DNN workload models need:

* ``p2p_bandwidth`` -- bytes/s a single accelerator can push to one neighbour
  (pipeline-parallel sends).  Switched topologies stripe a single transfer
  over all four planes; on HammingMesh and the torus a neighbour send uses
  one directional port.
* ``allreduce_busbw`` -- achieved allreduce bus bandwidth (bytes/s), at most
  half the injection bandwidth.
* ``alltoall_bandwidth`` -- achievable per-accelerator alltoall bandwidth.
* ``alpha`` -- per-message latency.

Profiles can be built from measured flow-simulator fractions (Table II) via
:meth:`NetworkProfile.from_measurements`, or from the per-family defaults.

The iteration model follows Section V-B: communication that the schedule
allows to overlap hides underneath the iteration's compute time; whatever
does not fit (plus intrinsically blocking communication) is exposed and adds
to the iteration time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["PORT_BYTES_PER_S", "CommOp", "NetworkProfile", "iteration_time", "communication_time"]

#: One 400 Gb/s port in bytes per second.
PORT_BYTES_PER_S = 50e9

#: Ports a single point-to-point transfer can stripe over, per family.
#: Switched topologies give every accelerator one port per plane into a
#: non-blocking core, so a single transfer stripes over all four planes.
#: Direct topologies (HammingMesh, HyperX/Hx1Mesh, torus) reach a given
#: neighbour through one directional port per plane.
_P2P_PORTS = {
    "fattree": 4.0,
    "dragonfly": 4.0,
    "hyperx": 1.0,
    "hammingmesh": 1.0,
    "torus": 1.0,
}

#: Effective bandwidth share of small operator-parallel groups (e.g. the
#: 4-way Megatron allreduce).  On switched topologies and on HxMesh boards
#: the group communicates at full bandwidth; on the torus the group shares
#: its unswitched directional ports with pipeline and transit traffic.
_SMALL_GROUP_FACTOR = {
    "fattree": 1.0,
    "dragonfly": 1.0,
    "hyperx": 1.0,
    "hammingmesh": 1.0,
    "torus": 0.33,
}

#: Contention factor applied to point-to-point traffic: on the switchless
#: torus, pipeline sends, operator collectives and pass-through traffic of
#: neighbouring jobs share the same four ports without any isolation.
_P2P_CONTENTION = {
    "torus": 0.33,
}


@dataclass(frozen=True)
class CommOp:
    """One communication operation of a training iteration.

    ``volume`` is the per-accelerator data size in bytes, ``group`` the
    number of ranks participating, ``count`` how many times the operation
    runs per iteration, and ``overlap`` the fraction of its time the training
    schedule can hide behind compute (Section V-B: nonblocking allreduce,
    pipelined send/recv, ...).
    """

    kind: str                     # "allreduce" | "alltoall" | "p2p" | "allgather"
    volume: float
    group: int
    count: int = 1
    overlap: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("allreduce", "alltoall", "p2p", "allgather", "reducescatter"):
            raise ValueError(f"unknown communication kind {self.kind!r}")
        if not (0.0 <= self.overlap <= 1.0):
            raise ValueError("overlap must be within [0, 1]")
        if self.volume < 0 or self.count < 0 or self.group < 1:
            raise ValueError("invalid communication op parameters")


@dataclass(frozen=True)
class NetworkProfile:
    """Effective communication performance of one topology."""

    name: str
    family: str
    p2p_bandwidth: float            # bytes/s
    allreduce_busbw: float          # bytes/s
    alltoall_bandwidth: float       # bytes/s
    alpha: float = 2e-6             # seconds per message
    supports_torus_algorithm: bool = False
    #: bus bandwidth of small (operator-parallel) group allreduces, bytes/s
    small_group_busbw: float = 0.0

    def small_group_bandwidth(self) -> float:
        return self.small_group_busbw if self.small_group_busbw > 0 else self.allreduce_busbw

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_measurements(
        cls,
        name: str,
        family: str,
        *,
        alltoall_fraction: float,
        allreduce_fraction: float,
        injection_bytes_per_s: float = 4 * PORT_BYTES_PER_S,
        diameter: int = 6,
        link_latency: float = 20e-9,
        software_overhead: float = 1.5e-6,
    ) -> "NetworkProfile":
        """Build a profile from Table-II style measured bandwidth fractions."""
        p2p_ports = _P2P_PORTS.get(family, 4.0)
        contention = _P2P_CONTENTION.get(family, 1.0)
        allreduce_busbw = allreduce_fraction * injection_bytes_per_s / 2.0
        return cls(
            name=name,
            family=family,
            p2p_bandwidth=p2p_ports * PORT_BYTES_PER_S * contention,
            allreduce_busbw=allreduce_busbw,
            alltoall_bandwidth=alltoall_fraction * injection_bytes_per_s,
            alpha=software_overhead + diameter * link_latency,
            supports_torus_algorithm=family in ("hammingmesh", "torus", "hyperx"),
            small_group_busbw=allreduce_busbw * _SMALL_GROUP_FACTOR.get(family, 1.0),
        )


# ----------------------------------------------------------------- timing
def communication_time(op: CommOp, profile: NetworkProfile) -> float:
    """Wall-clock time of one instance of ``op`` on ``profile``."""
    if op.volume == 0 or op.group <= 1:
        return 0.0
    a = profile.alpha
    if op.kind == "allreduce":
        ring_latency = 2 * op.group * a
        if op.group >= 16:
            # Multi-algorithm selection (Section V-A2d): the 2D-torus
            # algorithm's sqrt(p) latency wins for larger groups.
            latency = min(ring_latency, 4 * math.sqrt(op.group) * a)
        else:
            latency = ring_latency
        busbw = (
            profile.small_group_bandwidth() if op.group <= 16 else profile.allreduce_busbw
        )
        return latency + op.volume / busbw
    if op.kind in ("allgather", "reducescatter"):
        busbw = (
            profile.small_group_bandwidth() if op.group <= 16 else profile.allreduce_busbw
        )
        return op.group * a + op.volume / busbw
    if op.kind == "alltoall":
        return (op.group - 1) * a + op.volume / profile.alltoall_bandwidth
    # point-to-point (pipeline neighbours, halo exchange)
    return a + op.volume / profile.p2p_bandwidth


def iteration_time(
    compute_time: float,
    ops: Sequence[CommOp],
    profile: NetworkProfile,
) -> float:
    """Iteration time with compute/communication overlap.

    The overlappable share of every operation hides behind compute as long
    as the total hidden time does not exceed the compute time (the network
    and the compute engine are independent resources); the remainder is
    exposed and extends the iteration.
    """
    hideable = 0.0
    exposed = 0.0
    for op in ops:
        t = communication_time(op, profile) * op.count
        hideable += t * op.overlap
        exposed += t * (1.0 - op.overlap)
    spill = max(0.0, hideable - compute_time)
    return compute_time + exposed + spill
