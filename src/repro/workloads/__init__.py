"""DNN communication workload models (Section V-B of the paper)."""

from .cosmoflow import cosmoflow
from .dlrm import dlrm
from .dnn import WORKLOADS, ModelWorkload, get_workload, register_workload
from .gpt3 import gpt3, gpt3_moe
from .overlap import (
    PORT_BYTES_PER_S,
    CommOp,
    NetworkProfile,
    communication_time,
    iteration_time,
)
from .parallelism import CommVolumes, ParallelismConfig
from .resnet import resnet152

__all__ = [
    "ModelWorkload",
    "WORKLOADS",
    "register_workload",
    "get_workload",
    "CommOp",
    "NetworkProfile",
    "PORT_BYTES_PER_S",
    "communication_time",
    "iteration_time",
    "ParallelismConfig",
    "CommVolumes",
    "resnet152",
    "cosmoflow",
    "gpt3",
    "gpt3_moe",
    "dlrm",
]
