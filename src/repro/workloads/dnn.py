"""DNN workload abstraction used by the Section V-B experiments.

A :class:`ModelWorkload` bundles a model's parallelism configuration, its
per-iteration compute time (measured on A100s by the paper and taken as a
fixed input, see DESIGN.md), and its per-iteration communication operations.
Calling :meth:`ModelWorkload.iteration_time` with a
:class:`~repro.workloads.overlap.NetworkProfile` yields the end-to-end
iteration time on a given topology; :meth:`communication_overhead` gives the
fraction of the iteration spent in exposed communication.

The five concrete workloads of the paper (ResNet-152, CosmoFlow, GPT-3,
GPT-3 MoE and DLRM) live in their own modules and register themselves in
:data:`WORKLOADS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .overlap import CommOp, NetworkProfile, iteration_time as _iteration_time
from .parallelism import ParallelismConfig

__all__ = ["ModelWorkload", "WORKLOADS", "register_workload", "get_workload"]


@dataclass(frozen=True)
class ModelWorkload:
    """A DNN training workload with fixed compute time and comm operations."""

    name: str
    parallelism: ParallelismConfig
    compute_time: float                       # seconds per iteration
    comm_ops: tuple                           # tuple[CommOp, ...]
    description: str = ""
    #: Per-topology iteration times published in Section V-B (seconds),
    #: recorded for EXPERIMENTS.md comparison; keys are topology labels.
    paper_reference: Dict[str, float] = field(default_factory=dict)

    @property
    def num_accelerators(self) -> int:
        return self.parallelism.num_accelerators

    def iteration_time(self, profile: NetworkProfile) -> float:
        """End-to-end iteration time on the given network profile."""
        return _iteration_time(self.compute_time, self.comm_ops, profile)

    def communication_overhead(self, profile: NetworkProfile) -> float:
        """Exposed-communication share of the iteration (0 = fully hidden)."""
        total = self.iteration_time(profile)
        return (total - self.compute_time) / total if total > 0 else 0.0

    def total_comm_volume(self) -> float:
        """Total per-accelerator communication volume per iteration (bytes)."""
        return sum(op.volume * op.count for op in self.comm_ops)


WORKLOADS: Dict[str, Callable[..., ModelWorkload]] = {}


def register_workload(name: str):
    """Decorator registering a workload factory under ``name``."""

    def decorator(fn: Callable[..., ModelWorkload]):
        WORKLOADS[name] = fn
        return fn

    return decorator


def get_workload(name: str, **kwargs) -> ModelWorkload:
    """Instantiate a registered workload by name."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; available: {sorted(WORKLOADS)}") from None
    return factory(**kwargs)
