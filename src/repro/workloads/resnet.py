"""ResNet-152 data-parallel training workload (Section V-B2).

The standard ImageNet ResNet has small operators that do not warrant model
parallelism, so the paper uses pure data parallelism with D in {256, 512,
1024}, a global minibatch of 32,768 and FP32 gradients of the 60.2M
parameters.  The gradients are bucketed into ten equal groups and reduced
with nonblocking allreduces that overlap the backward pass; only the last
bucket's reduction is exposed at the end of the iteration.

Compute time on 1,024 A100s is 108 ms per iteration (paper measurement).
"""

from __future__ import annotations

from .dnn import ModelWorkload, register_workload
from .overlap import CommOp
from .parallelism import ParallelismConfig

__all__ = ["resnet152"]

#: trainable parameters of ResNet-152
RESNET152_PARAMETERS = 60.2e6
WORD_SIZE = 4.0
GRADIENT_BUCKETS = 10
#: compute time per iteration on D accelerators (paper: 108 ms at D=1024;
#: smaller D processes proportionally more examples per accelerator)
COMPUTE_TIME_1024 = 0.108
MINIBATCH = 32_768


@register_workload("resnet152")
def resnet152(data_parallelism: int = 1024) -> ModelWorkload:
    """ResNet-152 with pure data parallelism on ``data_parallelism`` GPUs."""
    if data_parallelism < 2:
        raise ValueError("data parallelism must be at least 2")
    parallelism = ParallelismConfig(data=data_parallelism)
    gradient_bytes = WORD_SIZE * RESNET152_PARAMETERS
    compute = COMPUTE_TIME_1024 * 1024 / data_parallelism
    ops = (
        # Nine of the ten bucketed nonblocking allreduces overlap the
        # backward pass completely; the last bucket is exposed.
        CommOp(
            kind="allreduce",
            volume=gradient_bytes * (GRADIENT_BUCKETS - 1) / GRADIENT_BUCKETS,
            group=data_parallelism,
            overlap=1.0,
        ),
        CommOp(
            kind="allreduce",
            volume=gradient_bytes / GRADIENT_BUCKETS,
            group=data_parallelism,
            overlap=0.0,
        ),
    )
    return ModelWorkload(
        name=f"ResNet-152 (D={data_parallelism})",
        parallelism=parallelism,
        compute_time=compute,
        comm_ops=ops,
        description="data-parallel ResNet-152, minibatch 32768, FP32 gradients",
        paper_reference={
            "nonblocking fat tree": 0.1097,
            "Hx2Mesh": 0.1101,
            "Hx4Mesh": 0.1101,
            "2D torus": 0.1101,
        },
    )
