"""CosmoFlow hybrid data/operator-parallel workload (Section V-B3).

CosmoFlow is a 3D convolutional network with very large input samples
(128^3 x 4 voxels), so the paper parallelises each sample over O = 4
accelerators (spatial operator parallelism with halo exchanges) and uses
D = 256 data parallelism, for 1,024 accelerators total.  The 8.9M trainable
parameters are reduced with an overlapped allreduce; the convolutional
layers exchange halo regions with their spatial neighbours and the
fully-connected layers allgather their inputs.

Compute time per iteration is 44.3 ms (A100 measurement from the paper);
communication is almost fully overlapped, leaving <2% overhead on most
topologies and 3-5% on Hx4Mesh and the torus.
"""

from __future__ import annotations

from .dnn import ModelWorkload, register_workload
from .overlap import CommOp
from .parallelism import ParallelismConfig

__all__ = ["cosmoflow"]

COSMOFLOW_PARAMETERS = 8.9e6
WORD_SIZE = 4.0
COMPUTE_TIME = 0.0443
#: per-accelerator halo volume per convolutional layer (bytes): one face of
#: the local 128x128x64 block with 4 channels in FP32, local batch 32.
HALO_BYTES_PER_LAYER = 128 * 128 * 4 * WORD_SIZE * 2
NUM_CONV_LAYERS = 7
NUM_FC_LAYERS = 3
FC_ALLGATHER_BYTES = 2.0e6


@register_workload("cosmoflow")
def cosmoflow(data_parallelism: int = 256, operator_parallelism: int = 4) -> ModelWorkload:
    """CosmoFlow with D x O hybrid parallelism (default 256 x 4)."""
    parallelism = ParallelismConfig(data=data_parallelism, operator=operator_parallelism)
    gradient_bytes = WORD_SIZE * COSMOFLOW_PARAMETERS / operator_parallelism
    ops = (
        # Gradient allreduce across the data dimension, overlapped per layer.
        CommOp(kind="allreduce", volume=gradient_bytes, group=data_parallelism, overlap=0.9),
        # Halo exchanges with spatial neighbours in forward and backward pass.
        CommOp(
            kind="p2p",
            volume=HALO_BYTES_PER_LAYER,
            group=operator_parallelism,
            count=2 * NUM_CONV_LAYERS,
            overlap=0.85,
        ),
        # Fully-connected layers allgather their distributed inputs.
        CommOp(
            kind="allgather",
            volume=FC_ALLGATHER_BYTES,
            group=operator_parallelism,
            count=2 * NUM_FC_LAYERS,
            overlap=0.8,
        ),
    )
    return ModelWorkload(
        name=f"CosmoFlow (D={data_parallelism}, O={operator_parallelism})",
        parallelism=parallelism,
        compute_time=COMPUTE_TIME,
        comm_ops=ops,
        description="hybrid data/operator-parallel CosmoFlow, minibatch 8192",
        paper_reference={
            # expressed as communication overhead in the paper: <2% on all
            # topologies except Hx4Mesh (3.4%) and torus (4.4%)
            "nonblocking fat tree": COMPUTE_TIME * 1.02,
            "Hx2Mesh": COMPUTE_TIME * 1.02,
            "Hx4Mesh": COMPUTE_TIME * 1.034,
            "2D torus": COMPUTE_TIME * 1.044,
        },
    )
