"""GPT-3 pipeline/operator-parallel workloads, dense and MoE (Section V-B5).

GPT-3 (96 transformer layers, 12,288 hidden dimension, 2,048 sequence
length) is the most communication-intensive workload of the paper.  The
configuration follows Megatron-LM: one layer per pipeline stage (P = 96),
four-way tensor parallelism (O = 4), no data parallelism, so 384
accelerators.  Each stage exchanges ~100 MB of activations per example with
its pipeline neighbours and performs two operator allreduces per layer in
both the forward and the backward pass.

The Mixture-of-Experts variant replaces the feed-forward layers with 16
experts and adds two alltoall exchanges per layer in each direction.

Per-iteration compute times (31.8 ms dense, 49.9 ms MoE) are the paper's
A100 measurements.  The exposed (non-overlappable) communication volumes
below are calibrated so that the *nonblocking fat tree* iteration time
matches the paper's published 34.8 ms (dense) / 52.2 ms (MoE); iteration
times on every other topology are then predictions of the model -- see
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from .dnn import ModelWorkload, register_workload
from .overlap import CommOp
from .parallelism import ParallelismConfig

__all__ = ["gpt3", "gpt3_moe"]

NUM_LAYERS = 96
OPERATOR_PARALLELISM = 4
#: activation size per example at a layer boundary (4 * 2048 * 12288 bytes)
ACTIVATION_BYTES = 4 * 2048 * 12288

COMPUTE_TIME_DENSE = 0.0318
COMPUTE_TIME_MOE = 0.0499

#: calibrated exposed communication volumes (bytes per accelerator per
#: iteration) -- pipeline sends that cannot hide behind compute (pipeline
#: fill/drain) and the blocking part of the Megatron allreduces.
EXPOSED_PIPELINE_BYTES = 430e6
EXPOSED_ALLREDUCE_BYTES = 80e6
#: MoE: additional exposed alltoall volume (two alltoalls per layer in each
#: direction over the expert group).
EXPOSED_ALLTOALL_BYTES = 150e6
MOE_EXPERTS = 16


@register_workload("gpt3")
def gpt3(pipeline_parallelism: int = NUM_LAYERS,
         operator_parallelism: int = OPERATOR_PARALLELISM) -> ModelWorkload:
    """Dense GPT-3 with P x O parallelism (default 96 x 4)."""
    parallelism = ParallelismConfig(
        pipeline=pipeline_parallelism, operator=operator_parallelism
    )
    ops = (
        # Pipeline activations/errors that overlap with compute.
        CommOp(kind="p2p", volume=2 * ACTIVATION_BYTES, group=pipeline_parallelism,
               count=2, overlap=1.0),
        # Exposed pipeline traffic (fill/drain of the bidirectional pipeline).
        CommOp(kind="p2p", volume=EXPOSED_PIPELINE_BYTES, group=pipeline_parallelism,
               overlap=0.0),
        # Exposed share of the Megatron tensor-parallel allreduces.
        CommOp(kind="allreduce", volume=EXPOSED_ALLREDUCE_BYTES,
               group=operator_parallelism, overlap=0.0),
    )
    return ModelWorkload(
        name=f"GPT-3 (P={pipeline_parallelism}, O={operator_parallelism})",
        parallelism=parallelism,
        compute_time=COMPUTE_TIME_DENSE,
        comm_ops=ops,
        description="dense GPT-3 with Megatron-style tensor parallelism",
        paper_reference={
            "nonblocking fat tree": 0.0348,
            "fat tree 50% tapered": 0.0364,
            "fat tree 75% tapered": 0.0375,
            "2D torus": 0.0722,
            "2D HyperX": 0.0409,
            "Hx2Mesh": 0.0417,
            "Hx4Mesh": 0.0499,
        },
    )


@register_workload("gpt3_moe")
def gpt3_moe(pipeline_parallelism: int = NUM_LAYERS,
             operator_parallelism: int = OPERATOR_PARALLELISM,
             experts: int = MOE_EXPERTS) -> ModelWorkload:
    """GPT-3 with Mixture-of-Experts feed-forward layers (16 experts)."""
    parallelism = ParallelismConfig(
        pipeline=pipeline_parallelism, operator=operator_parallelism
    )
    ops = (
        CommOp(kind="p2p", volume=2 * ACTIVATION_BYTES, group=pipeline_parallelism,
               count=2, overlap=1.0),
        CommOp(kind="p2p", volume=EXPOSED_PIPELINE_BYTES * 0.45,
               group=pipeline_parallelism, overlap=0.0),
        CommOp(kind="allreduce", volume=EXPOSED_ALLREDUCE_BYTES * 0.75,
               group=operator_parallelism, overlap=0.0),
        # Expert-parallel alltoalls (2 per layer, forward and backward).
        CommOp(kind="alltoall", volume=EXPOSED_ALLTOALL_BYTES, group=experts,
               overlap=0.0),
    )
    return ModelWorkload(
        name=f"GPT-3 MoE (P={pipeline_parallelism}, O={operator_parallelism}, "
             f"E={experts})",
        parallelism=parallelism,
        compute_time=COMPUTE_TIME_MOE,
        comm_ops=ops,
        description="GPT-3 with 16-expert MoE feed-forward layers",
        paper_reference={
            "nonblocking fat tree": 0.0522,
            "fat tree 75% tapered": 0.0529,
            "2D torus": 0.0738,
            "2D HyperX": 0.0539,
            "Hx2Mesh": 0.0583,
            "Hx4Mesh": 0.0633,
        },
    )
