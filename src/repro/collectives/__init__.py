"""Collective communication algorithms (Section V-A2, Appendix D).

Ring, dual-ring and 2D-torus allreduce, balanced-shift alltoall, the
edge-disjoint Hamiltonian cycle construction they are mapped with, and the
alpha-beta runtime models used by the figures and the DNN workload models.
"""

from .alltoall import alltoall_time, balanced_shift_schedule
from .cost_models import (
    ALGORITHMS,
    AllreduceModel,
    allreduce_bus_bandwidth,
    allreduce_time,
    bidirectional_ring_time,
    dual_rings_time,
    ring_allreduce_time,
    torus2d_allreduce_time,
    tree_allreduce_time,
)
from .hamiltonian import (
    are_edge_disjoint,
    boustrophedon_cycle,
    cycle_edges,
    disjoint_hamiltonian_cycles,
    is_hamiltonian_cycle,
    supports_disjoint_cycles,
)
from .ring import (
    dual_ring_steady_flows,
    grid_ring_orders,
    natural_ring_order,
    ring_allreduce_schedule,
    ring_orders_for,
    ring_steady_flows,
)
from .schedule import CommSchedule, Transfer
from .torus2d import Torus2DAllreduce

__all__ = [
    "CommSchedule",
    "Transfer",
    "balanced_shift_schedule",
    "alltoall_time",
    "AllreduceModel",
    "ALGORITHMS",
    "allreduce_time",
    "allreduce_bus_bandwidth",
    "tree_allreduce_time",
    "ring_allreduce_time",
    "bidirectional_ring_time",
    "dual_rings_time",
    "torus2d_allreduce_time",
    "disjoint_hamiltonian_cycles",
    "supports_disjoint_cycles",
    "is_hamiltonian_cycle",
    "are_edge_disjoint",
    "cycle_edges",
    "boustrophedon_cycle",
    "natural_ring_order",
    "grid_ring_orders",
    "ring_orders_for",
    "ring_steady_flows",
    "dual_ring_steady_flows",
    "ring_allreduce_schedule",
    "Torus2DAllreduce",
]
