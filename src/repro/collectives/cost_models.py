"""Alpha-beta runtime models of the allreduce algorithms (Section V-A2).

The paper analyses four allreduce algorithm families for large data:

* simple (binomial) trees        -- ``T ~ log2(p) * (alpha + S*beta)``
* pipelined ring (1 NIC)          -- ``T ~ 2*p*alpha + 2*S*beta``
* bidirectional pipelined ring    -- ``T ~ 2*p*alpha +   S*beta``
* two bidirectional rings mapped
  on edge-disjoint Hamiltonian
  cycles (4 NICs per plane)       -- ``T ~ 2*p*alpha + S/2*beta``
* 2D-torus reduce-scatter /
  allreduce / allgather           -- ``T ~ 4*sqrt(p)*alpha + S*beta*(1+2*sqrt(p))/(4*sqrt(p))``

``beta`` is the time per byte of a single network interface; a system with
``k`` interfaces injects ``k/beta`` bytes per second.  ``alpha`` is the
per-message latency.  These models drive Figures 13 and 17 and the
message-size sweeps of the benchmarks; the *achievable* per-interface
bandwidth (which replaces ``1/beta`` on congested topologies) comes from the
flow-level simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

__all__ = [
    "AllreduceModel",
    "tree_allreduce_time",
    "ring_allreduce_time",
    "bidirectional_ring_time",
    "dual_rings_time",
    "torus2d_allreduce_time",
    "allreduce_time",
    "allreduce_bus_bandwidth",
    "ALGORITHMS",
]


def tree_allreduce_time(p: int, size: float, alpha: float, beta: float) -> float:
    """Binomial-tree allreduce: each item travels ``log2 p`` times."""
    if p <= 1:
        return 0.0
    stages = math.ceil(math.log2(p))
    return stages * alpha + stages * size * beta


def ring_allreduce_time(p: int, size: float, alpha: float, beta: float) -> float:
    """Unidirectional pipelined ring (reduce-scatter + allgather)."""
    if p <= 1:
        return 0.0
    return 2 * p * alpha + 2 * size * beta


def bidirectional_ring_time(p: int, size: float, alpha: float, beta: float) -> float:
    """Bidirectional pipelined ring using two NICs (half the data each way)."""
    if p <= 1:
        return 0.0
    return 2 * p * alpha + size * beta


def dual_rings_time(p: int, size: float, alpha: float, beta: float) -> float:
    """Two bidirectional rings on edge-disjoint Hamiltonian cycles (4 NICs)."""
    if p <= 1:
        return 0.0
    return 2 * p * alpha + size * beta / 2


def torus2d_allreduce_time(p: int, size: float, alpha: float, beta: float) -> float:
    """2D-torus allreduce: row reduce-scatter, column allreduce, row allgather.

    Two transposed instances run concurrently on half of the data each, using
    all four interfaces (Section V-A2c).  The latency term is
    ``4*sqrt(p)*alpha``; the bandwidth term is ``S*beta*(1+2*sqrt(p))/(2*sqrt(p))``,
    i.e. asymptotically twice the dual-ring algorithm's ``S*beta/2`` -- the
    paper describes the torus algorithm as "2x less bandwidth-efficient" than
    the rings, trading bandwidth for the O(sqrt(p)) latency (Figure 13).
    """
    if p <= 1:
        return 0.0
    side = math.sqrt(p)
    return 4 * side * alpha + size * beta * (1 + 2 * side) / (2 * side)


#: Algorithm name -> time model, matching the labels used in Figures 13/17.
ALGORITHMS: Dict[str, Callable[[int, float, float, float], float]] = {
    "tree": tree_allreduce_time,
    "ring": ring_allreduce_time,
    "bidirectional-ring": bidirectional_ring_time,
    "rings": dual_rings_time,
    "torus": torus2d_allreduce_time,
}


def allreduce_time(algorithm: str, p: int, size: float, alpha: float, beta: float) -> float:
    """Completion time of ``algorithm`` on ``p`` ranks for ``size`` bytes."""
    try:
        model = ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(f"unknown allreduce algorithm {algorithm!r}; "
                         f"available: {sorted(ALGORITHMS)}") from None
    return model(p, size, alpha, beta)


def allreduce_bus_bandwidth(algorithm: str, p: int, size: float, alpha: float, beta: float) -> float:
    """Bus bandwidth ``S / T`` in bytes per second (the paper's y axis)."""
    t = allreduce_time(algorithm, p, size, alpha, beta)
    return size / t if t > 0 else float("inf")


@dataclass(frozen=True)
class AllreduceModel:
    """Bound algorithm + network parameters, convenient for sweeps."""

    algorithm: str
    p: int
    alpha: float
    beta: float

    def time(self, size: float) -> float:
        return allreduce_time(self.algorithm, self.p, size, self.alpha, self.beta)

    def bus_bandwidth(self, size: float) -> float:
        return allreduce_bus_bandwidth(self.algorithm, self.p, size, self.alpha, self.beta)
