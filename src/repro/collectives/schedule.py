"""Communication schedules: phases of point-to-point transfers.

A :class:`CommSchedule` is the common currency between the collective
algorithms, the DNN workload models and the simulators: a list of *phases*,
each a list of point-to-point :class:`Transfer` objects that are executed
concurrently; phases are separated by a synchronisation point (the next
phase starts when the slowest transfer of the previous one finished, which
is how the pipelined collectives of Section V-A2 behave round by round).

Evaluation goes through the pluggable network backends of
:mod:`repro.sim.backend`:

* :meth:`CommSchedule.time` -- per-phase timing on any
  :class:`~repro.sim.backend.NetworkModel` (or backend name), so the same
  schedule can be timed congestion-free (``"analytic"``), with max-min fair
  contention (``"flow"``) or packet-by-packet (``"packet"``);
* :meth:`CommSchedule.time_alphabeta` -- closed-form congestion-free
  alpha-beta timing, useful for quick estimates and for unit tests;
* :meth:`CommSchedule.time_flowsim` -- backward-compatible wrapper timing
  the schedule on a :class:`~repro.sim.flowsim.FlowSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..sim.backend import FlowBackend, NetworkModel, get_backend
from ..sim.flowsim import FlowSimulator
from ..sim.traffic import Flow
from ..topology.base import Topology

__all__ = ["Transfer", "CommSchedule"]


@dataclass(frozen=True)
class Transfer:
    """One point-to-point transfer of ``size`` bytes between two ranks."""

    src: int
    dst: int
    size: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("transfer endpoints must differ")
        if self.size < 0:
            raise ValueError("transfer size must be non-negative")


@dataclass
class CommSchedule:
    """An ordered list of communication phases."""

    phases: List[List[Transfer]] = field(default_factory=list)

    def add_phase(self, transfers: Iterable[Transfer]) -> None:
        self.phases.append(list(transfers))

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    def total_bytes(self) -> float:
        """Total bytes sent across all phases and all ranks."""
        return sum(t.size for phase in self.phases for t in phase)

    def max_bytes_per_rank(self) -> float:
        """Largest total send volume of any single rank."""
        per_rank: Dict[int, float] = {}
        for phase in self.phases:
            for t in phase:
                per_rank[t.src] = per_rank.get(t.src, 0.0) + t.size
        return max(per_rank.values(), default=0.0)

    # ------------------------------------------------------------- evaluation
    def time_alphabeta(self, alpha: float, beta: float) -> float:
        """Congestion-free timing: per phase, ``alpha + max_transfer * beta``.

        ``beta`` is seconds per byte of one NIC; concurrent transfers from
        the same rank within a phase share that NIC, so the per-rank send
        volume (not the single largest transfer) bounds the phase.
        """
        total = 0.0
        for phase in self.phases:
            if not phase:
                continue
            per_rank: Dict[int, float] = {}
            for t in phase:
                per_rank[t.src] = per_rank.get(t.src, 0.0) + t.size
                per_rank.setdefault(t.dst, 0.0)
            busiest = max(per_rank.values(), default=0.0)
            total += alpha + busiest * beta
        return total

    def time(
        self,
        backend: Union[str, NetworkModel],
        alpha: float,
        *,
        topo: Optional[Topology] = None,
        bytes_per_unit: float = 1.0,
        exact: bool = False,
        **knobs,
    ) -> float:
        """Timing with per-phase rates from a network-model backend.

        ``backend`` is a :class:`~repro.sim.backend.NetworkModel` instance
        or a registered backend name (``"analytic"``, ``"flow"``,
        ``"packet"``); a name requires ``topo`` (fidelity ``knobs`` such as
        ``max_paths`` or a routing ``policy`` name — ``"minimal"``,
        ``"ecmp"``, ``"valiant"``, ``"ugal"`` — are forwarded to the
        constructor).  ``bytes_per_unit`` converts the
        backend's normalised bandwidth units (1.0 == one 400 Gb/s port ==
        50 GB/s) into bytes per second.  With ``exact`` the max-min solver
        is used per phase; the default uses the fast symmetric-rate bound,
        which is exact for the ring and torus schedules where all transfers
        of a phase carry the same volume.
        """
        model = get_backend(backend, topo, **knobs)
        total = 0.0
        for phase in self.phases:
            flows = [Flow(t.src, t.dst, demand=t.size) for t in phase if t.size > 0]
            if not flows:
                continue
            total += alpha + model.phase_duration(
                flows, bytes_per_unit=bytes_per_unit, exact=exact
            )
        return total

    def time_flowsim(
        self,
        sim: FlowSimulator,
        alpha: float,
        *,
        bytes_per_unit: float = 1.0,
        exact: bool = False,
    ) -> float:
        """Timing on an existing flow simulator (wraps :meth:`time`)."""
        return self.time(
            FlowBackend(sim=sim), alpha, bytes_per_unit=bytes_per_unit, exact=exact
        )
