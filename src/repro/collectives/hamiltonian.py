"""Edge-disjoint Hamiltonian cycles on 2D tori (Appendix D of the paper).

The dual-ring allreduce of Section V-A2 maps two bidirectional pipelined
rings onto two *edge-disjoint* Hamiltonian cycles of the accelerator torus,
so that all four directional ports of every accelerator are used
concurrently.  The construction follows Bae, AlBdaiwi and Bose ("Edge-disjoint
Hamiltonian cycles in two-dimensional torus", 2004), which applies to an
``r`` x ``c`` torus whenever ``r`` is a multiple of ``c`` and
``gcd(r, c - 1) == 1`` -- this covers all the (square) HxMesh accelerator
grids used in the paper (4x4, 8x4, 9x3, 16x8, 32x32, 128x128, ...).

Cycles are returned as ordered lists of ``(row, col)`` coordinates; helper
functions verify Hamiltonicity and edge-disjointness (also exercised by the
property-based tests).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Set, Tuple

__all__ = [
    "supports_disjoint_cycles",
    "disjoint_hamiltonian_cycles",
    "cycle_edges",
    "is_hamiltonian_cycle",
    "are_edge_disjoint",
    "boustrophedon_cycle",
]

Coord = Tuple[int, int]


def supports_disjoint_cycles(rows: int, cols: int) -> bool:
    """True when the Bae et al. construction applies to an r x c torus.

    Tori with a dimension of size 2 are excluded: their wrap link coincides
    with the direct link, so the graph (as modelled here, without parallel
    edges) cannot host two edge-disjoint Hamiltonian cycles.
    """
    if rows < 3 or cols < 3:
        return False
    return rows % cols == 0 and math.gcd(rows, cols - 1) == 1


def _red_position(index: int, rows: int, cols: int) -> Coord:
    """Position of step ``index`` on the *red* cycle.

    The red cycle walks each row left to right with a per-row column offset
    of ``(rows - 1) * row``; consecutive steps within a row use horizontal
    links, row transitions use a vertical link (the offset is chosen so the
    column is unchanged across the transition because ``cols`` divides
    ``rows``).
    """
    x1, x0 = divmod(index, cols)
    return (x1, (x0 + (rows - 1) * x1) % cols)


def _green_position(index: int, rows: int, cols: int) -> Coord:
    """Position of step ``index`` on the *green* cycle (transposed walk)."""
    x1, x0 = divmod(index, cols)
    return ((x0 + (cols - 1) * x1) % rows, x1 % cols)


def disjoint_hamiltonian_cycles(rows: int, cols: int) -> Tuple[List[Coord], List[Coord]]:
    """Two edge-disjoint Hamiltonian cycles of the ``rows`` x ``cols`` torus.

    Raises :class:`ValueError` when the construction's applicability
    condition does not hold.  The returned cycles are validated before being
    returned, so a successful call is guaranteed to be correct.
    """
    if not supports_disjoint_cycles(rows, cols):
        raise ValueError(
            f"no edge-disjoint Hamiltonian cycle construction for a {rows}x{cols} "
            "torus (need rows % cols == 0 and gcd(rows, cols-1) == 1)"
        )
    n = rows * cols
    red = [_red_position(i, rows, cols) for i in range(n)]
    green = [_green_position(i, rows, cols) for i in range(n)]
    for name, cycle in (("red", red), ("green", green)):
        if not is_hamiltonian_cycle(cycle, rows, cols):
            raise ValueError(f"internal error: {name} cycle is not Hamiltonian "
                             f"for {rows}x{cols}")
    if not are_edge_disjoint(red, green):
        raise ValueError(f"internal error: cycles share an edge for {rows}x{cols}")
    return red, green


def cycle_edges(cycle: Sequence[Coord]) -> Set[Tuple[Coord, Coord]]:
    """Undirected edge set of a cyclic node sequence (canonically ordered)."""
    edges: Set[Tuple[Coord, Coord]] = set()
    n = len(cycle)
    for i in range(n):
        a, b = cycle[i], cycle[(i + 1) % n]
        edges.add((a, b) if a <= b else (b, a))
    return edges


def _torus_adjacent(a: Coord, b: Coord, rows: int, cols: int) -> bool:
    dr = (a[0] - b[0]) % rows
    dc = (a[1] - b[1]) % cols
    row_step = dr in (1, rows - 1) and dc == 0
    col_step = dc in (1, cols - 1) and dr == 0
    return row_step or col_step


def is_hamiltonian_cycle(cycle: Sequence[Coord], rows: int, cols: int) -> bool:
    """Check that ``cycle`` visits every torus node once via torus edges."""
    n = rows * cols
    if len(cycle) != n or len(set(cycle)) != n:
        return False
    if any(not (0 <= r < rows and 0 <= c < cols) for r, c in cycle):
        return False
    return all(
        _torus_adjacent(cycle[i], cycle[(i + 1) % n], rows, cols) for i in range(n)
    )


def are_edge_disjoint(cycle_a: Sequence[Coord], cycle_b: Sequence[Coord]) -> bool:
    """True when the two cycles share no undirected edge."""
    return not (cycle_edges(cycle_a) & cycle_edges(cycle_b))


def boustrophedon_cycle(rows: int, cols: int) -> List[Coord]:
    """A single Hamiltonian cycle for any torus with an even number of rows
    or columns (snake order plus a return column).

    Used as the fallback ring embedding when the edge-disjoint construction
    does not apply (e.g. non-square grids with unsuitable gcd).
    """
    if rows * cols < 2:
        raise ValueError("torus too small")
    if rows % 2 == 0:
        cycle: List[Coord] = []
        for r in range(rows):
            cols_order = range(1, cols) if r % 2 == 0 else range(cols - 1, 0, -1)
            for c in cols_order:
                cycle.append((r, c))
        for r in range(rows - 1, -1, -1):
            cycle.append((r, 0))
        return cycle
    if cols % 2 == 0:
        transposed = boustrophedon_cycle(cols, rows)
        return [(r, c) for c, r in transposed]
    if rows % cols == 0:
        # Odd x odd but rows a multiple of cols: reuse the red diagonal walk
        # of the edge-disjoint construction, which is a valid single cycle.
        return [_red_position(i, rows, cols) for i in range(rows * cols)]
    if cols % rows == 0:
        transposed = boustrophedon_cycle(cols, rows)
        return [(r, c) for c, r in transposed]
    raise ValueError(
        f"no Hamiltonian-cycle construction implemented for a {rows}x{cols} torus "
        "(both dimensions odd and neither divides the other)"
    )
