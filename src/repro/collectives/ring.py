"""Pipelined ring allreduce algorithms and their mapping onto topologies.

Section V-A2 of the paper builds large-message allreduce from pipelined
rings: a unidirectional ring, a bidirectional ring (two NICs), and two
bidirectional rings mapped onto edge-disjoint Hamiltonian cycles of the
accelerator torus (four NICs, the "rings" algorithm of Figures 13/17).

This module produces

* *ring orders*: orderings of accelerator ranks such that consecutive ranks
  are physical neighbours on the target topology (Hamiltonian cycles for
  HammingMesh and torus, the natural index order for switched topologies);
* *steady-state flow sets* used by the flow-level simulator to measure the
  sustainable neighbour-exchange bandwidth of an embedding; and
* full :class:`~repro.collectives.schedule.CommSchedule` objects with the
  2*(p-1) rounds of the reduce-scatter + allgather pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.traffic import Flow
from ..topology.base import Topology, TopologyError
from .hamiltonian import (
    boustrophedon_cycle,
    disjoint_hamiltonian_cycles,
    supports_disjoint_cycles,
)
from .schedule import CommSchedule, Transfer

__all__ = [
    "natural_ring_order",
    "grid_ring_orders",
    "ring_orders_for",
    "ring_steady_flows",
    "dual_ring_steady_flows",
    "ring_allreduce_schedule",
]


# ----------------------------------------------------------------- embeddings
def natural_ring_order(num_ranks: int) -> List[int]:
    """Ring in rank order (used on fat tree / Dragonfly / HyperX, where any
    permutation is equivalent thanks to the switched full-bandwidth core)."""
    return list(range(num_ranks))


def _accelerator_grid(topo: Topology) -> Tuple[int, int, Dict[Tuple[int, int], int]]:
    """(rows, cols, coord -> rank) of the accelerator grid of a HammingMesh
    or torus topology, in global accelerator coordinates."""
    family = topo.meta.get("family")
    rank_of_node = topo.accelerator_index()
    grid: Dict[Tuple[int, int], int] = {}
    if family == "hammingmesh":
        params = topo.meta["params"]
        rows, cols = params.b * params.y, params.a * params.x
        for node, (gr, gc, br, bc) in topo.meta["coord_of"].items():
            grid[(gr * params.b + br, gc * params.a + bc)] = rank_of_node[node]
    elif family == "torus":
        rows, cols = topo.meta["rows"], topo.meta["cols"]
        for node, (r, c) in topo.meta["coord_of"].items():
            grid[(r, c)] = rank_of_node[node]
    else:
        raise TopologyError(f"no accelerator grid for family {family!r}")
    return rows, cols, grid


def grid_ring_orders(topo: Topology) -> List[List[int]]:
    """Hamiltonian-cycle ring orders for a grid-structured topology.

    Returns two edge-disjoint cycles when the Bae et al. construction
    applies, otherwise a single boustrophedon cycle.
    """
    rows, cols, grid = _accelerator_grid(topo)
    if supports_disjoint_cycles(rows, cols):
        red, green = disjoint_hamiltonian_cycles(rows, cols)
        return [[grid[c] for c in red], [grid[c] for c in green]]
    if supports_disjoint_cycles(cols, rows):
        red, green = disjoint_hamiltonian_cycles(cols, rows)
        return [[grid[(r, c)] for (c, r) in red], [grid[(r, c)] for (c, r) in green]]
    cycle = boustrophedon_cycle(rows, cols)
    return [[grid[c] for c in cycle]]


def ring_orders_for(topo: Topology) -> List[List[int]]:
    """Ring embedding(s) appropriate for the topology family."""
    family = topo.meta.get("family")
    if family in ("hammingmesh", "torus"):
        return grid_ring_orders(topo)
    return [natural_ring_order(topo.num_accelerators)]


# ------------------------------------------------------------- steady flows
def ring_steady_flows(order: Sequence[int], *, bidirectional: bool = True) -> List[Flow]:
    """Per-round neighbour flows of a pipelined ring over ``order``."""
    p = len(order)
    flows: List[Flow] = []
    for i in range(p):
        nxt = order[(i + 1) % p]
        flows.append(Flow(order[i], nxt))
        if bidirectional:
            flows.append(Flow(nxt, order[i]))
    return flows


def dual_ring_steady_flows(orders: Sequence[Sequence[int]]) -> List[Flow]:
    """Concurrent steady-state flows of all ring embeddings (both directions).

    For two edge-disjoint Hamiltonian cycles this exercises all four
    directional ports of every accelerator simultaneously, which is exactly
    the load of the "rings" allreduce.
    """
    flows: List[Flow] = []
    for order in orders:
        flows.extend(ring_steady_flows(order, bidirectional=True))
    return flows


# ------------------------------------------------------------------ schedule
def ring_allreduce_schedule(
    order: Sequence[int],
    size: float,
    *,
    bidirectional: bool = True,
) -> CommSchedule:
    """Full reduce-scatter + allgather pipeline over a single ring.

    Data of ``size`` bytes is split into ``p`` segments; each of the
    ``2 * (p - 1)`` rounds moves one segment between every pair of ring
    neighbours (in both directions for the bidirectional variant, with half
    the volume each way).
    """
    p = len(order)
    if p < 2:
        return CommSchedule()
    segment = size / p
    if bidirectional:
        segment /= 2.0
    schedule = CommSchedule()
    for _ in range(2 * (p - 1)):
        phase: List[Transfer] = []
        for i in range(p):
            nxt = order[(i + 1) % p]
            if segment > 0:
                phase.append(Transfer(order[i], nxt, segment))
                if bidirectional:
                    phase.append(Transfer(nxt, order[i], segment))
        schedule.add_phase(phase)
    return schedule
