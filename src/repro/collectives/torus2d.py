"""2D-torus allreduce (Section V-A2c of the paper).

For large HxMeshes and moderate message sizes the latency term of the ring
algorithms (2*p*alpha) dominates; the paper therefore proposes a
two-dimensional algorithm with O(sqrt(p)) latency:

1. reduce-scatter among the processes of each grid *row*,
2. allreduce (ring) among the processes of each grid *column* on the
   scattered chunk,
3. allgather among the processes of each row.

Two transposed instances run concurrently on half of the data each so that
all four NICs are busy.  This module generates the corresponding
:class:`~repro.collectives.schedule.CommSchedule` and the steady-state flow
sets used for bandwidth analysis.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..sim.traffic import Flow
from ..topology.base import Topology, TopologyError
from .ring import _accelerator_grid
from .schedule import CommSchedule, Transfer

__all__ = ["Torus2DAllreduce"]


class Torus2DAllreduce:
    """2D reduce-scatter / allreduce / allgather over a rank grid.

    Parameters
    ----------
    grid:
        ``grid[(row, col)] -> rank`` mapping; every grid position must be
        filled (rectangular job).
    rows, cols:
        Grid dimensions.
    """

    def __init__(self, rows: int, cols: int, grid: Dict[Tuple[int, int], int]):
        if rows < 2 or cols < 2:
            raise ValueError("the 2D algorithm needs at least a 2x2 rank grid")
        if len(grid) != rows * cols:
            raise ValueError("grid must cover every (row, col) position")
        self.rows = rows
        self.cols = cols
        self.grid = dict(grid)

    @classmethod
    def for_topology(cls, topo: Topology) -> "Torus2DAllreduce":
        """Build the rank grid from a HammingMesh or torus topology."""
        rows, cols, grid = _accelerator_grid(topo)
        return cls(rows, cols, grid)

    @classmethod
    def square(cls, p: int) -> "Torus2DAllreduce":
        """A square sqrt(p) x sqrt(p) grid over ranks 0..p-1 (row-major)."""
        side = int(round(p ** 0.5))
        if side * side != p:
            raise ValueError(f"{p} ranks do not form a square grid")
        grid = {(r, c): r * side + c for r in range(side) for c in range(side)}
        return cls(side, side, grid)

    # ------------------------------------------------------------------ flows
    def steady_flows(self) -> List[Flow]:
        """Concurrent neighbour flows of the row and column ring phases.

        Because the two transposed instances overlap a row-ring phase of one
        instance with a column-ring phase of the other, all four directional
        ports are used; the steady-state load is one flow per direction per
        accelerator, the same port usage as the dual-ring algorithm.
        """
        flows: List[Flow] = []
        for r in range(self.rows):
            for c in range(self.cols):
                me = self.grid[(r, c)]
                flows.append(Flow(me, self.grid[(r, (c + 1) % self.cols)]))
                flows.append(Flow(me, self.grid[(r, (c - 1) % self.cols)]))
                flows.append(Flow(me, self.grid[((r + 1) % self.rows, c)]))
                flows.append(Flow(me, self.grid[((r - 1) % self.rows, c)]))
        return flows

    # --------------------------------------------------------------- schedule
    def _ring_phases(
        self,
        groups: Sequence[Sequence[int]],
        rounds: int,
        segment: float,
    ) -> List[List[Transfer]]:
        """``rounds`` ring rounds executed concurrently in every group."""
        phases: List[List[Transfer]] = []
        for _ in range(rounds):
            phase: List[Transfer] = []
            for group in groups:
                n = len(group)
                for i in range(n):
                    if segment > 0:
                        phase.append(Transfer(group[i], group[(i + 1) % n], segment))
            phases.append(phase)
        return phases

    def schedule(self, size: float) -> CommSchedule:
        """Full schedule of one instance of the 2D algorithm on ``size`` bytes.

        (The concurrent transposed instance is accounted for by halving the
        per-instance volume at the call site, as in the paper's model.)
        """
        rows_groups = [
            [self.grid[(r, c)] for c in range(self.cols)] for r in range(self.rows)
        ]
        cols_groups = [
            [self.grid[(r, c)] for r in range(self.rows)] for c in range(self.cols)
        ]
        schedule = CommSchedule()
        # 1. reduce-scatter within rows: cols-1 rounds of size/cols segments.
        for phase in self._ring_phases(rows_groups, self.cols - 1, size / self.cols):
            schedule.add_phase(phase)
        # 2. ring allreduce within columns on the scattered chunk
        #    (2*(rows-1) rounds of (size/cols)/rows segments).
        chunk = size / self.cols
        for phase in self._ring_phases(cols_groups, 2 * (self.rows - 1), chunk / self.rows):
            schedule.add_phase(phase)
        # 3. allgather within rows: cols-1 rounds of size/cols segments.
        for phase in self._ring_phases(rows_groups, self.cols - 1, size / self.cols):
            schedule.add_phase(phase)
        return schedule
