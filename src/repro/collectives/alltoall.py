"""Balanced-shift alltoall (Section V-A1a of the paper).

Every process sends a distinct block to every other process; the
implementation performs ``p - 1`` iterations where, in iteration ``i``,
process ``j`` sends its block to process ``(j + i) mod p``.  The schedule
generator below is used by the DLRM and GPT-3-MoE workload models and by the
Figure 11 benchmark; the achievable large-message bandwidth itself comes
from :meth:`repro.sim.flowsim.FlowSimulator.alltoall_bandwidth`.
"""

from __future__ import annotations

from typing import List

from .schedule import CommSchedule, Transfer

__all__ = ["balanced_shift_schedule", "alltoall_time"]


def balanced_shift_schedule(p: int, total_size: float) -> CommSchedule:
    """Schedule of a full alltoall of ``total_size`` bytes per process.

    Each process sends ``total_size / (p - 1)`` bytes to every peer, one peer
    per phase, following the balanced shift pattern.
    """
    if p < 2:
        return CommSchedule()
    block = total_size / (p - 1)
    schedule = CommSchedule()
    for shift in range(1, p):
        phase: List[Transfer] = []
        for j in range(p):
            if block > 0:
                phase.append(Transfer(j, (j + shift) % p, block))
        schedule.add_phase(phase)
    return schedule


def alltoall_time(p: int, total_size: float, alpha: float, beta_effective: float) -> float:
    """Alpha-beta completion time of the balanced-shift alltoall.

    ``beta_effective`` is the reciprocal of the *achievable* per-process
    alltoall bandwidth on the target topology (seconds per byte), which
    already accounts for the topology's global-bandwidth limitations.
    """
    if p < 2 or total_size <= 0:
        return 0.0
    return (p - 1) * alpha + total_size * beta_effective
