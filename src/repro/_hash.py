"""Small deterministic integer mixing utilities.

Path providers use hash-based rotation to spread capped multipath
enumerations over parallel links/switches.  A proper avalanche mix is
required: simple multiplicative hashes leak low-bit structure (e.g. all even
keys selecting the same parallel link), which shows up as artificial
hot-spots in the flow-level simulator.
"""

from __future__ import annotations

__all__ = ["mix64"]

_MASK = (1 << 64) - 1


def mix64(key: int) -> int:
    """SplitMix64 finaliser: a cheap, well-mixed 64-bit integer hash."""
    z = (key + 0x9E3779B97F4A7C15) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return (z ^ (z >> 31)) & _MASK
