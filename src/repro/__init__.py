"""HammingMesh reproduction: topology, simulation, allocation and workloads.

This package reproduces *HammingMesh: A Network Topology for Large-Scale
Deep Learning* (Hoefler et al., SC'22) as a self-contained Python library:

* :mod:`repro.core` -- the HammingMesh topology family, its routing and
  virtual sub-meshes (the paper's primary contribution);
* :mod:`repro.topology` -- the baseline topologies it is compared against
  (fat tree, Dragonfly, 2D HyperX, 2D torus) on a common graph model;
* :mod:`repro.sim` -- flow-level and packet-level network simulators;
* :mod:`repro.collectives` -- ring / dual-ring / 2D-torus allreduce,
  alltoall, and edge-disjoint Hamiltonian cycle mapping;
* :mod:`repro.cost` -- the capital-cost model of Table II;
* :mod:`repro.allocation` -- greedy job allocation, failures, utilization;
* :mod:`repro.cluster` -- event-driven cluster lifetime simulation (job
  arrivals, scheduling policies, board failure/repair processes);
* :mod:`repro.workloads` -- DNN communication workload models (ResNet-152,
  CosmoFlow, GPT-3, GPT-3 MoE, DLRM);
* :mod:`repro.analysis` -- the experiment harness regenerating Table II and
  every evaluation figure;
* :mod:`repro.obs` -- unified metrics/tracing layer across the simulators,
  the experiment engine, and the cluster twin (off by default; enable with
  ``repro.obs.enable()`` or ``REPRO_OBS=1``).

Quick start::

    from repro.core import build_hammingmesh
    from repro.sim import FlowSimulator

    topo = build_hammingmesh(2, 2, 16, 16)       # 16x16 Hx2Mesh, 1024 accelerators
    sim = FlowSimulator(topo)
    print(sim.alltoall_bandwidth(num_phases=32))  # fraction of injection bandwidth
"""

from . import allocation, analysis, cluster, collectives, core, cost, obs, sim, topology, workloads
from .core import HxMeshParams, HxMeshRouter, build_hammingmesh, hx2mesh, hx4mesh
from .sim import FlowSimulator, NetworkModel, PacketNetwork, get_backend
from .topology import Topology, build_topology

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "core",
    "topology",
    "sim",
    "collectives",
    "cost",
    "allocation",
    "cluster",
    "workloads",
    "analysis",
    "obs",
    "HxMeshParams",
    "HxMeshRouter",
    "build_hammingmesh",
    "hx2mesh",
    "hx4mesh",
    "FlowSimulator",
    "PacketNetwork",
    "NetworkModel",
    "get_backend",
    "Topology",
    "build_topology",
]
