"""Flow-level network simulator: max-min fair bandwidth allocation.

This is the cluster-scale substitute for the paper's SST packet-level
simulations (see DESIGN.md, substitution table).  Traffic is modelled as a
set of flows; every flow is split evenly over its candidate minimal paths
(approximating packet-spraying / adaptive routing) and link bandwidth is
shared max-min fairly between the subflows using the classic progressive
filling algorithm.  For symmetric patterns (alltoall, rings) a faster
bottleneck analysis is provided that assumes all flows progress at the same
rate, which is exact for such patterns.

All rates are in normalised units of one 400 Gb/s port; per-accelerator
injection capacity is 4.0 in every simulated configuration (Section III-D).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import registry as _obs
from ..topology.base import Topology
from .paths import DEFAULT_MAX_PATHS, PathProvider
from .policy import RoutingPolicy, get_policy
from .routing import (
    RouteTable,
    csr_range_indices,
    register_route_cache_client,
    route_table_for,
)
from .traffic import Flow

__all__ = ["FlowAssignment", "FlowSimulator", "PhaseResult"]

_EPS = 1e-9

# flowsim.* instruments (module-bound; the registry resets them in place).
_MAXMIN_SOLVES = _obs.counter("flowsim.maxmin_solves")
_MAXMIN_ROUNDS = _obs.histogram("flowsim.maxmin_rounds")
_FROZEN_PER_ROUND = _obs.histogram("flowsim.frozen_per_round")
_ASSIGNMENTS_BUILT = _obs.counter("flowsim.assignments_built")
_ASSIGNMENT_HITS = _obs.counter("flowsim.assignment_cache_hits")
_BATCH_SIZE = _obs.histogram("flowsim.batch_size")

#: Distinct flow patterns whose :class:`FlowAssignment` is kept per simulator.
#: Collective schedules and the alltoall aggregate re-assign identical flow
#: sets (same endpoints and demands) many times; 64 patterns comfortably
#: cover the phase structure of every schedule in the repository.
_ASSIGNMENT_CACHE_SIZE = 64


@dataclass
class FlowAssignment:
    """Internal representation of a set of flows routed onto the topology.

    ``entry_link[i]`` / ``entry_subflow[i]`` give, for every (subflow, link)
    incidence, the directed link index and the subflow index; ``subflow_flow``
    maps subflows back to the originating flow and ``subflow_weight`` holds
    the share of the flow's demand carried by the subflow (1/k for k paths).

    ``entry_subflow`` is sorted by construction, so the entries of subflow
    ``s`` form a contiguous slice; the incremental max-min solver leans on
    that plus a lazily-built link-to-entries CSR index (both cached here,
    since assignments themselves are cached and reused across solves).
    """

    num_flows: int
    num_subflows: int
    entry_link: np.ndarray
    entry_subflow: np.ndarray
    subflow_flow: np.ndarray
    subflow_weight: np.ndarray
    flow_demand: np.ndarray
    # Lazily-built indexes for the incremental solver (see subflow_offsets /
    # link_index); None until first used.
    _subflow_offsets: Optional[np.ndarray] = None
    _link_entry_offsets: Optional[np.ndarray] = None
    _link_entry_ids: Optional[np.ndarray] = None

    def subflow_offsets(self) -> np.ndarray:
        """Entry-range offsets per subflow: entries of ``s`` are
        ``[offsets[s], offsets[s+1])`` (valid because ``entry_subflow`` is
        sorted)."""
        if self._subflow_offsets is None:
            counts = np.bincount(self.entry_subflow, minlength=self.num_subflows)
            self._subflow_offsets = np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64)
        return self._subflow_offsets

    def link_index(self, num_links: int) -> Tuple[np.ndarray, np.ndarray]:
        """CSR index from links to crossing subflows: the subflows whose
        entries cross link ``l`` are ``subs[offsets[l]:offsets[l+1]]`` (one
        id per crossing entry, in entry order; a subflow crossing twice
        appears twice)."""
        if self._link_entry_offsets is None:
            order = np.argsort(self.entry_link, kind="stable").astype(np.int64)
            counts = np.bincount(self.entry_link, minlength=num_links)
            self._link_entry_offsets = np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64)
            self._link_entry_ids = self.entry_subflow[order]
        return self._link_entry_offsets, self._link_entry_ids


def _gather_ranges(offsets: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(offsets[i], offsets[i+1])`` for every id.

    The shared CSR multi-range gather (:func:`repro.sim.routing.csr_range_indices`),
    used by the incremental solver to collect the entries of a set of
    subflows (or of a set of links) without a Python loop.
    """
    return csr_range_indices(offsets, ids)[0]


def _pair_range_path_ids(first: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated path ids ``[first[i], first[i] + counts[i])`` per pair."""
    total = int(counts.sum())
    ends = np.cumsum(counts)
    offset_within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(first, counts) + offset_within


@dataclass
class PhaseResult:
    """Result of simulating one traffic phase."""

    flow_rates: np.ndarray          # achieved rate per flow (bandwidth units)
    link_utilization: np.ndarray    # fraction of each link's capacity in use
    bottleneck_link: int            # index of the most utilised link

    @property
    def min_rate(self) -> float:
        return float(self.flow_rates.min()) if len(self.flow_rates) else 0.0

    @property
    def mean_rate(self) -> float:
        return float(self.flow_rates.mean()) if len(self.flow_rates) else 0.0


class FlowSimulator:
    """Max-min fair flow-level simulator over a :class:`Topology`.

    Routing state lives in a :class:`~repro.sim.routing.RouteTable` shared
    per ``(topology, policy, max_paths)``: constructing a second simulator on
    the same topology reuses every path already enumerated by the first one.
    Pass ``table`` to share an explicitly-built table, ``provider`` to
    route through a custom provider (which gets a private table), or
    ``policy`` to select a routing policy by name or instance
    (:mod:`repro.sim.policy`; the default reproduces minimal multipath
    routing bit-identically).  ``mem_budget`` (bytes or a ``"4G"``-style
    string; default: ``REPRO_ROUTE_MEM_BUDGET``) bounds the route table's
    resident memory — large topologies switch to sharded route storage,
    with identical results (see :mod:`repro.sim.routing`).
    """

    def __init__(
        self,
        topo: Topology,
        *,
        provider: Optional[PathProvider] = None,
        max_paths: int = DEFAULT_MAX_PATHS,
        table: Optional[RouteTable] = None,
        policy: Union[str, RoutingPolicy, None] = None,
        mem_budget: Union[str, int, float, None] = None,
    ):
        self.topo = topo
        if table is not None:
            if policy is not None and get_policy(policy).cache_key() != table.policy.cache_key():
                raise ValueError(
                    "explicit table was built for a different routing policy"
                )
            self.table = table
        elif provider is not None:
            self.table = RouteTable(topo, max_paths=max_paths, provider=provider, policy=policy)
        elif mem_budget is not None:
            self.table = route_table_for(
                topo, max_paths=max_paths, policy=policy, mem_budget=mem_budget
            )
        else:
            self.table = route_table_for(topo, max_paths=max_paths, policy=policy)
        self.provider = self.table.provider
        self.max_paths = self.table.max_paths
        self.policy = self.table.policy
        self.capacity = topo.link_capacity_array()
        self.ranks = list(topo.accelerators)
        self._rank_nodes = np.asarray(self.ranks, dtype=np.int64)
        self.injection_capacity = float(topo.meta.get("injection_capacity", 4.0))
        self._assignments: "OrderedDict[Tuple, FlowAssignment]" = OrderedDict()
        register_route_cache_client(self)

    def clear_route_caches(self) -> None:
        """Drop cached :class:`FlowAssignment` objects (route-state reset)."""
        self._assignments.clear()

    # ------------------------------------------------------------------ paths
    def _paths(self, src_node: int, dst_node: int) -> List[List[int]]:
        return self.table.paths(src_node, dst_node)

    def node_of_rank(self, rank: int) -> int:
        return self.ranks[rank]

    # -------------------------------------------------------------- assignment
    def assign(self, flows: Sequence[Flow]) -> FlowAssignment:
        """Route ``flows`` (given in ranks) and build the incidence arrays.

        The incidence arrays are gathered from the route table's CSR storage
        with pure NumPy operations; assignments for recently-seen flow
        patterns (identical endpoints and demands) are returned from a small
        LRU cache, since collective schedules and the alltoall aggregate
        re-assign the same flow sets repeatedly.

        Subflow weights come from the routing policy's per-path table
        weights (an even ``1/k`` for minimal routing, a single unit weight
        for ECMP, an even split over the Valiant detours).  Under the
        ``ugal`` policy each flow is first tentatively routed minimally;
        the resulting link utilisation estimate then decides, per flow,
        whether its minimal or its Valiant candidate group carries the
        traffic (see :meth:`_ugal_paths`).
        """
        key = tuple((f.src, f.dst, f.demand) for f in flows)
        cached = self._assignments.get(key)
        if cached is not None:
            self._assignments.move_to_end(key)
            _ASSIGNMENT_HITS.inc()
            return cached
        _ASSIGNMENTS_BUILT.inc()
        src_ranks = np.fromiter((f.src for f in flows), dtype=np.int64, count=len(flows))
        dst_ranks = np.fromiter((f.dst for f in flows), dtype=np.int64, count=len(flows))
        if (src_ranks == dst_ranks).any():
            raise ValueError("flows must have distinct endpoints")
        flow_demand = np.fromiter((f.demand for f in flows), dtype=np.float64, count=len(flows))
        first, npaths = self.table.pair_arrays(
            self._rank_nodes[src_ranks], self._rank_nodes[dst_ranks]
        )
        if self.policy.selects_group:
            nmin = self.table.pair_minimal_counts(
                self._rank_nodes[src_ranks], self._rank_nodes[dst_ranks]
            )
            path_ids, npaths = self._ugal_paths(flow_demand, first, npaths, nmin)
            # The chosen candidates split evenly (table weights describe the
            # static minimal-first layout, not the per-flow choice).
            subflow_weight = np.repeat(1.0 / np.maximum(npaths, 1), npaths)
        else:
            # Per-subflow path id: each flow's subflows cover the contiguous
            # path-id range [first, first + npaths) of its (src, dst) pair.
            path_ids = _pair_range_path_ids(first, npaths)
            subflow_weight = self.table.gather_path_weights(path_ids)
        num_subflows = int(npaths.sum())
        subflow_flow = np.repeat(np.arange(len(flows), dtype=np.int64), npaths)
        entry_link, path_lengths = self.table.gather_links(path_ids)
        entry_subflow = np.repeat(np.arange(num_subflows, dtype=np.int64), path_lengths)
        asg = FlowAssignment(
            num_flows=len(flows),
            num_subflows=num_subflows,
            entry_link=entry_link,
            entry_subflow=entry_subflow,
            subflow_flow=subflow_flow,
            subflow_weight=subflow_weight,
            flow_demand=flow_demand,
        )
        self._assignments[key] = asg
        if len(self._assignments) > _ASSIGNMENT_CACHE_SIZE:
            self._assignments.popitem(last=False)
        return asg

    def _ugal_paths(
        self,
        flow_demand: np.ndarray,
        first: np.ndarray,
        npaths: np.ndarray,
        nmin: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """UGAL's per-flow choice between minimal and Valiant candidates.

        Estimates link utilisation as if every flow routed minimally (the
        UGAL null hypothesis) and scores each candidate path as ``hop count
        x bottleneck utilisation`` (the flow-level analogue of UGAL's
        ``queue length x path length`` comparison).  When scoring a flow's
        own candidates, its own minimal-route contribution is subtracted
        from the load — a queue a packet samples never contains the packet
        itself, and without the exclusion a lone flow in an empty network
        would read its own load as congestion and misroute.  A flow whose
        cheapest
        Valiant candidate beats its cheapest minimal one spreads over its
        minimal group *plus* all strictly-cheaper Valiant candidates — the
        fluid-steady-state picture of UGAL, whose per-packet queue feedback
        keeps sending minimally while the detours are no worse, equalising
        load across both groups (an either/or choice would just move the
        congestion to whichever group was picked).  Otherwise the flow
        keeps the even split over its minimal group; ties — in particular
        the fully uncongested case, where every score is zero — keep the
        shorter minimal routes.  Deterministic for a given flow set and
        independent of flow order.

        Returns ``(path_ids, counts)``: the selected path ids of all flows
        concatenated, and how many each flow owns.
        """
        L = len(self.capacity)
        # Pass 1: link load if everyone routed minimally (even 1/k split).
        min_ids = _pair_range_path_ids(first, nmin)
        links, lengths = self.table.gather_links(min_ids)
        per_path_w = np.repeat(flow_demand / np.maximum(nmin, 1), nmin)
        load = np.bincount(
            links, weights=np.repeat(per_path_w, lengths), minlength=L
        )
        inv_capacity = np.where(self.capacity > 0, 1.0 / self.capacity, 0.0)
        # Pass 2: per-candidate congestion score, excluding the flow's own
        # minimal-route contribution from the load it samples.
        all_ids = _pair_range_path_ids(first, npaths)
        links_all, lengths_all = self.table.gather_links(all_ids)
        entry_starts = np.concatenate(([0], np.cumsum(lengths_all)))
        path_starts = np.cumsum(npaths) - npaths
        # Per-flow slices of the minimal-entry arrays (pass 1's layout).
        min_entry_ends = np.cumsum(
            np.add.reduceat(lengths, np.cumsum(nmin) - nmin)
        ) if len(lengths) else np.zeros(len(npaths), dtype=np.int64)
        own = np.zeros(L)
        ids: List[int] = []
        counts = np.empty(len(npaths), dtype=np.int64)
        for i in range(len(npaths)):
            m, k = int(nmin[i]), int(npaths[i])
            f0, s = int(first[i]), int(path_starts[i])
            # This flow's own minimal load (what pass 1 charged for it).
            o_start = int(min_entry_ends[i - 1]) if i > 0 else 0
            o_end = int(min_entry_ends[i])
            own_links = links[o_start:o_end]
            # Pass 1 charged demand/m per link occurrence of each of this
            # flow's m minimal paths; undo exactly that (occurrences stack).
            np.add.at(own, own_links, flow_demand[i] / max(m, 1))
            cheaper: List[int] = []
            if 0 < m < k:
                e0, e1 = int(entry_starts[s]), int(entry_starts[s + k])
                seg_links = links_all[e0:e1]
                exclusive = np.maximum(load[seg_links] - own[seg_links], 0.0)
                util = exclusive * inv_capacity[seg_links]
                # Every candidate has >= 1 link (self-pairs are rejected
                # upstream), so the segmented max never sees an empty segment.
                seg_bounds = (entry_starts[s : s + k] - e0).astype(np.int64)
                bottleneck = np.maximum.reduceat(util, seg_bounds)
                cost = lengths_all[s : s + k] * bottleneck
                best_minimal = cost[:m].min()
                cheaper = [f0 + m + j for j in range(k - m) if cost[m + j] < best_minimal]
            own[own_links] = 0.0
            end = m if 0 < m <= k else k
            chosen = list(range(f0, f0 + end)) + cheaper
            ids.extend(chosen)
            counts[i] = len(chosen)
        return np.asarray(ids, dtype=np.int64), counts

    # -------------------------------------------------------- symmetric solver
    def symmetric_rate(self, flows: Sequence[Flow]) -> PhaseResult:
        """Throughput when all flows progress at a common rate.

        Exact for symmetric patterns (ring phases, balanced-shift alltoall
        phases) where fairness forces every flow to the same rate: the common
        rate is ``min_e capacity_e / load_e`` with per-link load computed from
        the even multipath split and per-flow demand weights.
        """
        asg = self.assign(flows)
        weights = (
            asg.subflow_weight[asg.entry_subflow]
            * asg.flow_demand[asg.subflow_flow[asg.entry_subflow]]
        )
        load = np.bincount(asg.entry_link, weights=weights, minlength=len(self.capacity))
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(load > _EPS, self.capacity / np.maximum(load, _EPS), np.inf)
        rate = float(ratio.min()) if len(ratio) else 0.0
        bottleneck = int(np.argmin(ratio)) if len(ratio) else -1
        link_util = np.where(self.capacity > 0, load * rate / self.capacity, 0.0)
        return PhaseResult(
            flow_rates=asg.flow_demand * rate,
            link_utilization=link_util,
            bottleneck_link=bottleneck,
        )

    # ----------------------------------------------------------- max-min solver
    def maxmin_rates(self, flows: Sequence[Flow], *, max_iterations: int = 100000) -> PhaseResult:
        """Max-min fair per-flow rates via **incremental** progressive filling.

        Subflows (one per candidate path) are filled simultaneously; a flow's
        rate is the sum of its subflow rates.  Flow demands scale the filling
        speed, so a flow with demand 2 receives twice the rate of a demand-1
        flow sharing the same bottleneck (weighted max-min fairness).

        Unlike the reference solver
        (:func:`repro.sim.reference.reference_maxmin_rates`), per-link load
        is maintained incrementally: it is bincounted once, and each
        bottleneck round subtracts only the entries of the subflows frozen in
        that round — O(total entries) amortized over the whole solve instead
        of O(entries) per round.  Subflows to freeze are likewise found by
        gathering only the entries of *freshly* saturated links through a
        link-to-entries CSR index (a subflow crossing a previously saturated
        link was already frozen in that earlier round).  Rates match the
        reference to ~1e-12 relative (the subtraction reorders float
        summation); the parity test pins the two solvers together at 1e-9.
        """
        asg = self.assign(flows)
        L = len(self.capacity)
        remaining = self.capacity.copy()
        active = np.ones(asg.num_subflows, dtype=bool)
        num_active = asg.num_subflows
        # Per-entry weight: demand share carried by the subflow on that link.
        sub_weights = asg.subflow_weight * asg.flow_demand[asg.subflow_flow]
        entry_weight = sub_weights[asg.entry_subflow]
        load = np.bincount(asg.entry_link, weights=entry_weight, minlength=L)
        sub_offsets = asg.subflow_offsets()
        link_offsets, link_subflows = asg.link_index(L)
        # A subflow's rate is its weight times the cumulative fill level at
        # the moment it froze, so the loop only records freeze levels — no
        # per-round pass over the subflows.
        fill = 0.0
        fill_at_freeze = np.zeros(asg.num_subflows)
        # Loop-invariant pieces, hoisted: the saturation threshold and the
        # errstate guard for the 0/0 -> masked-away headroom entries.
        sat_threshold = _EPS * (1.0 + self.capacity)
        saturated_ever = np.zeros(L, dtype=bool)
        iterations = 0
        with np.errstate(divide="ignore", invalid="ignore"):
            while num_active:
                iterations += 1
                if iterations > max_iterations:  # pragma: no cover - defensive
                    raise RuntimeError("max-min filling did not converge")
                headroom = np.where(load > _EPS, remaining / np.maximum(load, _EPS), np.inf)
                inc = float(headroom.min())
                if not np.isfinite(inc):
                    break
                fill += inc
                remaining = remaining - load * inc
                # Freeze subflows crossing freshly saturated links; previously
                # saturated links cannot contribute (their crossing subflows
                # froze when they saturated), so only fresh links are gathered.
                sat_idx = np.nonzero(remaining <= sat_threshold)[0]
                new_idx = sat_idx[~saturated_ever[sat_idx]]
                if not len(new_idx):  # pragma: no cover - numerical safety
                    break
                saturated_ever[new_idx] = True
                frozen = link_subflows[_gather_ranges(link_offsets, new_idx)]
                frozen = frozen[active[frozen]]
                if len(frozen):
                    frozen = np.unique(frozen)
                    _FROZEN_PER_ROUND.observe(len(frozen))
                    active[frozen] = False
                    num_active -= len(frozen)
                    fill_at_freeze[frozen] = fill
                    gone = _gather_ranges(sub_offsets, frozen)
                    load = load - np.bincount(
                        asg.entry_link[gone], weights=entry_weight[gone], minlength=L
                    )
                # Active load on a saturated link is exactly zero (every
                # crossing subflow is now frozen); pin it to kill drift.
                load[new_idx] = 0.0
        # Subflows still active on exit (inf headroom: nothing left to fill
        # against) receive the full accumulated fill, as in the reference.
        if num_active:
            fill_at_freeze[active] = fill
        _MAXMIN_SOLVES.inc()
        _MAXMIN_ROUNDS.observe(iterations)
        sub_rate = sub_weights * fill_at_freeze
        flow_rates = np.bincount(asg.subflow_flow, weights=sub_rate, minlength=asg.num_flows)
        used = self.capacity - remaining
        link_util = np.where(self.capacity > 0, used / self.capacity, 0.0)
        bottleneck = int(np.argmax(link_util)) if L else -1
        return PhaseResult(
            flow_rates=flow_rates, link_utilization=link_util, bottleneck_link=bottleneck
        )

    def maxmin_rates_batch(
        self,
        flow_sets: Sequence[Sequence[Flow]],
        *,
        max_iterations: int = 100000,
    ) -> List[PhaseResult]:
        """Max-min fair rates of **many scenarios at once**, vectorized.

        Scenarios on one topology are independent, so their per-link loads
        stack into one ``(scenarios, links)`` array and the progressive
        filling rounds run across the whole batch: each round takes the
        per-scenario headroom minimum over the rows, advances every live
        scenario's fill level by its own increment (finished rows advance by
        exactly 0.0, leaving their state untouched bit-for-bit), and freezes
        the union of freshly saturated (scenario, link) cells through one
        combined link-to-subflows CSR index in *virtual* link space
        (``scenario * num_links + link``).

        Every float operation a scenario sees — headroom, increment, load
        subtraction, freeze level — is elementwise identical to what its solo
        :meth:`maxmin_rates` solve performs, so the returned
        :class:`PhaseResult` list is **bit-identical** to solving each
        scenario separately; what the batch amortizes is the per-round
        Python/NumPy dispatch overhead, the dominant cost at fig12 scale
        (many scenarios x small link counts).  The number of rounds is the
        *maximum* over the batch instead of the sum.
        """
        flow_sets = list(flow_sets)
        S = len(flow_sets)
        _BATCH_SIZE.observe(S)
        if S == 0:
            return []
        asgs = [self.assign(flows) for flows in flow_sets]
        L = len(self.capacity)
        sub_counts = np.fromiter((a.num_subflows for a in asgs), dtype=np.int64, count=S)
        sub_base = np.concatenate(([0], np.cumsum(sub_counts)))
        total_subs = int(sub_base[-1])
        entry_counts = np.fromiter((len(a.entry_link) for a in asgs), dtype=np.int64, count=S)
        entry_base = np.concatenate(([0], np.cumsum(entry_counts)))
        # Combined entry arrays in virtual link space; per-scenario slices
        # keep their solo ordering, so every bincount below reproduces the
        # solo summation order exactly.
        entry_scen = np.repeat(np.arange(S, dtype=np.int64), entry_counts)
        if total_subs:
            entry_link = np.concatenate([a.entry_link for a in asgs])
            entry_sub = np.concatenate(
                [a.entry_subflow + sub_base[s] for s, a in enumerate(asgs)]
            )
            sub_weights = np.concatenate(
                [a.subflow_weight * a.flow_demand[a.subflow_flow] for a in asgs]
            )
        else:  # pragma: no cover - all-empty batch
            entry_link = np.zeros(0, dtype=np.int64)
            entry_sub = np.zeros(0, dtype=np.int64)
            sub_weights = np.zeros(0)
        entry_vlink = entry_scen * L + entry_link
        sub_scen = np.repeat(np.arange(S, dtype=np.int64), sub_counts)
        entry_weight = sub_weights[entry_sub]
        load_full = np.bincount(entry_vlink, weights=entry_weight, minlength=S * L).reshape(S, L)
        # Combined subflow -> entries CSR (per-scenario offsets shifted by the
        # scenario's entry base; the trailing total closes the last range).
        sub_offsets = np.concatenate(
            [a.subflow_offsets()[:-1] + entry_base[s] for s, a in enumerate(asgs)]
            + [np.array([entry_base[-1]], dtype=np.int64)]
        )
        # Combined virtual-link -> crossing-subflows CSR.
        order = np.argsort(entry_vlink, kind="stable").astype(np.int64)
        vlink_counts = np.bincount(entry_vlink, minlength=S * L)
        link_offsets = np.concatenate(([0], np.cumsum(vlink_counts))).astype(np.int64)
        link_offsets_list = link_offsets.tolist()
        link_subflows = entry_sub[order]

        # Fixed-shape working set with preallocated scratch buffers.  The
        # per-scenario round counts at fig12 scale differ by only a few
        # percent, so a finished row padded with a 0.0 increment (which
        # leaves its state untouched bit-for-bit: ``x - 0.0 * load == x``)
        # wastes far less than live-set compaction bookkeeping would cost,
        # and fixed shapes let every per-round elementwise pass write into a
        # reusable ``out=`` buffer instead of allocating a fresh (S, L)
        # temporary — at fig12 scale the allocator, not the FPU, dominates.
        loadc = load_full                              # (S, L) active load
        remc = np.tile(self.capacity, (S, 1))          # (S, L) remaining
        satc = np.broadcast_to(_EPS * (1.0 + self.capacity), (S, L))
        fillc = np.zeros(S)                            # fill level per scenario
        live = sub_counts > 0
        active = np.ones(total_subs, dtype=bool)
        num_active = sub_counts.copy()                 # per scenario
        fill_at_freeze = np.zeros(total_subs)
        # Saturation-time remaining is flushed here and the live cell is then
        # pinned: ``remc`` to +inf (so the threshold scan cannot re-fire) and
        # its load to 0.0 (so the cell's headroom is masked to inf, exactly
        # like the solo loop after ``load[new_idx] = 0.0``).  The solo loop
        # never updates a saturated link's remaining again either — its load
        # is zero — so the flushed value *is* the solo final remaining.
        remaining_final = np.tile(self.capacity, (S, 1))
        hm = np.empty((S, L))                          # headroom scratch
        mload = np.empty((S, L))                       # cached masked |load|
        bmask = np.empty((S, L), dtype=bool)           # comparison scratch
        loadc_flat = loadc.reshape(-1)
        remc_flat = remc.reshape(-1)
        mload_flat = mload.reshape(-1)
        remaining_final_flat = remaining_final.reshape(-1)
        # headroom = where(load > eps, remaining / max(load, eps), inf)
        # — the solo formula, with the masked divisor |load * (load > eps)|
        # *cached*: the bool multiply zeroes masked lanes and the abs pass
        # turns the -0.0 of masked *negative* lanes (tiny residues left by
        # the freeze subtraction) into +0.0 while passing unmasked lanes
        # through bitwise (load > eps > 0 there), so remaining / +0.0 lands
        # +inf in masked lanes on its own, exactly the value the solo
        # formula assigns.  Load only ever changes at the cells a freeze
        # touches, so the cache is refreshed there incrementally and the
        # steady-state headroom is a single full-width divide.
        np.greater(loadc, _EPS, out=bmask)
        np.multiply(loadc, bmask, out=mload)
        np.abs(mload, out=mload)
        iterations = 0
        with np.errstate(divide="ignore", invalid="ignore"):
            while live.any():
                iterations += 1
                if iterations > max_iterations:  # pragma: no cover - defensive
                    raise RuntimeError("batched max-min filling did not converge")
                np.divide(remc, mload, out=hm)
                if iterations == 1:
                    # Only 0.0 / 0.0 cells produce NaN, and they can only
                    # exist in round one: a zero remaining always trips the
                    # threshold scan (0 <= eps * (1 + capacity)), so any
                    # such cell is pinned to remaining = +inf before the
                    # next round's divide ever sees it.
                    np.isnan(hm, out=bmask)
                    np.copyto(hm, np.inf, where=bmask)
                inc = hm.min(axis=1)
                # A row whose headroom went to +inf is finished (solo breaks
                # there); it keeps advancing by exactly 0.0 from now on.
                live &= np.isfinite(inc)
                if not live.any():
                    break
                inc[~live] = 0.0
                np.add(fillc, inc, out=fillc)
                # The *raw* load drives the remaining update (as in solo),
                # including sub-eps residue lanes; hm is free scratch here.
                np.multiply(loadc, inc[:, None], out=hm)
                np.subtract(remc, hm, out=remc)
                np.less_equal(remc, satc, out=bmask)
                # Flat indices are ``scenario * L + link``: ascending order ==
                # scenario-major, link-ascending == solo per-scenario order.
                vcells = np.flatnonzero(bmask)
                if not len(vcells):  # pragma: no cover - numerical safety
                    break
                remaining_final_flat[vcells] = remc_flat[vcells]
                remc_flat[vcells] = np.inf
                # Most rounds saturate a handful of cells; direct slice
                # concatenation beats the vectorized multi-range gather
                # there (both produce the ranges in the same order).  The
                # plain-int offsets list sidesteps the NumPy scalar-slicing
                # overhead the hot path would otherwise pay per cell.
                if len(vcells) <= 48:
                    frozen = np.concatenate(
                        [
                            link_subflows[link_offsets_list[v] : link_offsets_list[v + 1]]
                            for v in vcells.tolist()
                        ]
                    )
                else:
                    frozen = link_subflows[_gather_ranges(link_offsets, vcells)]
                frozen = frozen[active[frozen]]
                if len(frozen):
                    # Sorted dedup == np.unique, minus its dispatch overhead.
                    frozen.sort()
                    dmask = np.empty(len(frozen), dtype=bool)
                    dmask[0] = True
                    np.not_equal(frozen[1:], frozen[:-1], out=dmask[1:])
                    frozen = frozen[dmask]
                    _FROZEN_PER_ROUND.observe(len(frozen))
                    active[frozen] = False
                    num_active -= np.bincount(sub_scen[frozen], minlength=S)
                    fill_at_freeze[frozen] = fillc[sub_scen[frozen]]
                    gone = _gather_ranges(sub_offsets, frozen)
                    # Group the gone entries by virtual link and subtract the
                    # per-link weight sums at the touched cells only.  This
                    # matches solo's full-width ``load = load - bincount(...)``
                    # bit for bit: the *stable* argsort keeps every link's
                    # weights in their original entry order, bincount over
                    # the group ids adds strictly sequentially per bucket
                    # (unlike a segmented ufunc reduce, which reassociates
                    # into pairwise sums), and the cells not touched see a
                    # 0.0 delta in solo (``x - 0.0 == x`` bitwise).
                    gv = entry_vlink[gone]
                    sidx = np.argsort(gv, kind="stable")
                    gv = gv[sidx]
                    gw = entry_weight[gone][sidx]
                    smask = np.empty(len(gv), dtype=bool)
                    smask[0] = True
                    np.not_equal(gv[1:], gv[:-1], out=smask[1:])
                    gid = np.cumsum(smask)
                    gid -= 1
                    touched = gv[smask]
                    loadc_flat[touched] -= np.bincount(gid, weights=gw)
                    # Refresh the masked-|load| headroom cache at the cells
                    # the subtraction changed (same mask-multiply-abs passes
                    # as the full-width initialisation, on the slice).
                    msub = loadc_flat[touched]
                    np.multiply(msub, np.greater(msub, _EPS), out=msub)
                    np.abs(msub, out=msub)
                    mload_flat[touched] = msub
                loadc_flat[vcells] = 0.0
                mload_flat[vcells] = 0.0
                # A scenario whose last subflow froze exits at the top of the
                # solo loop; here it just goes (and stays) dead.
                live &= num_active > 0
        # Unsaturated links keep their final remaining (the solo loop simply
        # stops updating them on exit); saturated cells were flushed when
        # pinned.  Subflows never frozen (inf headroom on exit) get their
        # scenario's final fill, as in the solo solver.
        np.copyto(remaining_final, remc, where=np.isfinite(remc))
        if active.any():
            fill_at_freeze[active] = fillc[sub_scen[active]]
        _MAXMIN_SOLVES.inc(S)
        _MAXMIN_ROUNDS.observe(iterations)
        sub_rate = sub_weights * fill_at_freeze
        results: List[PhaseResult] = []
        for s, asg in enumerate(asgs):
            rates_s = sub_rate[sub_base[s] : sub_base[s + 1]]
            flow_rates = np.bincount(asg.subflow_flow, weights=rates_s, minlength=asg.num_flows)
            used = self.capacity - remaining_final[s]
            link_util = np.where(self.capacity > 0, used / self.capacity, 0.0)
            bottleneck = int(np.argmax(link_util)) if L else -1
            results.append(
                PhaseResult(
                    flow_rates=flow_rates,
                    link_utilization=link_util,
                    bottleneck_link=bottleneck,
                )
            )
        return results

    # -------------------------------------------------------- derived analyses
    def alltoall_bandwidth(
        self,
        *,
        num_phases: Optional[int] = None,
        seed: int = 0,
        method: str = "aggregate",
    ) -> float:
        """Achievable per-accelerator alltoall bandwidth (fraction of injection).

        Two models of the balanced-shift alltoall (Section V-A1a) are
        available:

        * ``"aggregate"`` (default, used for Table II): the classic global
          bandwidth analysis.  Traffic of all shifts is aggregated into one
          uniform load (every rank sends equally to every other rank), the
          per-link load is computed for the even multipath split, and the
          achievable injection rate is limited by the most loaded link.  With
          long messages and adaptive routing, consecutive shift phases overlap
          in the network, which this model captures.
        * ``"phased"``: phases are barrier-synchronised; the result is the
          harmonic mean of the per-phase achievable rates.  This is the more
          pessimistic model and is exposed for sensitivity studies.

        For large systems a stratified sample of shifts approximates the full
        pattern; sampling whole permutation phases keeps every accelerator's
        injection/ejection links exactly balanced, so the estimate has no
        endpoint-sampling noise.
        """
        from .traffic import alltoall_phases, sampled_alltoall_phases

        p = len(self.ranks)
        if num_phases is None or num_phases >= p - 1:
            phases = alltoall_phases(p)
        else:
            phases = sampled_alltoall_phases(p, num_phases, seed=seed)
        if method == "phased":
            inv_rates = []
            for phase in phases:
                rate = self.symmetric_rate(phase).min_rate
                inv_rates.append(1.0 / max(rate, _EPS))
            harmonic = len(inv_rates) / sum(inv_rates)
            return min(harmonic / self.injection_capacity, 1.0)
        if method != "aggregate":
            raise ValueError(f"unknown alltoall method {method!r}")
        # Aggregate all sampled phases into a single uniform-traffic load.
        all_flows: List[Flow] = [f for phase in phases for f in phase]
        asg = self.assign(all_flows)
        weights = asg.subflow_weight[asg.entry_subflow]
        load = np.bincount(asg.entry_link, weights=weights, minlength=len(self.capacity))
        # Each accelerator appears exactly once per phase as a source, so an
        # injection rate of R corresponds to R / num_phases per flow.
        load = load / len(phases)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(load > _EPS, self.capacity / np.maximum(load, _EPS), np.inf)
        injection_rate = float(ratio.min())
        return min(injection_rate / self.injection_capacity, 1.0)

    def permutation_bandwidths(self, flows: Sequence[Flow]) -> np.ndarray:
        """Per-rank receive bandwidth (fraction of injection) for a permutation."""
        result = self.maxmin_rates(flows)
        by_dst = np.zeros(len(self.ranks))
        dst = np.fromiter((f.dst for f in flows), dtype=np.int64, count=len(flows))
        np.add.at(by_dst, dst, result.flow_rates)
        return by_dst / self.injection_capacity

    def phase_bandwidth(self, flows: Sequence[Flow], *, exact: bool = False) -> float:
        """Common achievable flow rate for one symmetric phase (units of ports)."""
        if exact:
            result = self.maxmin_rates(flows)
            return result.min_rate
        return self.symmetric_rate(flows).min_rate
