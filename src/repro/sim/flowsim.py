"""Flow-level network simulator: max-min fair bandwidth allocation.

This is the cluster-scale substitute for the paper's SST packet-level
simulations (see DESIGN.md, substitution table).  Traffic is modelled as a
set of flows; every flow is split evenly over its candidate minimal paths
(approximating packet-spraying / adaptive routing) and link bandwidth is
shared max-min fairly between the subflows using the classic progressive
filling algorithm.  For symmetric patterns (alltoall, rings) a faster
bottleneck analysis is provided that assumes all flows progress at the same
rate, which is exact for such patterns.

All rates are in normalised units of one 400 Gb/s port; per-accelerator
injection capacity is 4.0 in every simulated configuration (Section III-D).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import registry as _obs
from ..topology.base import Topology
from .paths import DEFAULT_MAX_PATHS, PathProvider
from .policy import RoutingPolicy, get_policy
from .routing import (
    RouteTable,
    register_route_cache_client,
    route_table_for,
)
from .traffic import Flow

__all__ = [
    "DeltaSolve",
    "FlowAssignment",
    "FlowSimulator",
    "PhaseResult",
    "WarmState",
]

_EPS = 1e-9

#: Sentinel water level for links that are not saturated (no constraint).
_NO_LAM = 1e30

# flowsim.* instruments (module-bound; the registry resets them in place).
_MAXMIN_SOLVES = _obs.counter("flowsim.maxmin_solves")
_MAXMIN_ROUNDS = _obs.histogram("flowsim.maxmin_rounds")
_FROZEN_PER_ROUND = _obs.histogram("flowsim.frozen_per_round")
_ASSIGNMENTS_BUILT = _obs.counter("flowsim.assignments_built")
_ASSIGNMENT_HITS = _obs.counter("flowsim.assignment_cache_hits")
_BATCH_SIZE = _obs.histogram("flowsim.batch_size")
# delta-solve attribution: how many perturbation solves were served warm,
# how many fell back to the cold solver, and how local each one was.
_DELTA_SOLVES = _obs.counter("flowsim.delta_solves")
_DELTA_WARM = _obs.counter("flowsim.delta_warm_hits")
_DELTA_FALLBACKS = _obs.counter("flowsim.delta_fallbacks")
_DELTA_ASSIGNS = _obs.counter("flowsim.delta_assignments")
_DELTA_CHANGED = _obs.histogram("flowsim.delta_changed_flows")
_DELTA_ACTIVE = _obs.histogram("flowsim.delta_active_subflows")
_DELTA_BATCH = _obs.histogram("flowsim.delta_batch_size")
# sparse link-space compaction: active (touched) links per solve
_ACTIVE_LINKS = _obs.histogram("flowsim.active_links")


def _sparse_links_enabled() -> bool:
    """Whether solvers compact onto the active-link subset (default: yes).

    ``REPRO_SPARSE_LINKS=0`` (or ``false``/``no``/``off``) restores the
    dense O(num_links)-per-round path; both paths are bit-identical, the
    flag exists for benchmarking and for bisecting regressions.
    """
    raw = os.environ.get("REPRO_SPARSE_LINKS")
    if raw is None or not raw.strip():
        return True
    return raw.strip().lower() not in ("0", "false", "no", "off")


#: Batch solves compact onto active (scenario, link) cells only when the
#: active fraction is below this: at high density the compaction's per-round
#: gathers cost more than the dense path's fixed-shape broadcasts save.
#: Both paths are bit-identical, so the gate is a pure performance choice.
_SPARSE_BATCH_MAX_DENSITY = 0.5

#: Distinct flow patterns whose :class:`FlowAssignment` is kept per simulator.
#: Collective schedules and the alltoall aggregate re-assign identical flow
#: sets (same endpoints and demands) many times; 64 patterns comfortably
#: cover the phase structure of every schedule in the repository.  Override
#: per simulator with the ``assign_cache`` constructor argument or process
#: wide with ``REPRO_ASSIGN_CACHE`` (0 disables the cache).
_ASSIGNMENT_CACHE_SIZE = 64


def _default_assignment_cache() -> int:
    """The assignment-LRU capacity from ``REPRO_ASSIGN_CACHE`` (or default)."""
    raw = os.environ.get("REPRO_ASSIGN_CACHE")
    if raw is None or not raw.strip():
        return _ASSIGNMENT_CACHE_SIZE
    try:
        size = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_ASSIGN_CACHE must be an integer, got {raw!r}"
        ) from None
    if size < 0:
        raise ValueError(f"REPRO_ASSIGN_CACHE must be >= 0, got {size}")
    return size


@dataclass
class FlowAssignment:
    """Internal representation of a set of flows routed onto the topology.

    ``entry_link[i]`` / ``entry_subflow[i]`` give, for every (subflow, link)
    incidence, the directed link index and the subflow index; ``subflow_flow``
    maps subflows back to the originating flow and ``subflow_weight`` holds
    the share of the flow's demand carried by the subflow (1/k for k paths).

    ``entry_subflow`` is sorted by construction, so the entries of subflow
    ``s`` form a contiguous slice; the incremental max-min solver leans on
    that plus a lazily-built link-to-entries CSR index (both cached here,
    since assignments themselves are cached and reused across solves).
    """

    num_flows: int
    num_subflows: int
    entry_link: np.ndarray
    entry_subflow: np.ndarray
    subflow_flow: np.ndarray
    subflow_weight: np.ndarray
    flow_demand: np.ndarray
    # Lazily-built indexes for the incremental solver (see subflow_offsets /
    # link_index); None until first used.
    _subflow_offsets: Optional[np.ndarray] = None
    _link_entry_offsets: Optional[np.ndarray] = None
    _link_entry_ids: Optional[np.ndarray] = None
    _link_entry_order: Optional[np.ndarray] = None
    # Lazily-built indexes for the delta path (see flow_subflow_offsets /
    # subflow_weights / entry_weights); None until first used.
    _flow_subflow_offsets: Optional[np.ndarray] = None
    _subflow_weights: Optional[np.ndarray] = None
    _entry_weights: Optional[np.ndarray] = None
    # Lazily-built active-link compaction (see compact_link_index).
    _compact_links: Optional[np.ndarray] = None
    _compact_inverse: Optional[np.ndarray] = None
    _compact_offsets: Optional[np.ndarray] = None
    _compact_subflows: Optional[np.ndarray] = None

    def subflow_offsets(self) -> np.ndarray:
        """Entry-range offsets per subflow: entries of ``s`` are
        ``[offsets[s], offsets[s+1])`` (valid because ``entry_subflow`` is
        sorted)."""
        if self._subflow_offsets is None:
            counts = np.bincount(self.entry_subflow, minlength=self.num_subflows)
            self._subflow_offsets = np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64)
        return self._subflow_offsets

    def link_index(self, num_links: int) -> Tuple[np.ndarray, np.ndarray]:
        """CSR index from links to crossing subflows: the subflows whose
        entries cross link ``l`` are ``subs[offsets[l]:offsets[l+1]]`` (one
        id per crossing entry, in entry order; a subflow crossing twice
        appears twice)."""
        if self._link_entry_offsets is None:
            order = np.argsort(self.entry_link, kind="stable").astype(np.int64)
            counts = np.bincount(self.entry_link, minlength=num_links)
            self._link_entry_offsets = np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64)
            self._link_entry_ids = self.entry_subflow[order]
            self._link_entry_order = order
        return self._link_entry_offsets, self._link_entry_ids

    def compact_link_index(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Active-link compaction: ``(links, inverse, offsets, subflows)``.

        ``links`` is the sorted unique set of links the assignment touches;
        ``inverse`` remaps ``entry_link`` onto compact indices (``inverse``
        is a *monotone* relabeling, so per-link entry order — and therefore
        every sequential ``bincount`` summation — is preserved exactly);
        ``offsets``/``subflows`` are the compact-space equivalent of
        :meth:`link_index`.  This is what lets the solvers water-fill in
        O(active links) per round instead of O(num_links).
        """
        if self._compact_links is None:
            uL, inv = np.unique(self.entry_link, return_inverse=True)
            inv = inv.astype(np.int64, copy=False)
            order = np.argsort(inv, kind="stable").astype(np.int64)
            counts = np.bincount(inv, minlength=len(uL))
            self._compact_offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            self._compact_subflows = self.entry_subflow[order]
            self._compact_links = uL.astype(np.int64, copy=False)
            self._compact_inverse = inv
        return (
            self._compact_links,
            self._compact_inverse,
            self._compact_offsets,
            self._compact_subflows,
        )

    def link_entry_order(self, num_links: int) -> np.ndarray:
        """Entry ids sorted by link (the permutation behind
        :meth:`link_index`): the entries crossing link ``l`` are
        ``order[offsets[l]:offsets[l+1]]``."""
        self.link_index(num_links)
        return self._link_entry_order

    def flow_subflow_offsets(self) -> np.ndarray:
        """Subflow-range offsets per flow: the subflows of flow ``i`` are
        ``[offsets[i], offsets[i+1])`` (``subflow_flow`` is sorted by
        construction)."""
        if self._flow_subflow_offsets is None:
            counts = np.bincount(self.subflow_flow, minlength=self.num_flows)
            self._flow_subflow_offsets = np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64)
        return self._flow_subflow_offsets

    def flow_entry_offsets(self) -> np.ndarray:
        """Entry-range offsets per flow (a flow's subflows are contiguous, so
        its entries are too)."""
        return self.subflow_offsets()[self.flow_subflow_offsets()]

    def subflow_weights(self) -> np.ndarray:
        """Per-subflow demand share: path weight times the flow's demand."""
        if self._subflow_weights is None:
            self._subflow_weights = self.subflow_weight * self.flow_demand[self.subflow_flow]
        return self._subflow_weights

    def entry_weights(self) -> np.ndarray:
        """Per-entry demand share (the crossing subflow's weight)."""
        if self._entry_weights is None:
            self._entry_weights = self.subflow_weights()[self.entry_subflow]
        return self._entry_weights

    def apply_delta(
        self,
        changed: np.ndarray,
        num_flows: int,
        seg_demand: np.ndarray,
        seg_counts: np.ndarray,
        seg_weights: np.ndarray,
        seg_links: np.ndarray,
        seg_lengths: np.ndarray,
    ) -> "FlowAssignment":
        """A new assignment with the routed state of ``changed`` flows replaced.

        ``changed`` (sorted, unique) indexes flows in the *new* flow list of
        ``num_flows`` flows: indices past the old flow count describe appended
        flows (all of which must be listed), while old flows past
        ``num_flows`` are dropped.  The ``seg_*`` arrays hold the changed
        flows' new routing concatenated in ``changed`` order — demand and
        path count per flow, then per-subflow weights and entry counts, then
        the concatenated entry links — exactly the per-pair arrays a cold
        :meth:`FlowSimulator.assign` gathers.  Unchanged flows' CSR rows are
        spliced in verbatim, so the result is element-wise identical to a
        cold assignment of the new flow list (same flow-major order, same
        per-pair path order); only O(changed) routing work is done.
        """
        changed = np.asarray(changed, dtype=np.int64)
        if len(changed) and (int(changed[0]) < 0 or int(changed[-1]) >= num_flows):
            raise ValueError("changed flow indices out of range")
        if num_flows > self.num_flows:
            appended = np.arange(self.num_flows, num_flows, dtype=np.int64)
            if not np.isin(appended, changed).all():
                raise ValueError("appended flows must all be listed as changed")
        n_common = min(self.num_flows, num_flows)
        fso = self.flow_subflow_offsets()
        seo = self.subflow_offsets()
        old_counts = np.diff(fso)
        old_lengths = np.diff(seo)
        seg_counts = np.asarray(seg_counts, dtype=np.int64)
        seg_lengths = np.asarray(seg_lengths, dtype=np.int64)
        seg_sub_off = np.concatenate(([0], np.cumsum(seg_counts))).astype(np.int64)
        seg_entry_off = np.concatenate(([0], np.cumsum(seg_lengths))).astype(np.int64)
        # Entry offset of each changed flow's segment (its subflows'
        # entry counts are contiguous in seg_lengths).
        seg_flow_entry = seg_entry_off[seg_sub_off]
        w_parts: List[np.ndarray] = []
        len_parts: List[np.ndarray] = []
        link_parts: List[np.ndarray] = []
        cnt_parts: List[np.ndarray] = []
        dem_parts: List[np.ndarray] = []

        def _old_chunk(lo: int, hi: int) -> None:
            s0, s1 = int(fso[lo]), int(fso[hi])
            w_parts.append(self.subflow_weight[s0:s1])
            len_parts.append(old_lengths[s0:s1])
            link_parts.append(self.entry_link[int(seo[s0]) : int(seo[s1])])
            cnt_parts.append(old_counts[lo:hi])
            dem_parts.append(self.flow_demand[lo:hi])

        prev = 0
        for k, fi in enumerate(changed.tolist()):
            hi = min(fi, n_common)
            if hi > prev:
                _old_chunk(prev, hi)
            w_parts.append(seg_weights[seg_sub_off[k] : seg_sub_off[k + 1]])
            len_parts.append(seg_lengths[seg_sub_off[k] : seg_sub_off[k + 1]])
            link_parts.append(seg_links[seg_flow_entry[k] : seg_flow_entry[k + 1]])
            cnt_parts.append(seg_counts[k : k + 1])
            dem_parts.append(seg_demand[k : k + 1])
            prev = fi + 1
        if n_common > prev:
            _old_chunk(prev, n_common)
        subflow_weight = np.concatenate(w_parts) if w_parts else np.zeros(0)
        sub_lengths = (
            np.concatenate(len_parts) if len_parts else np.zeros(0, dtype=np.int64)
        )
        entry_link = (
            np.concatenate(link_parts) if link_parts else np.zeros(0, dtype=np.int64)
        )
        counts = (
            np.concatenate(cnt_parts) if cnt_parts else np.zeros(0, dtype=np.int64)
        )
        if sub_lengths.dtype != np.int64:
            sub_lengths = sub_lengths.astype(np.int64)
        if entry_link.dtype != np.int64:
            entry_link = entry_link.astype(np.int64)
        if counts.dtype != np.int64:
            counts = counts.astype(np.int64)
        flow_demand = np.concatenate(dem_parts) if dem_parts else np.zeros(0)
        num_subflows = int(counts.sum())
        out = FlowAssignment(
            num_flows=num_flows,
            num_subflows=num_subflows,
            entry_link=entry_link,
            entry_subflow=np.repeat(np.arange(num_subflows, dtype=np.int64), sub_lengths),
            subflow_flow=np.repeat(np.arange(num_flows, dtype=np.int64), counts),
            subflow_weight=subflow_weight,
            flow_demand=flow_demand,
        )
        # The splice already knows both CSR layouts; seed the lazy indexes.
        out._subflow_offsets = np.concatenate(([0], np.cumsum(sub_lengths))).astype(np.int64)
        out._flow_subflow_offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        return out


def _gather_ranges(offsets: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(offsets[i], offsets[i+1])`` for every id.

    The CSR multi-range gather (same contract as
    :func:`repro.sim.routing.csr_range_indices`, minus the per-range lengths),
    used by the incremental solver to collect the entries of a set of
    subflows (or of a set of links) without a Python loop.  Inlined rather
    than delegated: the delta path calls this a dozen times per solve on
    tiny id sets, so per-call overhead is what matters.
    """
    if not len(ids):
        return np.zeros(0, dtype=np.int64)
    starts = offsets[ids]
    counts = offsets[ids + 1] - starts
    ends = np.cumsum(counts)
    out = np.arange(int(ends[-1]), dtype=np.int64)
    out += np.repeat(starts - (ends - counts), counts)
    return out


def _splice_flow_array(
    old_vals: np.ndarray,
    old_off: np.ndarray,
    new_off: np.ndarray,
    changed_idx: np.ndarray,
    n_common: int,
) -> np.ndarray:
    """Splice a per-flow CSR payload across a delta: old chunks for unchanged
    flows (flow ids below ``n_common`` keep their numbering), zero-filled
    chunks (sized by ``new_off``) for every changed or appended flow."""
    parts = []
    prev = 0
    for fi in changed_idx.tolist():
        hi = fi if fi < n_common else n_common
        if hi > prev:
            parts.append(old_vals[old_off[prev] : old_off[hi]])
        parts.append(np.zeros(int(new_off[fi + 1] - new_off[fi])))
        prev = fi + 1
    if n_common > prev:
        parts.append(old_vals[old_off[prev] : old_off[n_common]])
    return np.concatenate(parts) if parts else np.zeros(0)


def _pair_range_path_ids(first: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated path ids ``[first[i], first[i] + counts[i])`` per pair."""
    total = int(counts.sum())
    ends = np.cumsum(counts)
    offset_within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(first, counts) + offset_within


@dataclass
class PhaseResult:
    """Result of simulating one traffic phase."""

    flow_rates: np.ndarray          # achieved rate per flow (bandwidth units)
    link_utilization: np.ndarray    # fraction of each link's capacity in use
    bottleneck_link: int            # index of the most utilised link

    @property
    def min_rate(self) -> float:
        return float(self.flow_rates.min()) if len(self.flow_rates) else 0.0

    @property
    def mean_rate(self) -> float:
        return float(self.flow_rates.mean()) if len(self.flow_rates) else 0.0


@dataclass
class WarmState:
    """The fixed point of one max-min solve, packaged for delta re-solves.

    Besides the solved :class:`PhaseResult` it carries everything the warm
    path needs to re-verify a perturbed instance: the routed assignment, the
    per-subflow freeze levels, the per-entry rates they imply, and the
    per-link used bandwidth.  Produced by
    :meth:`FlowSimulator.maxmin_warm_state` and by every
    :meth:`FlowSimulator.maxmin_rates_delta` call (chainable: each delta
    solve returns the state of the *new* flow list).
    """

    src: np.ndarray
    dst: np.ndarray
    demand: np.ndarray
    asg: FlowAssignment
    levels: np.ndarray
    entry_rate: np.ndarray
    used: np.ndarray
    #: Per-link water level: the max crossing freeze level on saturated
    #: links, ``_NO_LAM`` elsewhere.  Lets delta solves seed the cascade
    #: closure and re-verify only touched links.
    link_lam: np.ndarray
    result: PhaseResult


@dataclass
class DeltaSolve:
    """Result of one :meth:`FlowSimulator.maxmin_rates_delta` call.

    ``warm`` is True when the warm-started candidate passed the exact
    max-min verification; False means the solve fell back to the cold
    progressive filling (the rates are correct either way).  ``attempts``
    counts relaxed-fill rounds tried before success or fallback.  ``state``
    is ``None`` when the solve was invoked with ``want_state=False``.
    """

    result: PhaseResult
    state: Optional[WarmState]
    warm: bool
    changed: int
    attempts: int


class FlowSimulator:
    """Max-min fair flow-level simulator over a :class:`Topology`.

    Routing state lives in a :class:`~repro.sim.routing.RouteTable` shared
    per ``(topology, policy, max_paths)``: constructing a second simulator on
    the same topology reuses every path already enumerated by the first one.
    Pass ``table`` to share an explicitly-built table, ``provider`` to
    route through a custom provider (which gets a private table), or
    ``policy`` to select a routing policy by name or instance
    (:mod:`repro.sim.policy`; the default reproduces minimal multipath
    routing bit-identically).  ``mem_budget`` (bytes or a ``"4G"``-style
    string; default: ``REPRO_ROUTE_MEM_BUDGET``) bounds the route table's
    resident memory — large topologies switch to sharded route storage,
    with identical results (see :mod:`repro.sim.routing`).
    """

    def __init__(
        self,
        topo: Topology,
        *,
        provider: Optional[PathProvider] = None,
        max_paths: int = DEFAULT_MAX_PATHS,
        table: Optional[RouteTable] = None,
        policy: Union[str, RoutingPolicy, None] = None,
        mem_budget: Union[str, int, float, None] = None,
        assign_cache: Optional[int] = None,
    ):
        self.topo = topo
        if table is not None:
            if policy is not None and get_policy(policy).cache_key() != table.policy.cache_key():
                raise ValueError(
                    "explicit table was built for a different routing policy"
                )
            self.table = table
        elif provider is not None:
            self.table = RouteTable(topo, max_paths=max_paths, provider=provider, policy=policy)
        elif mem_budget is not None:
            self.table = route_table_for(
                topo, max_paths=max_paths, policy=policy, mem_budget=mem_budget
            )
        else:
            self.table = route_table_for(topo, max_paths=max_paths, policy=policy)
        self.provider = self.table.provider
        self.max_paths = self.table.max_paths
        self.policy = self.table.policy
        self.capacity = topo.link_capacity_array()
        self.ranks = list(topo.accelerators)
        self._rank_nodes = np.asarray(self.ranks, dtype=np.int64)
        self.injection_capacity = float(topo.meta.get("injection_capacity", 4.0))
        if assign_cache is None:
            self.assign_cache = _default_assignment_cache()
        else:
            self.assign_cache = int(assign_cache)
            if self.assign_cache < 0:
                raise ValueError(f"assign_cache must be >= 0, got {assign_cache}")
        self._assignments: "OrderedDict[Tuple, FlowAssignment]" = OrderedDict()
        register_route_cache_client(self)

    def clear_route_caches(self) -> None:
        """Drop cached :class:`FlowAssignment` objects (route-state reset)."""
        self._assignments.clear()

    # ------------------------------------------------------------------ paths
    def _paths(self, src_node: int, dst_node: int) -> List[List[int]]:
        return self.table.paths(src_node, dst_node)

    def node_of_rank(self, rank: int) -> int:
        return self.ranks[rank]

    # -------------------------------------------------------------- assignment
    def assign(self, flows: Sequence[Flow]) -> FlowAssignment:
        """Route ``flows`` (given in ranks) and build the incidence arrays.

        The incidence arrays are gathered from the route table's CSR storage
        with pure NumPy operations; assignments for recently-seen flow
        patterns (identical endpoints and demands) are returned from a small
        LRU cache, since collective schedules and the alltoall aggregate
        re-assign the same flow sets repeatedly.

        Subflow weights come from the routing policy's per-path table
        weights (an even ``1/k`` for minimal routing, a single unit weight
        for ECMP, an even split over the Valiant detours).  Under the
        ``ugal`` policy each flow is first tentatively routed minimally;
        the resulting link utilisation estimate then decides, per flow,
        whether its minimal or its Valiant candidate group carries the
        traffic (see :meth:`_ugal_paths`).
        """
        key = tuple((f.src, f.dst, f.demand) for f in flows)
        if self.assign_cache:
            cached = self._assignments.get(key)
            if cached is not None:
                self._assignments.move_to_end(key)
                _ASSIGNMENT_HITS.inc()
                return cached
        _ASSIGNMENTS_BUILT.inc()
        src_ranks = np.fromiter((f.src for f in flows), dtype=np.int64, count=len(flows))
        dst_ranks = np.fromiter((f.dst for f in flows), dtype=np.int64, count=len(flows))
        if (src_ranks == dst_ranks).any():
            raise ValueError("flows must have distinct endpoints")
        flow_demand = np.fromiter((f.demand for f in flows), dtype=np.float64, count=len(flows))
        first, npaths = self.table.pair_arrays(
            self._rank_nodes[src_ranks], self._rank_nodes[dst_ranks]
        )
        if self.policy.selects_group:
            nmin = self.table.pair_minimal_counts(
                self._rank_nodes[src_ranks], self._rank_nodes[dst_ranks]
            )
            path_ids, npaths = self._ugal_paths(flow_demand, first, npaths, nmin)
            # The chosen candidates split evenly (table weights describe the
            # static minimal-first layout, not the per-flow choice).
            subflow_weight = np.repeat(1.0 / np.maximum(npaths, 1), npaths)
        else:
            # Per-subflow path id: each flow's subflows cover the contiguous
            # path-id range [first, first + npaths) of its (src, dst) pair.
            path_ids = _pair_range_path_ids(first, npaths)
            subflow_weight = self.table.gather_path_weights(path_ids)
        num_subflows = int(npaths.sum())
        subflow_flow = np.repeat(np.arange(len(flows), dtype=np.int64), npaths)
        entry_link, path_lengths = self.table.gather_links(path_ids)
        entry_subflow = np.repeat(np.arange(num_subflows, dtype=np.int64), path_lengths)
        asg = FlowAssignment(
            num_flows=len(flows),
            num_subflows=num_subflows,
            entry_link=entry_link,
            entry_subflow=entry_subflow,
            subflow_flow=subflow_flow,
            subflow_weight=subflow_weight,
            flow_demand=flow_demand,
        )
        if self.assign_cache:
            self._assignments[key] = asg
            while len(self._assignments) > self.assign_cache:
                self._assignments.popitem(last=False)
        return asg

    def _ugal_paths(
        self,
        flow_demand: np.ndarray,
        first: np.ndarray,
        npaths: np.ndarray,
        nmin: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """UGAL's per-flow choice between minimal and Valiant candidates.

        Estimates link utilisation as if every flow routed minimally (the
        UGAL null hypothesis) and scores each candidate path as ``hop count
        x bottleneck utilisation`` (the flow-level analogue of UGAL's
        ``queue length x path length`` comparison).  When scoring a flow's
        own candidates, its own minimal-route contribution is subtracted
        from the load — a queue a packet samples never contains the packet
        itself, and without the exclusion a lone flow in an empty network
        would read its own load as congestion and misroute.  A flow whose
        cheapest
        Valiant candidate beats its cheapest minimal one spreads over its
        minimal group *plus* all strictly-cheaper Valiant candidates — the
        fluid-steady-state picture of UGAL, whose per-packet queue feedback
        keeps sending minimally while the detours are no worse, equalising
        load across both groups (an either/or choice would just move the
        congestion to whichever group was picked).  Otherwise the flow
        keeps the even split over its minimal group; ties — in particular
        the fully uncongested case, where every score is zero — keep the
        shorter minimal routes.  Deterministic for a given flow set and
        independent of flow order.

        Returns ``(path_ids, counts)``: the selected path ids of all flows
        concatenated, and how many each flow owns.
        """
        L = len(self.capacity)
        # Pass 1: link load if everyone routed minimally (even 1/k split).
        min_ids = _pair_range_path_ids(first, nmin)
        links, lengths = self.table.gather_links(min_ids)
        per_path_w = np.repeat(flow_demand / np.maximum(nmin, 1), nmin)
        load = np.bincount(
            links, weights=np.repeat(per_path_w, lengths), minlength=L
        )
        inv_capacity = np.where(self.capacity > 0, 1.0 / self.capacity, 0.0)
        # Pass 2: per-candidate congestion score, excluding the flow's own
        # minimal-route contribution from the load it samples.
        all_ids = _pair_range_path_ids(first, npaths)
        links_all, lengths_all = self.table.gather_links(all_ids)
        entry_starts = np.concatenate(([0], np.cumsum(lengths_all)))
        path_starts = np.cumsum(npaths) - npaths
        # Per-flow slices of the minimal-entry arrays (pass 1's layout).
        min_entry_ends = np.cumsum(
            np.add.reduceat(lengths, np.cumsum(nmin) - nmin)
        ) if len(lengths) else np.zeros(len(npaths), dtype=np.int64)
        own = np.zeros(L)
        ids: List[int] = []
        counts = np.empty(len(npaths), dtype=np.int64)
        for i in range(len(npaths)):
            m, k = int(nmin[i]), int(npaths[i])
            f0, s = int(first[i]), int(path_starts[i])
            # This flow's own minimal load (what pass 1 charged for it).
            o_start = int(min_entry_ends[i - 1]) if i > 0 else 0
            o_end = int(min_entry_ends[i])
            own_links = links[o_start:o_end]
            # Pass 1 charged demand/m per link occurrence of each of this
            # flow's m minimal paths; undo exactly that (occurrences stack).
            np.add.at(own, own_links, flow_demand[i] / max(m, 1))
            cheaper: List[int] = []
            if 0 < m < k:
                e0, e1 = int(entry_starts[s]), int(entry_starts[s + k])
                seg_links = links_all[e0:e1]
                exclusive = np.maximum(load[seg_links] - own[seg_links], 0.0)
                util = exclusive * inv_capacity[seg_links]
                # Every candidate has >= 1 link (self-pairs are rejected
                # upstream), so the segmented max never sees an empty segment.
                seg_bounds = (entry_starts[s : s + k] - e0).astype(np.int64)
                bottleneck = np.maximum.reduceat(util, seg_bounds)
                cost = lengths_all[s : s + k] * bottleneck
                best_minimal = cost[:m].min()
                cheaper = [f0 + m + j for j in range(k - m) if cost[m + j] < best_minimal]
            own[own_links] = 0.0
            end = m if 0 < m <= k else k
            chosen = list(range(f0, f0 + end)) + cheaper
            ids.extend(chosen)
            counts[i] = len(chosen)
        return np.asarray(ids, dtype=np.int64), counts

    # -------------------------------------------------------- symmetric solver
    def symmetric_rate(self, flows: Sequence[Flow]) -> PhaseResult:
        """Throughput when all flows progress at a common rate.

        Exact for symmetric patterns (ring phases, balanced-shift alltoall
        phases) where fairness forces every flow to the same rate: the common
        rate is ``min_e capacity_e / load_e`` with per-link load computed from
        the even multipath split and per-flow demand weights.
        """
        asg = self.assign(flows)
        weights = (
            asg.subflow_weight[asg.entry_subflow]
            * asg.flow_demand[asg.subflow_flow[asg.entry_subflow]]
        )
        load = np.bincount(asg.entry_link, weights=weights, minlength=len(self.capacity))
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(load > _EPS, self.capacity / np.maximum(load, _EPS), np.inf)
        rate = float(ratio.min()) if len(ratio) else 0.0
        bottleneck = int(np.argmin(ratio)) if len(ratio) else -1
        link_util = np.where(self.capacity > 0, load * rate / self.capacity, 0.0)
        return PhaseResult(
            flow_rates=asg.flow_demand * rate,
            link_utilization=link_util,
            bottleneck_link=bottleneck,
        )

    # ----------------------------------------------------------- max-min solver
    def maxmin_rates(self, flows: Sequence[Flow], *, max_iterations: int = 100000) -> PhaseResult:
        """Max-min fair per-flow rates via **incremental** progressive filling.

        Subflows (one per candidate path) are filled simultaneously; a flow's
        rate is the sum of its subflow rates.  Flow demands scale the filling
        speed, so a flow with demand 2 receives twice the rate of a demand-1
        flow sharing the same bottleneck (weighted max-min fairness).

        Unlike the reference solver
        (:func:`repro.sim.reference.reference_maxmin_rates`), per-link load
        is maintained incrementally: it is bincounted once, and each
        bottleneck round subtracts only the entries of the subflows frozen in
        that round — O(total entries) amortized over the whole solve instead
        of O(entries) per round.  Subflows to freeze are likewise found by
        gathering only the entries of *freshly* saturated links through a
        link-to-entries CSR index (a subflow crossing a previously saturated
        link was already frozen in that earlier round).  Rates match the
        reference to ~1e-12 relative (the subtraction reorders float
        summation); the parity test pins the two solvers together at 1e-9.
        """
        asg = self.assign(flows)
        sub_weights, fill_at_freeze, remaining = self._fill_levels(
            asg, max_iterations=max_iterations
        )
        return self._phase_result(asg, sub_weights, fill_at_freeze, remaining)

    def _fill_levels(
        self, asg: FlowAssignment, *, max_iterations: int = 100000
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The cold progressive-filling loop on an assignment.

        Returns ``(sub_weights, fill_at_freeze, remaining)``: the per-subflow
        demand shares, the fill level each subflow froze at, and the per-link
        remaining capacity at the fixed point.  Shared by
        :meth:`maxmin_rates`, :meth:`maxmin_warm_state` and the delta path's
        exact fallback — all three produce bit-identical levels.
        """
        L = len(self.capacity)
        # Per-entry weight: demand share carried by the subflow on that link.
        sub_weights = asg.subflow_weights()
        entry_weight = asg.entry_weights()
        sub_offsets = asg.subflow_offsets()
        # Sparse link-space compaction (default): every per-round array runs
        # over the links the assignment actually touches.  The compaction's
        # ``inverse`` is a monotone relabeling of ``entry_link``, so every
        # bincount sums entries in the same order as the dense path, the
        # headroom minimum matches (untouched links contribute +inf), and
        # the scattered-back ``remaining`` equals the dense output bitwise
        # (untouched links see a +0.0 load, and ``x - 0.0 * inc == x``).
        if _sparse_links_enabled():
            active_links, entry_link, link_offsets, link_subflows = asg.compact_link_index()
            nL = len(active_links)
            _ACTIVE_LINKS.observe(nL)
            capacity = self.capacity[active_links]
        else:
            active_links = None
            entry_link = asg.entry_link
            link_offsets, link_subflows = asg.link_index(L)
            nL = L
            capacity = self.capacity
        remaining = capacity.copy()
        active = np.ones(asg.num_subflows, dtype=bool)
        num_active = asg.num_subflows
        load = np.bincount(entry_link, weights=entry_weight, minlength=nL)
        # A subflow's rate is its weight times the cumulative fill level at
        # the moment it froze, so the loop only records freeze levels — no
        # per-round pass over the subflows.
        fill = 0.0
        fill_at_freeze = np.zeros(asg.num_subflows)
        # Loop-invariant pieces, hoisted: the saturation threshold and the
        # errstate guard for the 0/0 -> masked-away headroom entries.
        sat_threshold = _EPS * (1.0 + capacity)
        saturated_ever = np.zeros(nL, dtype=bool)
        iterations = 0
        with np.errstate(divide="ignore", invalid="ignore"):
            while num_active and nL:
                iterations += 1
                if iterations > max_iterations:  # pragma: no cover - defensive
                    raise RuntimeError("max-min filling did not converge")
                headroom = np.where(load > _EPS, remaining / np.maximum(load, _EPS), np.inf)
                inc = float(headroom.min())
                if not np.isfinite(inc):
                    break
                fill += inc
                remaining = remaining - load * inc
                # Freeze subflows crossing freshly saturated links; previously
                # saturated links cannot contribute (their crossing subflows
                # froze when they saturated), so only fresh links are gathered.
                sat_idx = np.nonzero(remaining <= sat_threshold)[0]
                new_idx = sat_idx[~saturated_ever[sat_idx]]
                if not len(new_idx):  # pragma: no cover - numerical safety
                    break
                saturated_ever[new_idx] = True
                frozen = link_subflows[_gather_ranges(link_offsets, new_idx)]
                frozen = frozen[active[frozen]]
                if len(frozen):
                    frozen = np.unique(frozen)
                    _FROZEN_PER_ROUND.observe(len(frozen))
                    active[frozen] = False
                    num_active -= len(frozen)
                    fill_at_freeze[frozen] = fill
                    gone = _gather_ranges(sub_offsets, frozen)
                    load = load - np.bincount(
                        entry_link[gone], weights=entry_weight[gone], minlength=nL
                    )
                # Active load on a saturated link is exactly zero (every
                # crossing subflow is now frozen); pin it to kill drift.
                load[new_idx] = 0.0
        # Subflows still active on exit (inf headroom: nothing left to fill
        # against) receive the full accumulated fill, as in the reference.
        if num_active:
            fill_at_freeze[active] = fill
        _MAXMIN_SOLVES.inc()
        _MAXMIN_ROUNDS.observe(iterations)
        if active_links is not None:
            remaining_full = self.capacity.copy()
            remaining_full[active_links] = remaining
            remaining = remaining_full
        return sub_weights, fill_at_freeze, remaining

    def _phase_result(
        self,
        asg: FlowAssignment,
        sub_weights: np.ndarray,
        fill_at_freeze: np.ndarray,
        remaining: np.ndarray,
    ) -> PhaseResult:
        """Assemble a :class:`PhaseResult` from solved freeze levels."""
        sub_rate = sub_weights * fill_at_freeze
        flow_rates = np.bincount(asg.subflow_flow, weights=sub_rate, minlength=asg.num_flows)
        used = self.capacity - remaining
        link_util = np.where(self.capacity > 0, used / self.capacity, 0.0)
        bottleneck = int(np.argmax(link_util)) if len(self.capacity) else -1
        return PhaseResult(
            flow_rates=flow_rates, link_utilization=link_util, bottleneck_link=bottleneck
        )

    # ------------------------------------------------------------ delta solves
    def maxmin_warm_state(
        self, flows: Sequence[Flow], *, max_iterations: int = 100000
    ) -> WarmState:
        """Cold-solve ``flows`` and capture the fixed point for delta solves.

        The returned :class:`WarmState` seeds
        :meth:`maxmin_rates_delta`; its ``result`` field holds the same
        :class:`PhaseResult` a plain :meth:`maxmin_rates` call produces.
        """
        flows = list(flows)
        asg = self.assign(flows)
        sub_weights, levels, remaining = self._fill_levels(
            asg, max_iterations=max_iterations
        )
        result = self._phase_result(asg, sub_weights, levels, remaining)
        return self._warm_state_from(flows, asg, sub_weights, levels, result)

    def _warm_state_from(
        self,
        flows: Sequence[Flow],
        asg: FlowAssignment,
        sub_weights: np.ndarray,
        levels: np.ndarray,
        result: PhaseResult,
        *,
        src: Optional[np.ndarray] = None,
        dst: Optional[np.ndarray] = None,
        demand: Optional[np.ndarray] = None,
    ) -> WarmState:
        if src is None:
            n = len(flows)
            src = np.fromiter((f.src for f in flows), dtype=np.int64, count=n)
            dst = np.fromiter((f.dst for f in flows), dtype=np.int64, count=n)
            demand = np.fromiter((f.demand for f in flows), dtype=np.float64, count=n)
        entry_rate = (sub_weights * levels)[asg.entry_subflow]
        used = np.bincount(asg.entry_link, weights=entry_rate, minlength=len(self.capacity))
        return WarmState(
            src=src,
            dst=dst,
            demand=demand,
            asg=asg,
            levels=levels,
            entry_rate=entry_rate,
            used=used,
            link_lam=self._link_lam_of(asg, levels, used),
            result=result,
        )

    def _link_lam_of(
        self, asg: FlowAssignment, levels: np.ndarray, used: np.ndarray
    ) -> np.ndarray:
        """Per-link water level: max crossing level on saturated links."""
        cap = self.capacity
        lam = np.full(len(cap), _NO_LAM)
        if asg.num_subflows and len(asg.entry_link):
            order = np.argsort(asg.entry_link, kind="stable")
            sl = asg.entry_link[order]
            slev = levels[asg.entry_subflow[order]]
            starts = np.empty(len(sl), dtype=bool)
            starts[0] = True
            np.not_equal(sl[1:], sl[:-1], out=starts[1:])
            firsts = np.flatnonzero(starts)
            gmax = np.maximum.reduceat(slev, firsts)
            ul = sl[firsts]
            sat = used[ul] >= cap[ul] - 2.0 * _EPS * (1.0 + cap[ul])
            lam[ul[sat]] = gmax[sat]
        return lam

    def maxmin_rates_delta(
        self,
        state: WarmState,
        flows: Sequence[Flow],
        *,
        changed: Optional[Sequence[int]] = None,
        max_iterations: int = 100000,
        max_attempts: int = 3,
        max_active_fraction: float = 0.85,
        want_state: bool = True,
    ) -> DeltaSolve:
        """Max-min rates of ``flows`` warm-started from a previous fixed point.

        ``state`` is the solved state of a *similar* flow list (from
        :meth:`maxmin_warm_state` or a previous delta solve).  The changed
        flows' routes are spliced into the previous assignment
        (:meth:`FlowAssignment.apply_delta`) instead of re-gathering every
        pair, and their freeze levels are re-solved against the previous
        solution's per-link residuals (the *relaxed fill*: every unchanged
        subflow keeps its prior level).  The candidate is then verified
        against the exact max-min optimality conditions over the **whole**
        instance — feasibility on every link, and a saturated bottleneck
        link on which its level is maximal for every positive-weight subflow
        (the Bertsekas–Gallager characterisation, whose satisfaction pins
        the unique max-min point).  Candidates that fail grow the re-solved
        set once or twice (``max_attempts``); if verification still fails,
        or the perturbation is too large a fraction of the instance, the
        solve **falls back to the cold solver exactly** — results agree with
        :meth:`maxmin_rates` to well under 1e-12 either way.

        ``changed`` optionally lists the indices of flows that differ (it
        must cover every difference; same-length flow lists only) to skip
        the O(flows) diff.  Policies with per-flow group selection (UGAL)
        always solve cold: their routing depends on the global load, so no
        local perturbation argument applies.

        ``want_state=False`` skips building the chainable
        :class:`WarmState` (``DeltaSolve.state`` is then ``None``); the
        :class:`PhaseResult` is still returned.  Search loops use this for
        proposals they are likely to reject — evaluating the objective does
        not need the state — and re-solve with ``want_state=True`` only on
        acceptance.
        """
        flows = list(flows)
        n_new = len(flows)
        n_old = int(state.asg.num_flows)
        if changed is not None and n_new == n_old:
            changed_idx = np.asarray(
                sorted({int(i) for i in changed}), dtype=np.int64
            )
            if len(changed_idx) and (
                int(changed_idx[0]) < 0 or int(changed_idx[-1]) >= n_new
            ):
                raise ValueError("changed flow indices out of range")
            src = state.src.copy()
            dst = state.dst.copy()
            demand = state.demand.copy()
            for i in changed_idx.tolist():
                f = flows[i]
                src[i], dst[i], demand[i] = f.src, f.dst, f.demand
        else:
            src = np.fromiter((f.src for f in flows), dtype=np.int64, count=n_new)
            dst = np.fromiter((f.dst for f in flows), dtype=np.int64, count=n_new)
            demand = np.fromiter((f.demand for f in flows), dtype=np.float64, count=n_new)
            m = min(n_old, n_new)
            diff = (
                (src[:m] != state.src[:m])
                | (dst[:m] != state.dst[:m])
                | (demand[:m] != state.demand[:m])
            )
            changed_idx = np.concatenate(
                [np.flatnonzero(diff), np.arange(m, n_new, dtype=np.int64)]
            )
        _DELTA_SOLVES.inc()
        _DELTA_CHANGED.observe(len(changed_idx))
        if n_new == n_old and not len(changed_idx):
            _DELTA_WARM.inc()
            return DeltaSolve(result=state.result, state=state, warm=True, changed=0, attempts=0)
        if n_new == 0 or n_old == 0 or self.policy.selects_group:
            # UGAL re-selects per-flow path groups from the *global* load, so
            # no local perturbation argument applies; degenerate sizes (all
            # flows new or all gone) have nothing to reuse either.
            _DELTA_FALLBACKS.inc()
            new_state = self.maxmin_warm_state(flows, max_iterations=max_iterations)
            return DeltaSolve(
                result=new_state.result,
                state=new_state,
                warm=False,
                changed=len(changed_idx),
                attempts=0,
            )
        # The splice is valid regardless of how the solve goes.
        new_asg = self._assign_delta(state.asg, changed_idx, n_new, src, dst, demand)
        attempts = 0
        levels = used = link_lam = ae = ae_rate = active_set = None
        if len(changed_idx) <= max(4.0, max_active_fraction * n_new):
            (
                levels,
                used,
                link_lam,
                ae,
                ae_rate,
                active_set,
                attempts,
            ) = self._warm_levels(
                state, new_asg, changed_idx, max_attempts, max_active_fraction
            )
        if levels is not None:
            _DELTA_WARM.inc()
            cap = self.capacity
            if n_new == n_old:
                # Only the active subflows' rates moved: patch the prior
                # per-flow totals instead of re-reducing the whole instance.
                flow_rates = state.result.flow_rates.copy()
                new_fso = new_asg.flow_subflow_offsets()
                fpatch = np.unique(new_asg.subflow_flow[active_set])
                ps = _gather_ranges(new_fso, fpatch)
                plen = new_fso[fpatch + 1] - new_fso[fpatch]
                p_off = np.concatenate(([0], np.cumsum(plen[:-1]))).astype(np.int64)
                sw_ps = new_asg.subflow_weight[ps] * new_asg.flow_demand[
                    new_asg.subflow_flow[ps]
                ]
                flow_rates[fpatch] = np.add.reduceat(sw_ps * levels[ps], p_off)
            else:
                flow_rates = np.bincount(
                    new_asg.subflow_flow,
                    weights=new_asg.subflow_weights() * levels,
                    minlength=n_new,
                )
            link_util = np.where(cap > 0, used / cap, 0.0)
            bottleneck = int(np.argmax(link_util)) if len(cap) else -1
            result = PhaseResult(
                flow_rates=flow_rates,
                link_utilization=link_util,
                bottleneck_link=bottleneck,
            )
            new_state = None
            if want_state:
                entry_rate = _splice_flow_array(
                    state.entry_rate,
                    state.asg.flow_entry_offsets(),
                    new_asg.flow_entry_offsets(),
                    changed_idx,
                    min(n_old, n_new),
                )
                entry_rate[ae] = ae_rate
                new_state = WarmState(
                    src=src,
                    dst=dst,
                    demand=demand,
                    asg=new_asg,
                    levels=levels,
                    entry_rate=entry_rate,
                    used=used,
                    link_lam=link_lam,
                    result=result,
                )
            return DeltaSolve(
                result=result,
                state=new_state,
                warm=True,
                changed=len(changed_idx),
                attempts=attempts,
            )
        # Exact fallback: the cold fill on the spliced assignment.
        _DELTA_FALLBACKS.inc()
        sw, lv, remaining = self._fill_levels(new_asg, max_iterations=max_iterations)
        result = self._phase_result(new_asg, sw, lv, remaining)
        new_state = None
        if want_state:
            new_state = self._warm_state_from(
                flows, new_asg, sw, lv, result, src=src, dst=dst, demand=demand
            )
        return DeltaSolve(
            result=result,
            state=new_state,
            warm=False,
            changed=len(changed_idx),
            attempts=attempts,
        )

    def _assign_delta(
        self,
        asg: FlowAssignment,
        changed_idx: np.ndarray,
        n_new: int,
        src: np.ndarray,
        dst: np.ndarray,
        demand: np.ndarray,
    ) -> FlowAssignment:
        """Route only the changed pairs and splice them into ``asg``."""
        csrc = src[changed_idx]
        cdst = dst[changed_idx]
        if (csrc == cdst).any():
            raise ValueError("flows must have distinct endpoints")
        first, npaths = self.table.pair_arrays(
            self._rank_nodes[csrc], self._rank_nodes[cdst]
        )
        path_ids = _pair_range_path_ids(first, npaths)
        seg_weights = self.table.gather_path_weights(path_ids)
        seg_links, seg_lengths = self.table.gather_links(path_ids)
        _DELTA_ASSIGNS.inc()
        return asg.apply_delta(
            changed_idx, n_new, demand[changed_idx], npaths, seg_weights, seg_links, seg_lengths
        )

    def _warm_levels(
        self,
        state: WarmState,
        new_asg: FlowAssignment,
        changed_idx: np.ndarray,
        max_attempts: int,
        max_active_fraction: float,
    ):
        """Warm-start candidate levels for the spliced assignment.

        Carries every unchanged flow's freeze levels across the renumbering,
        then seeds the *active set* — the subflows whose levels the
        perturbation can move — by a directional closure over the prior
        bottleneck hierarchy: starting from the saturated links the changed
        flows touch, a link recruits the crossing subflows at (or above) its
        water level, and a recruited subflow recruits its other saturated
        links whose water level is at or above its own.  Max-min cascades
        propagate upward through bottleneck levels, so the closure tracks
        the true cascade instead of flooding the instance.  The active set
        is re-solved against the prior solution's residual capacities
        (:meth:`_relaxed_fill`) and verified against the exact optimality
        conditions (:meth:`_verify_delta`).  On verification failure the
        active set grows by the subflows crossing the violated links and the
        fill is retried, up to ``max_attempts`` times.  Returns ``(levels,
        used, link_lam, ae, ae_rate, active_set, attempts)`` or all-``None``
        plus the attempt count when the cold solver must take over.
        """
        fail = (None, None, None, None, None, None)
        old = state.asg
        n_old, n_new = old.num_flows, new_asg.num_flows
        n_common = min(n_old, n_new)
        cap = self.capacity
        L = len(cap)
        old_fso = old.flow_subflow_offsets()
        new_fso = new_asg.flow_subflow_offsets()
        old_seo = old.subflow_offsets()
        new_seo = new_asg.subflow_offsets()
        changed_mask = np.zeros(n_new, dtype=bool)
        changed_mask[changed_idx] = True
        levels = _splice_flow_array(
            state.levels, old_fso, new_fso, changed_idx, n_common
        )
        # Links whose load the perturbation touches: the changed flows' old
        # routes (load leaves) and new routes (load arrives), plus dropped
        # flows' routes on shrink.
        changed_before = changed_idx[changed_idx < n_common]
        dropped = (
            np.arange(n_new, n_old, dtype=np.int64)
            if n_old > n_new
            else np.empty(0, dtype=np.int64)
        )
        gone_subs = _gather_ranges(old_fso, np.concatenate([changed_before, dropped]))
        gone_e = _gather_ranges(old_seo, gone_subs)
        seg_subs = _gather_ranges(new_fso, changed_idx)
        seg_e = _gather_ranges(new_seo, seg_subs)
        dirty = np.zeros(L, dtype=bool)
        if len(gone_e):
            dirty[old.entry_link[gone_e]] = True
        dirty[new_asg.entry_link[seg_e]] = True
        # Directional closure over the prior bottleneck hierarchy.  A dirty
        # link's water level moves to roughly ``lam * W / (W + net_added)``
        # (weight-proportional drop when the changed flows add net load, no
        # drop when load only leaves), so residents at or above that
        # estimate are recruited; from there, a moved subflow can shift load
        # on its other links whose water level is at or above its own,
        # recruiting the residents at (or filling above) those levels in
        # turn.  Upward steps dominate real cascades, so the climb tracks
        # them without flooding the instance.  This is a seed heuristic —
        # exactness comes from :meth:`_verify_delta` plus expansion (which
        # recruits *every* resident of a violated link) and cold fallback.
        lam = state.link_lam
        sat_link = lam < _NO_LAM
        lo, ls = old.link_index(L)
        start0 = np.flatnonzero(dirty & sat_link)
        if len(start0):
            # Water-level-drop estimate on the seeded links only (an
            # underestimate recruits more residents — the safe direction).
            seg_sub = new_asg.entry_subflow[seg_e]
            seg_w = new_asg.subflow_weight[seg_sub] * new_asg.flow_demand[
                new_asg.subflow_flow[seg_sub]
            ]
            # bincount of an empty input yields int64 even with weights.
            add_w = np.bincount(
                new_asg.entry_link[seg_e], weights=seg_w, minlength=L
            ).astype(np.float64, copy=False)
            if len(gone_e):
                add_w -= np.bincount(
                    old.entry_link[gone_e],
                    weights=old.entry_weights()[gone_e],
                    minlength=L,
                )
            np.maximum(add_w, 0.0, out=add_w)
            lam_pos = np.where(sat_link & (lam > 0.0), lam, 1.0)
            w_est = state.used / lam_pos
            with np.errstate(divide="ignore", invalid="ignore"):
                thr0 = np.where(add_w > 0.0, lam * w_est / (w_est + add_w), lam)
        else:
            thr0 = None
        sub_seen = np.zeros(old.num_subflows, dtype=bool)
        if len(gone_subs):
            sub_seen[gone_subs] = True  # gone: accounted separately
        link_seen = np.zeros(L, dtype=bool)
        budget = max_active_fraction * max(new_asg.num_subflows, 1)
        seen_count = [0]

        def _closure(start_links: np.ndarray, thr: Optional[np.ndarray]) -> bool:
            frontier = start_links
            first = True
            for _ in range(64):
                if not len(frontier):
                    return True
                link_seen[frontier] = True
                cross = ls[_gather_ranges(lo, frontier)]
                if first:
                    first = False
                    if thr is None:
                        cand = cross
                    else:
                        t_rep = np.repeat(
                            thr[frontier], lo[frontier + 1] - lo[frontier]
                        )
                        cand = cross[
                            state.levels[cross] >= t_rep - 1e-9 * (1.0 + np.abs(t_rep))
                        ]
                else:
                    lam_rep = np.repeat(
                        lam[frontier], lo[frontier + 1] - lo[frontier]
                    )
                    cand = cross[
                        state.levels[cross] >= lam_rep - 1e-9 * (1.0 + lam_rep)
                    ]
                cand = cand[~sub_seen[cand]]
                if not len(cand):
                    return True
                cand = np.unique(cand)
                sub_seen[cand] = True
                seen_count[0] += len(cand)
                if seen_count[0] + len(seg_subs) > budget:
                    return False
                ce = _gather_ranges(old_seo, cand)
                cl = old.entry_link[ce]
                lvl_rep = np.repeat(
                    state.levels[cand], old_seo[cand + 1] - old_seo[cand]
                )
                up = (
                    sat_link[cl]
                    & ~link_seen[cl]
                    & (lam[cl] >= lvl_rep - 1e-9 * (1.0 + lvl_rep))
                )
                frontier = np.unique(cl[up])
            return False  # no closure after 64 layers: effectively global

        def _active_from_seen() -> np.ndarray:
            seen = np.flatnonzero(sub_seen)
            sf = old.subflow_flow[seen]
            keep = sf < n_common
            seen, sf = seen[keep], sf[keep]
            keep = ~changed_mask[sf]
            seen, sf = seen[keep], sf[keep]
            return np.unique(
                np.concatenate([seg_subs, seen + (new_fso[sf] - old_fso[sf])])
            )

        if not _closure(start0, thr0):
            return fail + (0,)
        active_set = _active_from_seen()
        keep_old = np.ones(old.num_subflows, dtype=bool)
        if len(gone_subs):
            keep_old[gone_subs] = False
        attempts = 0
        while attempts < max_attempts:
            attempts += 1
            if len(active_set) > budget:
                return fail + (attempts,)
            # Per-link load the re-solved set (plus everything gone) held in
            # the prior solution; subtracting it leaves the constants' load.
            af = new_asg.subflow_flow[active_set]
            unch = ~changed_mask[af]
            old_active = active_set[unch] - (new_fso[af[unch]] - old_fso[af[unch]])
            oe = _gather_ranges(old_seo, np.concatenate([old_active, gone_subs]))
            freed = np.bincount(
                old.entry_link[oe], weights=state.entry_rate[oe], minlength=L
            )
            base_used = state.used - freed
            ae = _gather_ranges(new_seo, active_set)
            ae_link = new_asg.entry_link[ae]
            # Demand shares of the active subflows (and their entries),
            # gathered directly: the O(entries) cached weight arrays of the
            # candidate assignment are never materialised on the warm path.
            aw = new_asg.subflow_weight[active_set] * new_asg.flow_demand[
                new_asg.subflow_flow[active_set]
            ]
            ae_w = np.repeat(aw, new_seo[active_set + 1] - new_seo[active_set])
            self._relaxed_fill(
                new_asg, levels, active_set, ae, ae_link, ae_w, aw, base_used
            )
            ok, bad_links, used, link_lam, ae_rate = self._verify_delta(
                state,
                new_asg,
                levels,
                active_set,
                ae,
                ae_link,
                ae_w,
                aw,
                base_used,
                dirty,
                keep_old,
                old_active,
            )
            if ok:
                _DELTA_ACTIVE.observe(len(active_set))
                return levels, used, link_lam, ae, ae_rate, active_set, attempts
            # Expansion: close over the violated links (all their residents,
            # then the upward climb) — one attempt absorbs the whole reachable
            # part of a mispredicted cascade instead of a single BFS layer.
            if not _closure(np.flatnonzero(bad_links), None):
                return fail + (attempts,)
            grown = np.unique(
                np.concatenate(
                    [
                        _active_from_seen(),
                        new_asg.entry_subflow[
                            np.flatnonzero(bad_links[new_asg.entry_link])
                        ],
                    ]
                )
            )
            if len(grown) == len(active_set):  # no progress: give up
                return fail + (attempts,)
            active_set = grown
        return fail + (attempts,)

    def _relaxed_fill(
        self,
        new_asg: FlowAssignment,
        levels: np.ndarray,
        active_set: np.ndarray,
        ae: np.ndarray,
        ae_link: np.ndarray,
        ae_w: np.ndarray,
        aw: np.ndarray,
        base_used: np.ndarray,
    ) -> None:
        """Progressive filling of ``active_set`` against residual capacities.

        Non-active subflows are constants at their prior levels;
        ``base_used`` carries their per-link load (the prior used bandwidth
        minus everything re-solved or gone), so each crossed link offers
        ``capacity - base_used`` of room.  Writes the solved levels into
        ``levels[active_set]`` in place (zero-weight subflows get level 0;
        their rate is 0 regardless).  This is a candidate generator —
        correctness comes from :meth:`_verify_delta`.
        """
        cap = self.capacity
        new_seo = new_asg.subflow_offsets()
        uL, ae_clink = np.unique(ae_link, return_inverse=True)
        nL = len(uL)
        _ACTIVE_LINKS.observe(nL)
        residual = cap[uL] - base_used[uL]
        np.maximum(residual, 0.0, out=residual)
        # Mini progressive fill on the compact link set (the cold loop's
        # structure at O(active) scale).  The vectorised part of each round
        # — the headroom scan and the load/residual updates — stays numpy;
        # the per-event bookkeeping (which subflows freeze at which link)
        # runs on python lists: events touch a handful of elements each, and
        # at that size scalar indexing beats an array-dispatch cascade.
        nA = len(active_set)
        active = aw > 0.0
        num_active = int(active.sum())
        ae_lsub = active_set.searchsorted(new_asg.entry_subflow[ae])
        order = np.argsort(ae_clink, kind="stable")
        clink_off = np.concatenate(
            ([0], np.cumsum(np.bincount(ae_clink, minlength=nL)))
        ).astype(np.int64)
        clink_sub_l = ae_lsub[order].tolist()
        clink_off_l = clink_off.tolist()
        a_lengths = new_seo[active_set + 1] - new_seo[active_set]
        asub_off = np.concatenate(([0], np.cumsum(a_lengths))).astype(np.int64)
        asub_off_l = asub_off.tolist()
        ae_clink_l = ae_clink.tolist()
        ae_w_l = ae_w.tolist()
        active_l = active.tolist()
        lvl_l = [0.0] * nA
        load = np.bincount(ae_clink, weights=ae_w, minlength=nL)
        remaining = residual
        sat_thr_c = _EPS * (1.0 + cap[uL])
        head = np.empty(nL)
        tmp = np.empty(nL)
        sat_ever = [False] * nL
        inf = float("inf")
        fill = 0.0
        rounds = 0
        max_rounds = 4 * nA + 16
        while num_active and rounds <= max_rounds:
            rounds += 1
            head.fill(inf)
            np.divide(remaining, load, out=head, where=load > _EPS)
            inc = float(head.min()) if nL else inf
            if not inc < inf:  # every crossed link drained: no constraint left
                break
            fill += inc
            np.multiply(load, inc, out=tmp)
            np.subtract(remaining, tmp, out=remaining)
            newly = [
                li for li in np.flatnonzero(remaining <= sat_thr_c).tolist()
                if not sat_ever[li]
            ]
            if not newly:
                break
            frozen = []
            for li in newly:
                sat_ever[li] = True
                for s in clink_sub_l[clink_off_l[li] : clink_off_l[li + 1]]:
                    if active_l[s]:
                        active_l[s] = False
                        frozen.append(s)
            if frozen:
                num_active -= len(frozen)
                if len(frozen) > 48:
                    fr = np.asarray(frozen, dtype=np.int64)
                    gone = _gather_ranges(asub_off, fr)
                    load -= np.bincount(
                        ae_clink[gone], weights=ae_w[gone], minlength=nL
                    )
                    for s in frozen:
                        lvl_l[s] = fill
                else:
                    for s in frozen:
                        lvl_l[s] = fill
                        for e in range(asub_off_l[s], asub_off_l[s + 1]):
                            load[ae_clink_l[e]] -= ae_w_l[e]
            for li in newly:
                load[li] = 0.0
        lvl = np.asarray(lvl_l)
        if num_active:
            # Unfrozen active subflows have no saturated bottleneck in the
            # relaxed instance; verification rejects them (correctly — they
            # should have filled further against some link that must then be
            # in the active set's closure).
            lvl[np.asarray(active_l)] = fill
        lvl[aw <= 0.0] = 0.0
        levels[active_set] = lvl

    def _verify_delta(
        self,
        state: WarmState,
        new_asg: FlowAssignment,
        levels: np.ndarray,
        active_set: np.ndarray,
        ae: np.ndarray,
        ae_link: np.ndarray,
        ae_w: np.ndarray,
        aw: np.ndarray,
        base_used: np.ndarray,
        dirty: np.ndarray,
        keep_old: np.ndarray,
        old_active: np.ndarray,
    ):
        """Exact max-min optimality check, incremental over touched links.

        A feasible allocation where every positive-weight subflow has a
        saturated link on which its level is maximal *is* the unique max-min
        fixed point (feasible use is monotone in the fill, so final
        feasibility implies trajectory feasibility).  Every rate change is
        confined to the touched links ``T`` — the dirty links plus the
        active subflows' links — so elsewhere ``used``, saturation, and the
        per-link water level carry over from ``state`` verbatim, and the
        prior state's certificates keep holding for subflows crossing no
        touched link.  Only the active subflows and the persisting constants
        crossing ``T`` are re-checked (gathered via the old assignment's
        link-to-entries index, so the check is O(T), not O(entries)).  The
        tolerance is tight: the relaxed fill reproduces true levels to
        ~1e-13, while structurally-wrong candidates miss by far more; a
        false reject merely costs a retry or a cold solve.  Returns ``(ok,
        bad_links, used, link_lam, ae_rate)``; on failure ``bad_links``
        marks the oversubscribed links and every link of each
        bottleneck-less subflow, for the active-set expansion (``link_lam``
        and ``ae_rate`` are then None).
        """
        cap = self.capacity
        L = len(cap)
        sat_thr = _EPS * (1.0 + cap)
        old = state.asg
        old_seo = old.subflow_offsets()
        new_seo = new_asg.subflow_offsets()
        ae_lev = levels[new_asg.entry_subflow[ae]]
        ae_rate = ae_w * ae_lev
        used = base_used + np.bincount(ae_link, weights=ae_rate, minlength=L)
        over = used > cap + sat_thr
        satur = used >= cap - 2.0 * sat_thr
        T = dirty.copy()
        T[ae_link] = True
        # Persisting constants' entries on touched links.  The re-solved
        # subflows' old entries and gone flows' entries are excluded: the
        # former are represented in ``ae`` at their new levels, the latter
        # left the instance.
        rep = keep_old.copy()
        rep[old_active] = False
        lo_e, _ = old.link_index(L)
        sel = old.link_entry_order(L)[_gather_ranges(lo_e, np.flatnonzero(T))]
        osub = old.entry_subflow[sel]
        keep_sel = rep[osub]
        sel = sel[keep_sel]
        osub = osub[keep_sel]
        olev = state.levels[osub]
        # Water levels on touched links, from every crossing entry.
        all_l = np.concatenate([old.entry_link[sel], ae_link])
        all_v = np.concatenate([olev, ae_lev])
        link_lam = state.link_lam.copy()
        link_lam[T] = _NO_LAM
        if len(all_l):
            order = np.argsort(all_l, kind="stable")
            l_s = all_l[order]
            v_s = all_v[order]
            starts = np.empty(len(l_s), dtype=bool)
            starts[0] = True
            np.not_equal(l_s[1:], l_s[:-1], out=starts[1:])
            firsts = np.flatnonzero(starts)
            gmax = np.maximum.reduceat(v_s, firsts)
            ul = l_s[firsts]
            sat_ul = satur[ul]
            link_lam[ul[sat_ul]] = gmax[sat_ul]
        # Condition B for the active subflows ...
        a_len = new_seo[active_set + 1] - new_seo[active_set]
        if len(active_set):
            a_off = np.concatenate(([0], np.cumsum(a_len[:-1]))).astype(np.int64)
            lam_ae = link_lam[ae_link]
            ok_e = satur[ae_link] & (
                ae_lev >= lam_ae - 1e-11 * (1.0 + np.minimum(lam_ae, 1.0e6))
            )
            okA = np.logical_or.reduceat(ok_e, a_off)
            failA = (aw > 0.0) & ~okA
        else:
            # A pure removal can leave nothing to re-solve: the surviving
            # flows' old certificates are re-checked below as constants.
            failA = np.zeros(0, dtype=bool)
        # ... and for the persisting constants crossing T: their own levels
        # did not move, but their certificate links' water levels may have.
        cs = np.unique(osub)
        ce = _gather_ranges(old_seo, cs)
        c_len = old_seo[cs + 1] - old_seo[cs]
        cl = old.entry_link[ce]
        lam_c = link_lam[cl]
        ok_ce = satur[cl] & (
            np.repeat(state.levels[cs], c_len)
            >= lam_c - 1e-11 * (1.0 + np.minimum(lam_c, 1.0e6))
        )
        if len(ce):
            c_off = np.concatenate(([0], np.cumsum(c_len[:-1]))).astype(np.int64)
            okC = np.logical_or.reduceat(ok_ce, c_off)
        else:
            okC = np.zeros(0, dtype=bool)
        failC = (old.subflow_weights()[cs] > 0.0) & ~okC
        if not over.any() and not failA.any() and not failC.any():
            return True, None, used, link_lam, ae_rate
        bad = over.copy()
        if failA.any():
            bad[ae_link[np.repeat(failA, a_len)]] = True
        if failC.any():
            bad[cl[np.repeat(failC, c_len)]] = True
        return False, bad, used, None, None

    def maxmin_rates_delta_batch(
        self,
        state: WarmState,
        flow_sets: Sequence[Sequence[Flow]],
        *,
        changed: Optional[Sequence[Optional[Sequence[int]]]] = None,
        max_iterations: int = 100000,
        max_attempts: int = 3,
        max_active_fraction: float = 0.85,
    ) -> List[DeltaSolve]:
        """Warm-started delta solves of **many candidates at once**.

        Every candidate perturbs the *same* prior fixed point ``state``, so
        the warm machinery of :meth:`maxmin_rates_delta` — the directional
        closure that seeds each candidate's active set, the relaxed fill of
        those sets against the prior residuals, and the exact optimality
        verification — runs **batched** in virtual link space
        (``candidate * num_links + link``): each BFS layer, fill round, and
        verification pass costs one set of NumPy dispatches for the whole
        batch instead of one per candidate.  This is what makes per-neighbor
        evaluation cheap inside a search loop: at fig12 scale the solve cost
        is dispatch-dominated, and the batch divides the dispatch count by
        the batch width.  Candidates whose closure floods, whose fill fails
        verification ``max_attempts`` times, or whose perturbation is too
        large fall back together through :meth:`_batch_fill`, whose rounds
        are bit-identical to solo cold solves — so every returned result
        matches :meth:`maxmin_rates` to well under 1e-12, warm or not.

        ``changed[j]`` optionally lists candidate ``j``'s changed flow
        indices (same contract as :meth:`maxmin_rates_delta`).  Results are
        objective-only: ``DeltaSolve.state`` is always ``None`` — re-solve
        an accepted candidate with ``maxmin_rates_delta(want_state=True)``
        to advance the chain.  Candidates with a different flow count than
        ``state`` (or a group-selecting policy like UGAL) are solved through
        the sequential path.
        """
        flow_sets = [list(fs) for fs in flow_sets]
        C = len(flow_sets)
        _DELTA_BATCH.observe(C)
        if C == 0:
            return []
        n = int(state.asg.num_flows)
        changed_list = list(changed) if changed is not None else [None] * C
        if len(changed_list) != C:
            raise ValueError("changed must align with flow_sets")
        if self.policy.selects_group or n == 0 or any(
            len(fs) != n for fs in flow_sets
        ):
            return [
                self.maxmin_rates_delta(
                    state,
                    fs,
                    changed=ch,
                    max_iterations=max_iterations,
                    max_attempts=max_attempts,
                    max_active_fraction=max_active_fraction,
                    want_state=False,
                )
                for fs, ch in zip(flow_sets, changed_list)
            ]
        old = state.asg
        cap = self.capacity
        L = len(cap)
        nso = old.num_subflows
        old_fso = old.flow_subflow_offsets()
        old_seo = old.subflow_offsets()
        old_el = old.entry_link
        old_es = old.entry_subflow
        old_sff = old.subflow_flow
        old_sw = old.subflow_weights()
        old_ew = old.entry_weights()
        lo, ls = old.link_index(L)
        leo = old.link_entry_order(L)
        lam = state.link_lam
        sat_link = lam < _NO_LAM
        olev = state.levels
        # Exact at-level weight per saturated link (the weight the new
        # segment traffic competes with): one O(entries) pass, amortised
        # over the whole batch.  Tighter than the used/lam overestimate
        # the sequential path uses, so the layer-0 recruitment threshold
        # under-recruits less and verification retries are rarer.
        lam_e = lam[old_el]
        at_lam = (lam_e < _NO_LAM) & (
            olev[old_es] >= lam_e - 1e-9 * (1.0 + lam_e)
        )
        w_est = np.bincount(old_el, weights=old_ew * at_lam, minlength=L)
        np.maximum(w_est, 1e-12, out=w_est)

        # ------------------------------------------------ per-candidate setup
        # Evaluation candidates never materialise the spliced assignment:
        # the active set is described by old-CSR slices plus the changed
        # pairs' freshly gathered segment routes, and the warm finalize
        # patches flow rates by delta.  Only fallbacks splice for real.
        out: List[Optional[DeltaSolve]] = [None] * C
        chg_idx: List[Optional[np.ndarray]] = [None] * C
        chg_mask_c: List[Optional[np.ndarray]] = [None] * C
        chg_src: List[Optional[np.ndarray]] = [None] * C
        chg_dst: List[Optional[np.ndarray]] = [None] * C
        chg_dem: List[Optional[np.ndarray]] = [None] * C
        gone_subs_c: List[Optional[np.ndarray]] = [None] * C
        gone_e_c: List[Optional[np.ndarray]] = [None] * C
        npaths_c: List[Optional[np.ndarray]] = [None] * C
        seg_links_c: List[Optional[np.ndarray]] = [None] * C
        seg_lengths_c: List[Optional[np.ndarray]] = [None] * C
        seg_w_c: List[Optional[np.ndarray]] = [None] * C
        seg_ew_c: List[Optional[np.ndarray]] = [None] * C
        fallbacks: List[int] = []
        pend: List[int] = []
        dirty_flat = np.zeros(C * L, dtype=bool)
        thr_flat = np.full(C * L, _NO_LAM)
        start_parts: List[np.ndarray] = []
        for j, fs in enumerate(flow_sets):
            ch = changed_list[j]
            if ch is not None:
                cidx = np.asarray(sorted({int(i) for i in ch}), dtype=np.int64)
                if len(cidx) and (
                    int(cidx[0]) < 0 or int(cidx[-1]) >= n
                ):
                    raise ValueError("changed flow indices out of range")
                src = state.src.copy()
                dst = state.dst.copy()
                dem = state.demand.copy()
                for i in cidx.tolist():
                    f = fs[i]
                    src[i], dst[i], dem[i] = f.src, f.dst, f.demand
            else:
                src = np.fromiter((f.src for f in fs), dtype=np.int64, count=n)
                dst = np.fromiter((f.dst for f in fs), dtype=np.int64, count=n)
                dem = np.fromiter(
                    (f.demand for f in fs), dtype=np.float64, count=n
                )
                diff = (
                    (src != state.src)
                    | (dst != state.dst)
                    | (dem != state.demand)
                )
                cidx = np.flatnonzero(diff)
            _DELTA_SOLVES.inc()
            _DELTA_CHANGED.observe(len(cidx))
            chg_idx[j] = cidx
            chg_src[j], chg_dst[j], chg_dem[j] = src, dst, dem
            if not len(cidx):
                _DELTA_WARM.inc()
                out[j] = DeltaSolve(
                    result=state.result,
                    state=state,
                    warm=True,
                    changed=0,
                    attempts=0,
                )
                continue
            if len(cidx) > max(4.0, max_active_fraction * n):
                fallbacks.append(j)
                continue
            csrc = src[cidx]
            cdst = dst[cidx]
            if (csrc == cdst).any():
                raise ValueError("flows must have distinct endpoints")
            first, npaths = self.table.pair_arrays(
                self._rank_nodes[csrc], self._rank_nodes[cdst]
            )
            path_ids = _pair_range_path_ids(first, npaths)
            seg_pw = self.table.gather_path_weights(path_ids)
            seg_links, seg_lengths = self.table.gather_links(path_ids)
            seg_w = seg_pw * np.repeat(dem[cidx], npaths)
            seg_ew = np.repeat(seg_w, seg_lengths)
            npaths_c[j] = npaths
            seg_links_c[j] = seg_links
            seg_lengths_c[j] = seg_lengths
            seg_w_c[j] = seg_w
            seg_ew_c[j] = seg_ew
            cm = np.zeros(n, dtype=bool)
            cm[cidx] = True
            chg_mask_c[j] = cm
            gone_subs = _gather_ranges(old_fso, cidx)
            gone_e = _gather_ranges(old_seo, gone_subs)
            gone_subs_c[j] = gone_subs
            gone_e_c[j] = gone_e
            row = dirty_flat[j * L : (j + 1) * L]
            if len(gone_e):
                row[old_el[gone_e]] = True
            row[seg_links] = True
            s0 = np.flatnonzero(row & sat_link)
            if len(s0):
                # bincount of an empty input yields int64 even with weights.
                add_w = np.bincount(
                    seg_links, weights=seg_ew, minlength=L
                ).astype(np.float64, copy=False)
                if len(gone_e):
                    add_w -= np.bincount(
                        old_el[gone_e], weights=old_ew[gone_e], minlength=L
                    )
                # Thresholds are only read on the closure's first frontier,
                # which is exactly s0 — no need for a full-L row.
                a0 = np.maximum(add_w[s0], 0.0)
                thr_flat[s0 + j * L] = np.where(
                    a0 > 0.0,
                    lam[s0] * w_est[s0] / (w_est[s0] + a0),
                    lam[s0],
                )
                start_parts.append(s0 + j * L)
            pend.append(j)

        # --------------------------------------------------- batched closure
        sub_seen = np.zeros(C * nso, dtype=bool)
        link_seen = np.zeros(C * L, dtype=bool)
        alive = np.zeros(C, dtype=bool)
        seen_count = np.zeros(C, dtype=np.int64)
        budget_arr = np.full(C, -1.0)
        seg_len_arr = np.zeros(C, dtype=np.int64)
        for j in pend:
            alive[j] = True
            nsub_new = nso - len(gone_subs_c[j]) + len(seg_w_c[j])
            budget_arr[j] = max_active_fraction * max(nsub_new, 1)
            seg_len_arr[j] = len(seg_w_c[j])
            gs = gone_subs_c[j]
            if len(gs):
                sub_seen[j * nso + gs] = True
        tol = 1e-9

        def _closure_batch(
            frontier: np.ndarray, *, use_thr: bool, recruit_all: bool
        ) -> None:
            """Batched BFS over the prior bottleneck hierarchy; layer-exact
            per candidate (candidates live in disjoint virtual id ranges).
            Over-budget or non-converging candidates are marked dead."""
            first = True
            for _ in range(64):
                if not len(frontier):
                    return
                fc = frontier // L
                keep = alive[fc]
                if not keep.all():
                    frontier = frontier[keep]
                    fc = fc[keep]
                if not len(frontier):
                    return
                link_seen[frontier] = True
                fl = frontier - fc * L
                cnt = lo[fl + 1] - lo[fl]
                cross = ls[_gather_ranges(lo, fl)]
                cross_c = np.repeat(fc, cnt)
                if first and recruit_all:
                    vsub = cross_c * nso + cross
                elif first and use_thr:
                    t_rep = np.repeat(thr_flat[frontier], cnt)
                    m = olev[cross] >= t_rep - tol * (1.0 + np.abs(t_rep))
                    vsub = (cross_c * nso + cross)[m]
                else:
                    lam_rep = np.repeat(lam[fl], cnt)
                    m = olev[cross] >= lam_rep - tol * (1.0 + lam_rep)
                    vsub = (cross_c * nso + cross)[m]
                first = False
                vsub = vsub[~sub_seen[vsub]]
                if not len(vsub):
                    return
                vsub = np.unique(vsub)
                sub_seen[vsub] = True
                vc = vsub // nso
                seen_count[:] += np.bincount(vc, minlength=C)
                dead = alive & (seen_count + seg_len_arr > budget_arr)
                if dead.any():
                    alive[dead] = False
                    keepc = alive[vc]
                    vsub = vsub[keepc]
                    vc = vc[keepc]
                    if not len(vsub):
                        return
                sub = vsub - vc * nso
                cnt2 = old_seo[sub + 1] - old_seo[sub]
                cl = old_el[_gather_ranges(old_seo, sub)]
                vcl = np.repeat(vc, cnt2) * L + cl
                lvl_rep = np.repeat(olev[sub], cnt2)
                up = (
                    sat_link[cl]
                    & ~link_seen[vcl]
                    & (lam[cl] >= lvl_rep - tol * (1.0 + lvl_rep))
                )
                frontier = np.unique(vcl[up])
            if len(frontier):  # no closure after 64 layers: effectively global
                alive[np.unique(frontier // L)] = False

        if start_parts:
            _closure_batch(
                np.concatenate(start_parts), use_thr=True, recruit_all=False
            )

        def _active_from_seen(j: int) -> np.ndarray:
            """Recruited *old* subflow ids (unchanged flows only); the
            changed flows' segment subflows are always active."""
            seen = np.flatnonzero(sub_seen[j * nso : (j + 1) * nso])
            return seen[~chg_mask_c[j][old_sff[seen]]]

        def _ctx(j: int, old_active: np.ndarray) -> dict:
            """Fill/verify context of one candidate's active set: old-CSR
            slices for the recruited unchanged subflows, then the changed
            pairs' gathered segment routes — no spliced assignment."""
            oa_e = _gather_ranges(old_seo, old_active)
            oe = np.concatenate([oa_e, gone_e_c[j]])
            freed = np.bincount(
                old_el[oe], weights=state.entry_rate[oe], minlength=L
            )
            return {
                "j": j,
                "old_active": old_active,
                "n_active": len(old_active) + len(seg_w_c[j]),
                "ae_link": np.concatenate(
                    [old_el[oa_e], seg_links_c[j]]
                ),
                "aw": np.concatenate([old_sw[old_active], seg_w_c[j]]),
                "a_len": np.concatenate(
                    [
                        old_seo[old_active + 1] - old_seo[old_active],
                        seg_lengths_c[j],
                    ]
                ),
                "ae_w": np.concatenate([old_ew[oa_e], seg_ew_c[j]]),
                "base_used": state.used - freed,
            }

        def _fill_batch(ctxs: List[dict]) -> None:
            """Batched relaxed fill: every candidate's active set filled
            against its own residuals, rounds shared across the batch."""
            k = len(ctxs)
            lenA = np.fromiter(
                (c["n_active"] for c in ctxs), dtype=np.int64, count=k
            )
            a_off = np.concatenate(([0], np.cumsum(lenA))).astype(np.int64)
            aw_cat = np.concatenate([c["aw"] for c in ctxs])
            ae_w_cat = np.concatenate([c["ae_w"] for c in ctxs])
            a_len_cat = np.concatenate([c["a_len"] for c in ctxs])
            asub_off = np.concatenate(
                ([0], np.cumsum(a_len_cat))
            ).astype(np.int64)
            vlink = np.concatenate(
                [i * L + c["ae_link"] for i, c in enumerate(ctxs)]
            )
            bu_flat = np.concatenate([c["base_used"] for c in ctxs])
            A = len(aw_cat)
            lvl_cat = np.zeros(A)
            uL, inv = np.unique(vlink, return_inverse=True)
            nLc = len(uL)
            if nLc:
                ucand = uL // L
                ulink = uL - ucand * L
                residual = cap[ulink] - bu_flat[uL]
                np.maximum(residual, 0.0, out=residual)
                load = np.bincount(inv, weights=ae_w_cat, minlength=nLc)
                order = np.argsort(inv, kind="stable")
                cell_off = np.concatenate(
                    ([0], np.cumsum(np.bincount(inv, minlength=nLc)))
                ).astype(np.int64)
                e_sub = np.repeat(np.arange(A, dtype=np.int64), a_len_cat)
                cell_subs = e_sub[order]
                sub_cand = np.repeat(np.arange(k, dtype=np.int64), lenA)
                ccounts = np.bincount(ucand, minlength=k)
                for c in ccounts.tolist():
                    _ACTIVE_LINKS.observe(int(c))
                nonempty = ccounts > 0
                ne_starts = np.concatenate(([0], np.cumsum(ccounts)))[:-1][
                    nonempty
                ].astype(np.int64)
                still = aw_cat > 0.0
                num_active = np.bincount(sub_cand[still], minlength=k)
                fill = np.zeros(k)
                sat_thr_c = _EPS * (1.0 + cap[ulink])
                sat_ever = np.zeros(nLc, dtype=bool)
                cap_rounds = 4 * lenA + 16
                live = num_active > 0
                inc_c = np.empty(k)
                rounds = 0
                with np.errstate(divide="ignore", invalid="ignore"):
                    while live.any():
                        rounds += 1
                        if rounds > max_iterations:  # pragma: no cover
                            raise RuntimeError(
                                "batched delta filling did not converge"
                            )
                        live &= rounds <= cap_rounds
                        if not live.any():
                            break
                        head = np.where(
                            load > _EPS,
                            residual / np.maximum(load, _EPS),
                            np.inf,
                        )
                        inc_c.fill(np.inf)
                        inc_c[nonempty] = np.minimum.reduceat(head, ne_starts)
                        live &= np.isfinite(inc_c)
                        if not live.any():
                            break
                        inc_l = np.where(live, inc_c, 0.0)
                        fill += inc_l
                        residual -= load * inc_l[ucand]
                        newly = np.flatnonzero(
                            (residual <= sat_thr_c) & ~sat_ever & live[ucand]
                        )
                        if not len(newly):  # pragma: no cover - numerical
                            break
                        sat_ever[newly] = True
                        frozen = cell_subs[_gather_ranges(cell_off, newly)]
                        frozen = frozen[still[frozen]]
                        if len(frozen):
                            frozen = np.unique(frozen)
                            still[frozen] = False
                            num_active -= np.bincount(
                                sub_cand[frozen], minlength=k
                            )
                            lvl_cat[frozen] = fill[sub_cand[frozen]]
                            gone2 = _gather_ranges(asub_off, frozen)
                            load -= np.bincount(
                                inv[gone2],
                                weights=ae_w_cat[gone2],
                                minlength=nLc,
                            )
                        load[newly] = 0.0
                        live &= num_active > 0
                if still.any():
                    lvl_cat[still] = fill[sub_cand[still]]
                lvl_cat[aw_cat <= 0.0] = 0.0
            for i, c in enumerate(ctxs):
                c["lvl"] = lvl_cat[a_off[i] : a_off[i + 1]]

        def _verify_batch(ctxs: List[dict]) -> None:
            """Batched exact optimality check (see :meth:`_verify_delta`);
            sets ``ok``/``used``/``bad`` on every context."""
            k = len(ctxs)
            lenA = [len(c["aw"]) for c in ctxs]
            a_len_cat = np.concatenate([c["a_len"] for c in ctxs])
            aw_cat = np.concatenate([c["aw"] for c in ctxs])
            ae_w_cat = np.concatenate([c["ae_w"] for c in ctxs])
            lvl_cat = np.concatenate([c["lvl"] for c in ctxs])
            vlink = np.concatenate(
                [i * L + c["ae_link"] for i, c in enumerate(ctxs)]
            )
            bu_flat = np.concatenate([c["base_used"] for c in ctxs])
            ae_lev = np.repeat(lvl_cat, a_len_cat)
            ae_rate = ae_w_cat * ae_lev
            used_flat = bu_flat + np.bincount(
                vlink, weights=ae_rate, minlength=k * L
            )
            cap_t = np.tile(cap, k)
            sat_thr_t = _EPS * (1.0 + cap_t)
            over = used_flat > cap_t + sat_thr_t
            satur = used_flat >= cap_t - 2.0 * sat_thr_t
            T = np.zeros(k * L, dtype=bool)
            for i, c in enumerate(ctxs):
                j = c["j"]
                T[i * L : (i + 1) * L] = dirty_flat[j * L : (j + 1) * L]
            T[vlink] = True
            rep_flat = np.ones(k * nso, dtype=bool)
            for i, c in enumerate(ctxs):
                gs = gone_subs_c[c["j"]]
                if len(gs):
                    rep_flat[i * nso + gs] = False
                rep_flat[i * nso + c["old_active"]] = False
            vT = np.flatnonzero(T)
            Tc = vT // L
            Tl = vT - Tc * L
            cntT = lo[Tl + 1] - lo[Tl]
            sel = leo[_gather_ranges(lo, Tl)]
            sel_c = np.repeat(Tc, cntT)
            osub = old_es[sel]
            keepm = rep_flat[sel_c * nso + osub]
            sel = sel[keepm]
            sel_c = sel_c[keepm]
            osub = osub[keepm]
            all_l = np.concatenate([sel_c * L + old_el[sel], vlink])
            all_v = np.concatenate([olev[osub], ae_lev])
            lam_flat = np.tile(lam, k)
            lam_flat[vT] = _NO_LAM
            if len(all_l):
                order = np.argsort(all_l, kind="stable")
                l_s = all_l[order]
                v_s = all_v[order]
                starts = np.empty(len(l_s), dtype=bool)
                starts[0] = True
                np.not_equal(l_s[1:], l_s[:-1], out=starts[1:])
                firsts = np.flatnonzero(starts)
                gmax = np.maximum.reduceat(v_s, firsts)
                ul = l_s[firsts]
                sat_ul = satur[ul]
                lam_flat[ul[sat_ul]] = gmax[sat_ul]
            a_off2 = np.concatenate(
                ([0], np.cumsum(a_len_cat[:-1]))
            ).astype(np.int64)
            lam_ae = lam_flat[vlink]
            ok_e = satur[vlink] & (
                ae_lev >= lam_ae - 1e-11 * (1.0 + np.minimum(lam_ae, 1.0e6))
            )
            okA = np.logical_or.reduceat(ok_e, a_off2)
            failA = (aw_cat > 0.0) & ~okA
            vcs = np.unique(sel_c * nso + osub)
            csc = vcs // nso
            cs = vcs - csc * nso
            ce = _gather_ranges(old_seo, cs)
            c_len = old_seo[cs + 1] - old_seo[cs]
            cl = old_el[ce]
            vcl = np.repeat(csc, c_len) * L + cl
            lam_cc = lam_flat[vcl]
            ok_ce = satur[vcl] & (
                np.repeat(olev[cs], c_len)
                >= lam_cc - 1e-11 * (1.0 + np.minimum(lam_cc, 1.0e6))
            )
            if len(ce):
                c_off = np.concatenate(
                    ([0], np.cumsum(c_len[:-1]))
                ).astype(np.int64)
                okC = np.logical_or.reduceat(ok_ce, c_off)
            else:
                okC = np.zeros(0, dtype=bool)
            failC = (old_sw[cs] > 0.0) & ~okC
            over_c = over.reshape(k, L).any(axis=1)
            sub_cand = np.repeat(np.arange(k, dtype=np.int64), lenA)
            failA_c = np.zeros(k, dtype=bool)
            failA_c[sub_cand[failA]] = True
            failC_c = np.zeros(k, dtype=bool)
            failC_c[csc[failC]] = True
            bad_flat = over.copy()
            if failA.any():
                bad_flat[vlink[np.repeat(failA, a_len_cat)]] = True
            if failC.any():
                bad_flat[vcl[np.repeat(failC, c_len)]] = True
            for i, c in enumerate(ctxs):
                c["ok"] = not (over_c[i] or failA_c[i] or failC_c[i])
                c["used"] = used_flat[i * L : (i + 1) * L]
                c["bad"] = bad_flat[i * L : (i + 1) * L]

        # ----------------------------------------- attempts loop + finalize
        attempts_arr = np.zeros(C, dtype=np.int64)

        def _finish_warm(c: dict) -> None:
            j = c["j"]
            used = c["used"]
            _DELTA_WARM.inc()
            _DELTA_ACTIVE.observe(c["n_active"])
            # Patch flow rates by delta: unchanged flows shift by their
            # re-solved subflows' weighted level change; changed flows are
            # recomputed from their segment routes.
            flow_rates = state.result.flow_rates.copy()
            oa = c["old_active"]
            n_oa = len(oa)
            lvl = c["lvl"]
            if n_oa:
                flow_rates += np.bincount(
                    old_sff[oa],
                    weights=old_sw[oa] * (lvl[:n_oa] - olev[oa]),
                    minlength=n,
                )
            cidx = chg_idx[j]
            segf = np.repeat(
                np.arange(len(cidx), dtype=np.int64), npaths_c[j]
            )
            flow_rates[cidx] = np.bincount(
                segf, weights=seg_w_c[j] * lvl[n_oa:], minlength=len(cidx)
            )
            link_util = np.where(cap > 0, used / cap, 0.0)
            bottleneck = int(np.argmax(link_util)) if L else -1
            out[j] = DeltaSolve(
                result=PhaseResult(
                    flow_rates=flow_rates,
                    link_utilization=link_util,
                    bottleneck_link=bottleneck,
                ),
                state=None,
                warm=True,
                changed=len(chg_idx[j]),
                attempts=int(attempts_arr[j]),
            )

        ctxs: List[dict] = []
        for j in pend:
            if alive[j]:
                ctxs.append(_ctx(j, _active_from_seen(j)))
            else:
                fallbacks.append(j)
        for attempt in range(max_attempts):
            if not ctxs:
                break
            kept: List[dict] = []
            for c in ctxs:
                attempts_arr[c["j"]] += 1
                if c["n_active"] > budget_arr[c["j"]]:
                    alive[c["j"]] = False
                    fallbacks.append(c["j"])
                else:
                    kept.append(c)
            ctxs = kept
            if not ctxs:
                break
            _fill_batch(ctxs)
            _verify_batch(ctxs)
            failed: List[dict] = []
            for c in ctxs:
                if c["ok"]:
                    _finish_warm(c)
                else:
                    failed.append(c)
            if not failed:
                ctxs = []
                break
            if attempt == max_attempts - 1:
                for c in failed:
                    fallbacks.append(c["j"])
                ctxs = []
                break
            # Expansion: close over the violated links (all their residents,
            # then the upward climb), per failing candidate.
            _closure_batch(
                np.concatenate(
                    [c["j"] * L + np.flatnonzero(c["bad"]) for c in failed]
                ),
                use_thr=False,
                recruit_all=True,
            )
            next_ctxs: List[dict] = []
            for c in failed:
                j = c["j"]
                if not alive[j]:
                    fallbacks.append(j)
                    continue
                badl = np.flatnonzero(c["bad"])
                crossing = ls[_gather_ranges(lo, badl)]
                crossing = crossing[~chg_mask_c[j][old_sff[crossing]]]
                grown = np.unique(
                    np.concatenate([_active_from_seen(j), crossing])
                )
                if len(grown) == len(c["old_active"]):  # no progress
                    alive[j] = False
                    fallbacks.append(j)
                    continue
                next_ctxs.append(_ctx(j, grown))
            ctxs = next_ctxs

        # --------------------------- batched exact fallback for the rest
        if fallbacks:
            fb_results = self._batch_fill(
                [
                    self._assign_delta(
                        old, chg_idx[j], n, chg_src[j], chg_dst[j], chg_dem[j]
                    )
                    for j in fallbacks
                ],
                max_iterations=max_iterations,
            )
            for j, res in zip(fallbacks, fb_results):
                _DELTA_FALLBACKS.inc()
                out[j] = DeltaSolve(
                    result=res,
                    state=None,
                    warm=False,
                    changed=len(chg_idx[j]),
                    attempts=int(attempts_arr[j]),
                )
        return out

    def maxmin_rates_batch(
        self,
        flow_sets: Sequence[Sequence[Flow]],
        *,
        max_iterations: int = 100000,
    ) -> List[PhaseResult]:
        """Max-min fair rates of **many scenarios at once**, vectorized.

        Scenarios on one topology are independent, so their per-link loads
        stack into one ``(scenarios, links)`` array and the progressive
        filling rounds run across the whole batch: each round takes the
        per-scenario headroom minimum over the rows, advances every live
        scenario's fill level by its own increment (finished rows advance by
        exactly 0.0, leaving their state untouched bit-for-bit), and freezes
        the union of freshly saturated (scenario, link) cells through one
        combined link-to-subflows CSR index in *virtual* link space
        (``scenario * num_links + link``).

        Every float operation a scenario sees — headroom, increment, load
        subtraction, freeze level — is elementwise identical to what its solo
        :meth:`maxmin_rates` solve performs, so the returned
        :class:`PhaseResult` list is **bit-identical** to solving each
        scenario separately; what the batch amortizes is the per-round
        Python/NumPy dispatch overhead, the dominant cost at fig12 scale
        (many scenarios x small link counts).  The number of rounds is the
        *maximum* over the batch instead of the sum.
        """
        flow_sets = list(flow_sets)
        S = len(flow_sets)
        _BATCH_SIZE.observe(S)
        if S == 0:
            return []
        asgs = [self.assign(flows) for flows in flow_sets]
        return self._batch_fill(asgs, max_iterations=max_iterations)

    def _batch_fill(
        self,
        asgs: Sequence[FlowAssignment],
        *,
        max_iterations: int = 100000,
    ) -> List[PhaseResult]:
        """The vectorized cold fill of :meth:`maxmin_rates_batch` on
        already-built assignments (also the batched delta path's exact
        fallback — the batch rounds are bit-identical to per-scenario solo
        solves, so a fallback through here matches :meth:`maxmin_rates`
        exactly)."""
        if _sparse_links_enabled() and len(self.capacity) and asgs:
            # Density gate: per-scenario active links are cached on the
            # assignments, so this costs one pass after warm-up.  Dense-ish
            # batches (fig12 full permutations) stay on the fixed-shape
            # broadcast path, which beats per-round compact-space gathers
            # once most cells are loaded anyway.
            active_cells = sum(len(a.compact_link_index()[0]) for a in asgs)
            if active_cells <= _SPARSE_BATCH_MAX_DENSITY * len(asgs) * len(self.capacity):
                return self._batch_fill_sparse(asgs, max_iterations=max_iterations)
        S = len(asgs)
        L = len(self.capacity)
        sub_counts = np.fromiter((a.num_subflows for a in asgs), dtype=np.int64, count=S)
        sub_base = np.concatenate(([0], np.cumsum(sub_counts)))
        total_subs = int(sub_base[-1])
        entry_counts = np.fromiter((len(a.entry_link) for a in asgs), dtype=np.int64, count=S)
        entry_base = np.concatenate(([0], np.cumsum(entry_counts)))
        # Combined entry arrays in virtual link space; per-scenario slices
        # keep their solo ordering, so every bincount below reproduces the
        # solo summation order exactly.
        entry_scen = np.repeat(np.arange(S, dtype=np.int64), entry_counts)
        if total_subs:
            entry_link = np.concatenate([a.entry_link for a in asgs])
            entry_sub = np.concatenate(
                [a.entry_subflow + sub_base[s] for s, a in enumerate(asgs)]
            )
            sub_weights = np.concatenate(
                [a.subflow_weight * a.flow_demand[a.subflow_flow] for a in asgs]
            )
        else:  # pragma: no cover - all-empty batch
            entry_link = np.zeros(0, dtype=np.int64)
            entry_sub = np.zeros(0, dtype=np.int64)
            sub_weights = np.zeros(0)
        entry_vlink = entry_scen * L + entry_link
        sub_scen = np.repeat(np.arange(S, dtype=np.int64), sub_counts)
        entry_weight = sub_weights[entry_sub]
        load_full = np.bincount(entry_vlink, weights=entry_weight, minlength=S * L).reshape(S, L)
        # Combined subflow -> entries CSR (per-scenario offsets shifted by the
        # scenario's entry base; the trailing total closes the last range).
        sub_offsets = np.concatenate(
            [a.subflow_offsets()[:-1] + entry_base[s] for s, a in enumerate(asgs)]
            + [np.array([entry_base[-1]], dtype=np.int64)]
        )
        # Combined virtual-link -> crossing-subflows CSR.
        order = np.argsort(entry_vlink, kind="stable").astype(np.int64)
        vlink_counts = np.bincount(entry_vlink, minlength=S * L)
        link_offsets = np.concatenate(([0], np.cumsum(vlink_counts))).astype(np.int64)
        link_offsets_list = link_offsets.tolist()
        link_subflows = entry_sub[order]

        # Fixed-shape working set with preallocated scratch buffers.  The
        # per-scenario round counts at fig12 scale differ by only a few
        # percent, so a finished row padded with a 0.0 increment (which
        # leaves its state untouched bit-for-bit: ``x - 0.0 * load == x``)
        # wastes far less than live-set compaction bookkeeping would cost,
        # and fixed shapes let every per-round elementwise pass write into a
        # reusable ``out=`` buffer instead of allocating a fresh (S, L)
        # temporary — at fig12 scale the allocator, not the FPU, dominates.
        loadc = load_full                              # (S, L) active load
        remc = np.tile(self.capacity, (S, 1))          # (S, L) remaining
        satc = np.broadcast_to(_EPS * (1.0 + self.capacity), (S, L))
        fillc = np.zeros(S)                            # fill level per scenario
        live = sub_counts > 0
        active = np.ones(total_subs, dtype=bool)
        num_active = sub_counts.copy()                 # per scenario
        fill_at_freeze = np.zeros(total_subs)
        # Saturation-time remaining is flushed here and the live cell is then
        # pinned: ``remc`` to +inf (so the threshold scan cannot re-fire) and
        # its load to 0.0 (so the cell's headroom is masked to inf, exactly
        # like the solo loop after ``load[new_idx] = 0.0``).  The solo loop
        # never updates a saturated link's remaining again either — its load
        # is zero — so the flushed value *is* the solo final remaining.
        remaining_final = np.tile(self.capacity, (S, 1))
        hm = np.empty((S, L))                          # headroom scratch
        mload = np.empty((S, L))                       # cached masked |load|
        bmask = np.empty((S, L), dtype=bool)           # comparison scratch
        loadc_flat = loadc.reshape(-1)
        remc_flat = remc.reshape(-1)
        mload_flat = mload.reshape(-1)
        remaining_final_flat = remaining_final.reshape(-1)
        # headroom = where(load > eps, remaining / max(load, eps), inf)
        # — the solo formula, with the masked divisor |load * (load > eps)|
        # *cached*: the bool multiply zeroes masked lanes and the abs pass
        # turns the -0.0 of masked *negative* lanes (tiny residues left by
        # the freeze subtraction) into +0.0 while passing unmasked lanes
        # through bitwise (load > eps > 0 there), so remaining / +0.0 lands
        # +inf in masked lanes on its own, exactly the value the solo
        # formula assigns.  Load only ever changes at the cells a freeze
        # touches, so the cache is refreshed there incrementally and the
        # steady-state headroom is a single full-width divide.
        np.greater(loadc, _EPS, out=bmask)
        np.multiply(loadc, bmask, out=mload)
        np.abs(mload, out=mload)
        iterations = 0
        with np.errstate(divide="ignore", invalid="ignore"):
            while live.any():
                iterations += 1
                if iterations > max_iterations:  # pragma: no cover - defensive
                    raise RuntimeError("batched max-min filling did not converge")
                np.divide(remc, mload, out=hm)
                if iterations == 1:
                    # Only 0.0 / 0.0 cells produce NaN, and they can only
                    # exist in round one: a zero remaining always trips the
                    # threshold scan (0 <= eps * (1 + capacity)), so any
                    # such cell is pinned to remaining = +inf before the
                    # next round's divide ever sees it.
                    np.isnan(hm, out=bmask)
                    np.copyto(hm, np.inf, where=bmask)
                inc = hm.min(axis=1)
                # A row whose headroom went to +inf is finished (solo breaks
                # there); it keeps advancing by exactly 0.0 from now on.
                live &= np.isfinite(inc)
                if not live.any():
                    break
                inc[~live] = 0.0
                np.add(fillc, inc, out=fillc)
                # The *raw* load drives the remaining update (as in solo),
                # including sub-eps residue lanes; hm is free scratch here.
                np.multiply(loadc, inc[:, None], out=hm)
                np.subtract(remc, hm, out=remc)
                np.less_equal(remc, satc, out=bmask)
                # Flat indices are ``scenario * L + link``: ascending order ==
                # scenario-major, link-ascending == solo per-scenario order.
                vcells = np.flatnonzero(bmask)
                if not len(vcells):  # pragma: no cover - numerical safety
                    break
                remaining_final_flat[vcells] = remc_flat[vcells]
                remc_flat[vcells] = np.inf
                # Most rounds saturate a handful of cells; direct slice
                # concatenation beats the vectorized multi-range gather
                # there (both produce the ranges in the same order).  The
                # plain-int offsets list sidesteps the NumPy scalar-slicing
                # overhead the hot path would otherwise pay per cell.
                if len(vcells) <= 48:
                    frozen = np.concatenate(
                        [
                            link_subflows[link_offsets_list[v] : link_offsets_list[v + 1]]
                            for v in vcells.tolist()
                        ]
                    )
                else:
                    frozen = link_subflows[_gather_ranges(link_offsets, vcells)]
                frozen = frozen[active[frozen]]
                if len(frozen):
                    # Sorted dedup == np.unique, minus its dispatch overhead.
                    frozen.sort()
                    dmask = np.empty(len(frozen), dtype=bool)
                    dmask[0] = True
                    np.not_equal(frozen[1:], frozen[:-1], out=dmask[1:])
                    frozen = frozen[dmask]
                    _FROZEN_PER_ROUND.observe(len(frozen))
                    active[frozen] = False
                    num_active -= np.bincount(sub_scen[frozen], minlength=S)
                    fill_at_freeze[frozen] = fillc[sub_scen[frozen]]
                    gone = _gather_ranges(sub_offsets, frozen)
                    # Group the gone entries by virtual link and subtract the
                    # per-link weight sums at the touched cells only.  This
                    # matches solo's full-width ``load = load - bincount(...)``
                    # bit for bit: the *stable* argsort keeps every link's
                    # weights in their original entry order, bincount over
                    # the group ids adds strictly sequentially per bucket
                    # (unlike a segmented ufunc reduce, which reassociates
                    # into pairwise sums), and the cells not touched see a
                    # 0.0 delta in solo (``x - 0.0 == x`` bitwise).
                    gv = entry_vlink[gone]
                    sidx = np.argsort(gv, kind="stable")
                    gv = gv[sidx]
                    gw = entry_weight[gone][sidx]
                    smask = np.empty(len(gv), dtype=bool)
                    smask[0] = True
                    np.not_equal(gv[1:], gv[:-1], out=smask[1:])
                    gid = np.cumsum(smask)
                    gid -= 1
                    touched = gv[smask]
                    loadc_flat[touched] -= np.bincount(gid, weights=gw)
                    # Refresh the masked-|load| headroom cache at the cells
                    # the subtraction changed (same mask-multiply-abs passes
                    # as the full-width initialisation, on the slice).
                    msub = loadc_flat[touched]
                    np.multiply(msub, np.greater(msub, _EPS), out=msub)
                    np.abs(msub, out=msub)
                    mload_flat[touched] = msub
                loadc_flat[vcells] = 0.0
                mload_flat[vcells] = 0.0
                # A scenario whose last subflow froze exits at the top of the
                # solo loop; here it just goes (and stays) dead.
                live &= num_active > 0
        # Unsaturated links keep their final remaining (the solo loop simply
        # stops updating them on exit); saturated cells were flushed when
        # pinned.  Subflows never frozen (inf headroom on exit) get their
        # scenario's final fill, as in the solo solver.
        np.copyto(remaining_final, remc, where=np.isfinite(remc))
        if active.any():
            fill_at_freeze[active] = fillc[sub_scen[active]]
        _MAXMIN_SOLVES.inc(S)
        _MAXMIN_ROUNDS.observe(iterations)
        sub_rate = sub_weights * fill_at_freeze
        results: List[PhaseResult] = []
        for s, asg in enumerate(asgs):
            rates_s = sub_rate[sub_base[s] : sub_base[s + 1]]
            flow_rates = np.bincount(asg.subflow_flow, weights=rates_s, minlength=asg.num_flows)
            used = self.capacity - remaining_final[s]
            link_util = np.where(self.capacity > 0, used / self.capacity, 0.0)
            bottleneck = int(np.argmax(link_util)) if L else -1
            results.append(
                PhaseResult(
                    flow_rates=flow_rates,
                    link_utilization=link_util,
                    bottleneck_link=bottleneck,
                )
            )
        return results

    def _batch_fill_sparse(
        self,
        asgs: Sequence[FlowAssignment],
        *,
        max_iterations: int = 100000,
    ) -> List[PhaseResult]:
        """Sparse sibling of :meth:`_batch_fill`: the same vectorized rounds
        on the **active** ``(scenario, link)`` cells only.

        The dense path's state is ``(scenarios, links)``; here it is one
        flat array over the unique virtual cells the batch actually loads
        (``np.unique`` of ``scenario * L + link``, once per batch).  Every
        float operation is elementwise identical to the dense rounds — the
        compaction inverse is a monotone relabeling, so bincount summation
        order, the stable freeze-subtraction grouping, and the headroom
        minima (untouched cells contribute +inf) all carry over — which
        keeps this path bit-identical to :meth:`_batch_fill` and therefore
        to per-scenario solo solves, while each round costs O(active cells)
        instead of O(scenarios x links).
        """
        S = len(asgs)
        L = len(self.capacity)
        sub_counts = np.fromiter((a.num_subflows for a in asgs), dtype=np.int64, count=S)
        sub_base = np.concatenate(([0], np.cumsum(sub_counts)))
        total_subs = int(sub_base[-1])
        entry_counts = np.fromiter((len(a.entry_link) for a in asgs), dtype=np.int64, count=S)
        entry_base = np.concatenate(([0], np.cumsum(entry_counts)))
        entry_scen = np.repeat(np.arange(S, dtype=np.int64), entry_counts)
        if total_subs:
            entry_link = np.concatenate([a.entry_link for a in asgs])
            entry_sub = np.concatenate(
                [a.entry_subflow + sub_base[s] for s, a in enumerate(asgs)]
            )
            sub_weights = np.concatenate(
                [a.subflow_weight * a.flow_demand[a.subflow_flow] for a in asgs]
            )
        else:  # pragma: no cover - all-empty batch
            entry_link = np.zeros(0, dtype=np.int64)
            entry_sub = np.zeros(0, dtype=np.int64)
            sub_weights = np.zeros(0)
        entry_vlink = entry_scen * L + entry_link
        sub_scen = np.repeat(np.arange(S, dtype=np.int64), sub_counts)
        entry_weight = sub_weights[entry_sub]
        sub_offsets = np.concatenate(
            [a.subflow_offsets()[:-1] + entry_base[s] for s, a in enumerate(asgs)]
            + [np.array([entry_base[-1]], dtype=np.int64)]
        )
        # Active-cell compaction: cells ascend scenario-major/link-ascending
        # (np.unique sorts), so per-scenario cells are contiguous runs and
        # ``flatnonzero`` scans reproduce the dense cell order exactly.
        cells, inv = np.unique(entry_vlink, return_inverse=True)
        inv = inv.astype(np.int64, copy=False)
        nV = len(cells)
        cell_scen = cells // L
        cell_counts = np.bincount(cell_scen, minlength=S)
        for c in cell_counts.tolist():
            _ACTIVE_LINKS.observe(int(c))
        cell_starts = np.concatenate(([0], np.cumsum(cell_counts)))[:-1].astype(np.int64)
        nonempty = cell_counts > 0
        ne_starts = cell_starts[nonempty]
        cap_v = self.capacity[cells - cell_scen * L]
        loadc = np.bincount(inv, weights=entry_weight, minlength=nV)
        remc = cap_v.copy()
        satc = _EPS * (1.0 + cap_v)
        # Compact cell -> crossing-subflows CSR (same stable order as dense).
        order = np.argsort(inv, kind="stable").astype(np.int64)
        link_offsets = np.concatenate(
            ([0], np.cumsum(np.bincount(inv, minlength=nV)))
        ).astype(np.int64)
        link_offsets_list = link_offsets.tolist()
        link_subflows = entry_sub[order]
        fillc = np.zeros(S)
        live = sub_counts > 0
        active = np.ones(total_subs, dtype=bool)
        num_active = sub_counts.copy()
        fill_at_freeze = np.zeros(total_subs)
        remaining_final = np.tile(self.capacity, (S, 1))
        remaining_final_flat = remaining_final.reshape(-1)
        hm = np.empty(nV)
        mload = np.empty(nV)
        bmask = np.empty(nV, dtype=bool)
        inc = np.empty(S)
        np.greater(loadc, _EPS, out=bmask)
        np.multiply(loadc, bmask, out=mload)
        np.abs(mload, out=mload)
        iterations = 0
        with np.errstate(divide="ignore", invalid="ignore"):
            while live.any() and nV:
                iterations += 1
                if iterations > max_iterations:  # pragma: no cover - defensive
                    raise RuntimeError("batched max-min filling did not converge")
                np.divide(remc, mload, out=hm)
                if iterations == 1:
                    # 0.0 / 0.0 cells exist in round one only (see the dense
                    # sibling): a zero remaining trips the threshold scan and
                    # the cell is pinned before the next divide.
                    np.isnan(hm, out=bmask)
                    np.copyto(hm, np.inf, where=bmask)
                # Per-scenario minimum over that scenario's contiguous cell
                # run; scenarios with no cells read +inf, exactly what their
                # all-inf dense row minimizes to.
                inc.fill(np.inf)
                inc[nonempty] = np.minimum.reduceat(hm, ne_starts)
                live &= np.isfinite(inc)
                if not live.any():
                    break
                inc[~live] = 0.0
                np.add(fillc, inc, out=fillc)
                np.multiply(loadc, inc[cell_scen], out=hm)
                np.subtract(remc, hm, out=remc)
                np.less_equal(remc, satc, out=bmask)
                vcells = np.flatnonzero(bmask)
                if not len(vcells):  # pragma: no cover - numerical safety
                    break
                remaining_final_flat[cells[vcells]] = remc[vcells]
                remc[vcells] = np.inf
                if len(vcells) <= 48:
                    frozen = np.concatenate(
                        [
                            link_subflows[link_offsets_list[v] : link_offsets_list[v + 1]]
                            for v in vcells.tolist()
                        ]
                    )
                else:
                    frozen = link_subflows[_gather_ranges(link_offsets, vcells)]
                frozen = frozen[active[frozen]]
                if len(frozen):
                    frozen.sort()
                    dmask = np.empty(len(frozen), dtype=bool)
                    dmask[0] = True
                    np.not_equal(frozen[1:], frozen[:-1], out=dmask[1:])
                    frozen = frozen[dmask]
                    _FROZEN_PER_ROUND.observe(len(frozen))
                    active[frozen] = False
                    num_active -= np.bincount(sub_scen[frozen], minlength=S)
                    fill_at_freeze[frozen] = fillc[sub_scen[frozen]]
                    gone = _gather_ranges(sub_offsets, frozen)
                    # Same stable grouping as dense, over compact cell ids
                    # (``inv`` is monotone in the virtual id, so the stable
                    # argsort is the identical permutation and bincount adds
                    # each cell's weights in the identical order).
                    gv = inv[gone]
                    sidx = np.argsort(gv, kind="stable")
                    gv = gv[sidx]
                    gw = entry_weight[gone][sidx]
                    smask = np.empty(len(gv), dtype=bool)
                    smask[0] = True
                    np.not_equal(gv[1:], gv[:-1], out=smask[1:])
                    gid = np.cumsum(smask)
                    gid -= 1
                    touched = gv[smask]
                    loadc[touched] -= np.bincount(gid, weights=gw)
                    msub = loadc[touched]
                    np.multiply(msub, np.greater(msub, _EPS), out=msub)
                    np.abs(msub, out=msub)
                    mload[touched] = msub
                loadc[vcells] = 0.0
                mload[vcells] = 0.0
                live &= num_active > 0
        # Unsaturated cells keep their final remaining; untouched links were
        # never loaded and stay at capacity from the initialisation.
        fin = np.isfinite(remc)
        remaining_final_flat[cells[fin]] = remc[fin]
        if active.any():
            fill_at_freeze[active] = fillc[sub_scen[active]]
        _MAXMIN_SOLVES.inc(S)
        _MAXMIN_ROUNDS.observe(iterations)
        sub_rate = sub_weights * fill_at_freeze
        results: List[PhaseResult] = []
        for s, asg in enumerate(asgs):
            rates_s = sub_rate[sub_base[s] : sub_base[s + 1]]
            flow_rates = np.bincount(asg.subflow_flow, weights=rates_s, minlength=asg.num_flows)
            used = self.capacity - remaining_final[s]
            link_util = np.where(self.capacity > 0, used / self.capacity, 0.0)
            bottleneck = int(np.argmax(link_util)) if L else -1
            results.append(
                PhaseResult(
                    flow_rates=flow_rates,
                    link_utilization=link_util,
                    bottleneck_link=bottleneck,
                )
            )
        return results

    # -------------------------------------------------------- derived analyses
    def alltoall_bandwidth(
        self,
        *,
        num_phases: Optional[int] = None,
        seed: int = 0,
        method: str = "aggregate",
    ) -> float:
        """Achievable per-accelerator alltoall bandwidth (fraction of injection).

        Two models of the balanced-shift alltoall (Section V-A1a) are
        available:

        * ``"aggregate"`` (default, used for Table II): the classic global
          bandwidth analysis.  Traffic of all shifts is aggregated into one
          uniform load (every rank sends equally to every other rank), the
          per-link load is computed for the even multipath split, and the
          achievable injection rate is limited by the most loaded link.  With
          long messages and adaptive routing, consecutive shift phases overlap
          in the network, which this model captures.
        * ``"phased"``: phases are barrier-synchronised; the result is the
          harmonic mean of the per-phase achievable rates.  This is the more
          pessimistic model and is exposed for sensitivity studies.

        For large systems a stratified sample of shifts approximates the full
        pattern; sampling whole permutation phases keeps every accelerator's
        injection/ejection links exactly balanced, so the estimate has no
        endpoint-sampling noise.
        """
        from .traffic import alltoall_phases, sampled_alltoall_phases

        p = len(self.ranks)
        if num_phases is None or num_phases >= p - 1:
            phases = alltoall_phases(p)
        else:
            phases = sampled_alltoall_phases(p, num_phases, seed=seed)
        if method == "phased":
            inv_rates = []
            for phase in phases:
                rate = self.symmetric_rate(phase).min_rate
                inv_rates.append(1.0 / max(rate, _EPS))
            harmonic = len(inv_rates) / sum(inv_rates)
            return min(harmonic / self.injection_capacity, 1.0)
        if method != "aggregate":
            raise ValueError(f"unknown alltoall method {method!r}")
        # Aggregate all sampled phases into a single uniform-traffic load.
        all_flows: List[Flow] = [f for phase in phases for f in phase]
        asg = self.assign(all_flows)
        weights = asg.subflow_weight[asg.entry_subflow]
        load = np.bincount(asg.entry_link, weights=weights, minlength=len(self.capacity))
        # Each accelerator appears exactly once per phase as a source, so an
        # injection rate of R corresponds to R / num_phases per flow.
        load = load / len(phases)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(load > _EPS, self.capacity / np.maximum(load, _EPS), np.inf)
        injection_rate = float(ratio.min())
        return min(injection_rate / self.injection_capacity, 1.0)

    def permutation_bandwidths(self, flows: Sequence[Flow]) -> np.ndarray:
        """Per-rank receive bandwidth (fraction of injection) for a permutation."""
        result = self.maxmin_rates(flows)
        by_dst = np.zeros(len(self.ranks))
        dst = np.fromiter((f.dst for f in flows), dtype=np.int64, count=len(flows))
        np.add.at(by_dst, dst, result.flow_rates)
        return by_dst / self.injection_capacity

    def phase_bandwidth(self, flows: Sequence[Flow], *, exact: bool = False) -> float:
        """Common achievable flow rate for one symmetric phase (units of ports)."""
        if exact:
            result = self.maxmin_rates(flows)
            return result.min_rate
        return self.symmetric_rate(flows).min_rate
