"""Discrete-event simulation core.

A minimal but complete event engine: events are ``(time, sequence, callback)``
tuples in a binary heap; the sequence number makes the ordering stable and
deterministic for simultaneous events.  The packet-level network simulator
builds on this engine; it is also reusable for custom simulations (see the
examples).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["EventEngine"]


class EventEngine:
    """A deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0

    # ---------------------------------------------------------------- queries
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        return self._processed

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        heapq.heappush(self._queue, (time, self._sequence, callback))
        self._sequence += 1

    # -------------------------------------------------------------- execution
    def step(self) -> bool:
        """Process the next event; returns ``False`` when the queue is empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self._now = time
        self._processed += 1
        callback()
        return True

    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time after the last processed event.
        """
        processed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        return self._now

    def reset(self) -> None:
        """Drop all pending events and rewind the clock."""
        self._queue.clear()
        self._now = 0.0
        self._sequence = 0
        self._processed = 0
