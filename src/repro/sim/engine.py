"""Discrete-event simulation core.

A minimal but complete event engine with two kinds of events sharing one
deterministic timeline:

* **Closure events** are ``(time, sequence, handle)`` tuples in a binary
  heap; the sequence number makes the ordering stable and deterministic for
  simultaneous events.  Scheduling returns an :class:`EventHandle` that can
  be passed to :meth:`EventEngine.cancel`, which is how the cluster
  simulator (:mod:`repro.cluster`) resolves races such as "the job
  completed" vs "a board of the job failed": the loser of the race is
  cancelled instead of firing on stale state.  Cancellation is lazy
  (cancelled entries stay in the heap until they surface) so it is O(1) and
  never perturbs the deterministic ordering of the surviving events.

* **Typed records** are plain ``(time, sequence, tag, a, b, c)`` tuples in a
  **time-bucketed calendar queue**: a heap of distinct timestamps plus a
  dict mapping each timestamp to its list of records (in sequence order,
  since pushes happen in sequence order).  No handle, no closure, no
  per-event allocation beyond the tuple itself — and simultaneous records
  cost one dict append instead of a heap sift, so heavily synchronized
  simulations (the packet simulator's waves) bypass the O(log n) heap for
  the majority of events.  Records are drained in **batches**:
  :meth:`pop_record_batch` pops a whole timestamp bucket in one call, which
  is what lets the packet simulator advance a whole wave of simultaneous
  packets in vectorized array passes.  A single ``record_handler`` (set
  with :meth:`set_record_handler`) interprets the tags; :meth:`run`
  interleaves both event kinds in global ``(time, sequence)`` order, so
  closure events and records can coexist on one engine.

Both kinds share one sequence counter, so the deterministic tie-break among
simultaneous events is global, exactly as if every event lived in one heap.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import registry as _obs

__all__ = ["EventEngine", "EventHandle", "RecordBatch"]

#: Batch of typed records popped from the heap: ``(time, records)`` where
#: ``records`` holds the raw ``(time, seq, tag, a, b, c)`` tuples in
#: sequence order.  Raw tuples keep the pop loop allocation-free; handlers
#: unpack them directly (or ``zip(*records)`` to columnarize a big wave).
RecordBatch = Tuple[float, List[Tuple]]

#: wave-size histogram of the generic run loop (no-op while obs is disabled)
_WAVE_SIZE = _obs.histogram("engine.wave_size")


class EventHandle:
    """Cancellation token for one scheduled event.

    The handle exposes the scheduled ``time`` and whether the event is still
    ``pending`` (neither executed nor cancelled).  Handles are returned by
    :meth:`EventEngine.schedule` / :meth:`EventEngine.schedule_at` and are
    only meaningful for the engine that created them.
    """

    __slots__ = ("time", "_callback", "_cancelled")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self._callback: Optional[Callable[[], None]] = callback
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def pending(self) -> bool:
        """True while the event has neither executed nor been cancelled."""
        return self._callback is not None and not self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else (
            "pending" if self._callback is not None else "done"
        )
        return f"EventHandle(time={self.time!r}, {state})"


class EventEngine:
    """A deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, EventHandle]] = []
        # Calendar queue of typed records: heap of distinct timestamps plus
        # per-timestamp buckets of (time, seq, tag, a, b, c) tuples in
        # sequence order.  Both containers are mutated in place only, so
        # fast-path consumers (the packet simulator) may hold references.
        self._record_times: List[float] = []
        self._record_buckets: Dict[float, List[Tuple]] = {}
        self._record_handler: Optional[Callable[..., None]] = None
        self._sequence = 0
        self._now = 0.0
        self._processed = 0
        self._live = 0  # scheduled and not yet executed or cancelled

    # ---------------------------------------------------------------- queries
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of scheduled events that are neither executed nor cancelled."""
        return self._live

    @property
    def processed_events(self) -> int:
        return self._processed

    def peek(self) -> Optional[float]:
        """Time of the next pending event (closure or record), or ``None``.

        Cancelled events never influence the result; the engine's clock and
        event ordering are left untouched.
        """
        self._prune()
        time = self._queue[0][0] if self._queue else None
        if self._record_times:
            rtime = self._record_times[0]
            if time is None or rtime < time:
                return rtime
        return time

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        handle = EventHandle(time, callback)
        heapq.heappush(self._queue, (time, self._sequence, handle))
        self._sequence += 1
        self._live += 1
        return handle

    # ---------------------------------------------------------- typed records
    def set_record_handler(self, handler: Optional[Callable[..., None]]) -> None:
        """Install the interpreter for typed records.

        The handler is called as ``handler(time, records)`` with one batch
        of simultaneous raw ``(time, seq, tag, a, b, c)`` record tuples (in
        sequence order) whenever :meth:`run` reaches records; it must
        process every entry.
        """
        self._record_handler = handler

    def schedule_record(self, time: float, tag: int, a=0, b=0, c=0.0) -> None:
        """Schedule a typed ``(tag, a, b, c)`` record at an absolute time.

        Records are the allocation-free fast path of the engine: no
        :class:`EventHandle` is created and they cannot be cancelled.  They
        share the sequence counter (and therefore the deterministic
        simultaneous-event ordering) with closure events.  A record whose
        timestamp already has a bucket skips the heap entirely.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        bucket = self._record_buckets.get(time)
        if bucket is None:
            self._record_buckets[time] = [(time, self._sequence, tag, a, b, c)]
            heapq.heappush(self._record_times, time)
        else:
            bucket.append((time, self._sequence, tag, a, b, c))
        self._sequence += 1
        self._live += 1

    def pop_record_batch(self, limit: Optional[int] = None) -> Optional[RecordBatch]:
        """Pop every record at the earliest record timestamp; advance the clock.

        Returns ``(time, records)`` with the raw record tuples in sequence
        order, or ``None`` when no record may run next — either the record
        heap is empty or a closure event sorts earlier (records at the same
        timestamp stop at a closure event with a smaller sequence number,
        preserving the global ordering).  At most ``limit`` records are
        popped when given; the remainder stay queued and a later call
        continues the same timestamp, which is equivalent because
        simultaneous records are processed in sequence order anyway.
        """
        times = self._record_times
        if not times or (limit is not None and limit <= 0):
            return None
        self._prune()
        time = times[0]
        bucket = self._record_buckets[time]
        barrier = None
        if self._queue:
            ctime, cseq, _ = self._queue[0]
            if ctime < time or (ctime == time and cseq < bucket[0][1]):
                return None
            if ctime == time:
                barrier = cseq
        if barrier is None and (limit is None or limit >= len(bucket)):
            # The hot path: take the whole bucket.
            heapq.heappop(times)
            records = self._record_buckets.pop(time)
        else:
            records = []
            cut = len(bucket)
            if barrier is not None:
                for idx, rec in enumerate(bucket):
                    if rec[1] >= barrier:
                        cut = idx
                        break
            if limit is not None:
                cut = min(cut, limit)
            records = bucket[:cut]
            if cut == len(bucket):
                heapq.heappop(times)
                del self._record_buckets[time]
            else:
                del bucket[:cut]
            if not records:
                return None
        n = len(records)
        self._now = time
        self._processed += n
        self._live -= n
        return time, records

    def cancel(self, handle: Optional[EventHandle]) -> bool:
        """Cancel a scheduled event; returns whether anything was cancelled.

        Cancelling ``None``, an already-cancelled handle, or an event that
        has already executed is a harmless no-op returning ``False``, so
        callers can unconditionally cancel whatever handle they hold.
        """
        if handle is None or not handle.pending:
            return False
        handle._cancelled = True
        self._live -= 1
        return True

    # -------------------------------------------------------------- execution
    def _prune(self) -> None:
        while self._queue and self._queue[0][2]._cancelled:
            heapq.heappop(self._queue)

    def step(self) -> bool:
        """Process the next event; returns ``False`` when the queue is empty."""
        self._prune()
        if not self._queue:
            return False
        time, _, handle = heapq.heappop(self._queue)
        self._now = time
        self._processed += 1
        self._live -= 1
        callback = handle._callback
        handle._callback = None  # marks the handle as executed
        callback()
        return True

    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queues drain, ``until`` is reached, or ``max_events``.

        Closure events execute one at a time through :meth:`step`; typed
        records are drained in simultaneous batches through the installed
        record handler.  Both kinds interleave in global ``(time, sequence)``
        order.  Returns the simulation time after the last processed event.
        """
        processed = 0
        while True:
            self._prune()
            cq, rtimes = self._queue, self._record_times
            if cq:
                if rtimes and (
                    rtimes[0] < cq[0][0]
                    or (
                        rtimes[0] == cq[0][0]
                        and self._record_buckets[rtimes[0]][0][1] < cq[0][1]
                    )
                ):
                    next_time, typed = rtimes[0], True
                else:
                    next_time, typed = cq[0][0], False
            elif rtimes:
                next_time, typed = rtimes[0], True
            else:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            if max_events is not None and processed >= max_events:
                break
            if typed:
                handler = self._record_handler
                if handler is None:
                    raise RuntimeError(
                        "typed records are scheduled but no record handler is set"
                    )
                limit = None if max_events is None else max_events - processed
                time, records = self.pop_record_batch(limit)
                _WAVE_SIZE.observe(len(records))
                handler(time, records)
                processed += len(records)
            else:
                self.step()
                processed += 1
        return self._now

    def reset(self) -> None:
        """Drop all pending events and rewind the clock.

        Handles issued before the reset are marked cancelled, so a caller
        unconditionally cancelling a stale handle later stays a no-op
        instead of corrupting the live-event count.
        """
        for _, _, handle in self._queue:
            handle._cancelled = True
        self._queue.clear()
        self._record_times.clear()
        self._record_buckets.clear()
        self._now = 0.0
        self._sequence = 0
        self._processed = 0
        self._live = 0
