"""Discrete-event simulation core.

A minimal but complete event engine: events are ``(time, sequence, handle)``
tuples in a binary heap; the sequence number makes the ordering stable and
deterministic for simultaneous events.  The packet-level network simulator
builds on this engine, the cluster lifetime simulator (:mod:`repro.cluster`)
adds job completion/failure races on top of it, and it is also reusable for
custom simulations (see the examples).

Scheduling returns an :class:`EventHandle` that can be passed to
:meth:`EventEngine.cancel`, which is how the cluster simulator resolves
races such as "the job completed" vs "a board of the job failed": the loser
of the race is cancelled instead of firing on stale state.  Cancellation is
lazy (cancelled entries stay in the heap until they surface) so it is O(1)
and never perturbs the deterministic ordering of the surviving events.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["EventEngine", "EventHandle"]


class EventHandle:
    """Cancellation token for one scheduled event.

    The handle exposes the scheduled ``time`` and whether the event is still
    ``pending`` (neither executed nor cancelled).  Handles are returned by
    :meth:`EventEngine.schedule` / :meth:`EventEngine.schedule_at` and are
    only meaningful for the engine that created them.
    """

    __slots__ = ("time", "_callback", "_cancelled")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self._callback: Optional[Callable[[], None]] = callback
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def pending(self) -> bool:
        """True while the event has neither executed nor been cancelled."""
        return self._callback is not None and not self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else (
            "pending" if self._callback is not None else "done"
        )
        return f"EventHandle(time={self.time!r}, {state})"


class EventEngine:
    """A deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, EventHandle]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0
        self._live = 0  # scheduled and not yet executed or cancelled

    # ---------------------------------------------------------------- queries
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of scheduled events that are neither executed nor cancelled."""
        return self._live

    @property
    def processed_events(self) -> int:
        return self._processed

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when the queue is empty.

        Cancelled events never influence the result; the engine's clock and
        event ordering are left untouched.
        """
        self._prune()
        return self._queue[0][0] if self._queue else None

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        handle = EventHandle(time, callback)
        heapq.heappush(self._queue, (time, self._sequence, handle))
        self._sequence += 1
        self._live += 1
        return handle

    def cancel(self, handle: Optional[EventHandle]) -> bool:
        """Cancel a scheduled event; returns whether anything was cancelled.

        Cancelling ``None``, an already-cancelled handle, or an event that
        has already executed is a harmless no-op returning ``False``, so
        callers can unconditionally cancel whatever handle they hold.
        """
        if handle is None or not handle.pending:
            return False
        handle._cancelled = True
        self._live -= 1
        return True

    # -------------------------------------------------------------- execution
    def _prune(self) -> None:
        while self._queue and self._queue[0][2]._cancelled:
            heapq.heappop(self._queue)

    def step(self) -> bool:
        """Process the next event; returns ``False`` when the queue is empty."""
        self._prune()
        if not self._queue:
            return False
        time, _, handle = heapq.heappop(self._queue)
        self._now = time
        self._processed += 1
        self._live -= 1
        callback = handle._callback
        handle._callback = None  # marks the handle as executed
        callback()
        return True

    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time after the last processed event.
        """
        processed = 0
        while True:
            next_time = self.peek()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        return self._now

    def reset(self) -> None:
        """Drop all pending events and rewind the clock.

        Handles issued before the reset are marked cancelled, so a caller
        unconditionally cancelling a stale handle later stays a no-op
        instead of corrupting the live-event count.
        """
        for _, _, handle in self._queue:
            handle._cancelled = True
        self._queue.clear()
        self._now = 0.0
        self._sequence = 0
        self._processed = 0
        self._live = 0
