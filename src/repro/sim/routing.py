"""Shared, vectorized route tables: one routing state per topology.

Both simulators (flow-level and packet-level) route over the same candidate
minimal paths, yet historically each simulator instance rebuilt its own
per-``(src, dst)`` path cache and every consumer that constructed a fresh
simulator (``analysis.bandwidth``, the figure benchmarks, the cluster
lifetime simulator's service-time model) threw that work away.  A
:class:`RouteTable` factors the routing state out of the simulators:

* paths are stored **vectorized** in CSR-style NumPy arrays (a flat array of
  directed link indices plus per-path offsets), so the flow simulator can
  build its subflow/link incidence arrays with pure array operations instead
  of per-flow Python loops;
* population is **lazy**: a pair's paths are enumerated by the topology's
  structured :class:`~repro.sim.paths.PathProvider` the first time the pair
  is routed, then served from the table forever after;
* paths and per-path **split weights** are produced by a pluggable
  :class:`~repro.sim.policy.RoutingPolicy` (``minimal`` / ``ecmp`` /
  ``valiant`` / ``ugal``); the default ``minimal`` policy reproduces the
  historical behaviour bit-identically;
* tables are **memoized per ``(topology, policy, max_paths)``** — every
  simulator (and every backend, see :mod:`repro.sim.backend`) asking for the
  same topology at the same policy and multipath width shares one table, so
  route state survives across simulator instances.  The memo holds the
  topology weakly; dropping the topology frees its tables.

``RouteTable.stats`` counts pair-level hits/misses, which the test suite
uses to assert cache reuse across simulator instances.

**Scale-out storage.**  The historical (eager) layout preallocates three
``O(num_nodes**2)`` pair-index arrays, which is what made 10k+ endpoint
topologies unbuildable (a 16,384-endpoint Hx2Mesh needs ~7.7 GB of index
alone).  Under a **memory budget** (``RouteTable(mem_budget=...)`` or the
``REPRO_ROUTE_MEM_BUDGET`` environment variable, e.g. ``"4G"``) a table
whose dense index would not fit switches to **sharded** storage: routes are
kept in per-source-block shards (dict index + block-local CSR arrays),
built lazily on first contact, LRU-evicted when the resident bytes exceed
the budget, and optionally spilled to disk (``spill=True``, the default in
sharded mode) so evicted shards reload instead of re-enumerating.  Both
layouts produce **bit-identical** routes and gather results — the policy's
route enumeration is a pure function of the pair — and the eager build
remains the fast path whenever it fits.

:func:`clear_route_tables` drops the memo **and** clears every derived
route cache registered via :func:`register_route_cache_client` (the flow
simulator's :class:`FlowAssignment` LRUs, the tables' materialized
``pair_path_lists``, the packet simulator's per-pair scoring state, and
sharded tables' resident shards, spill files, and budget accounting), so a
full reset can never serve stale routes out of a derived cache or leave
spill files behind.

**Zero-copy sharing across processes.**  A built table exports its CSR
arrays into one ``multiprocessing.shared_memory`` segment with
:meth:`RouteTable.share`, which returns a picklable
:class:`SharedRouteHandle`; :meth:`RouteTable.attach` maps the same bytes
in another process — read-only, zero-copy, bit-identical query results for
every pair the snapshot contains (misses re-enumerate deterministically
into process-private memory, never writing the segment).  The experiment
runner seeds its worker pool with the parent's handles
(:func:`seed_shared_route_tables`), and :func:`route_table_for` attaches a
matching seed instead of rebuilding — the topology objects differ by
identity across processes, so seeds are matched by structural signature
``(name, nodes, links, accelerators, total capacity)`` plus
``(policy, max_paths, budget)``.  Segment lifetime follows the owning
table: a weakref finalizer closes and (owner-side only) unlinks the
segment when the table is garbage collected — so :func:`clear_route_tables`
releases segments with the tables it drops — and an ``atexit`` sweep
catches tables still alive at interpreter exit.  Attached processes
deregister the segment from their ``resource_tracker`` so a dying worker
can never unlink a segment the parent still serves.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import registry as _obs
from ..topology.base import Topology, TopologyError
from .paths import DEFAULT_MAX_PATHS, PathProvider, path_provider_for
from .policy import RoutingPolicy, get_policy

__all__ = [
    "RouteTable",
    "RouteTableStats",
    "SharedRouteHandle",
    "route_table_for",
    "live_route_tables",
    "private_route_table_bytes",
    "clear_route_tables",
    "register_route_cache_client",
    "seed_shared_route_tables",
    "clear_shared_route_seeds",
    "csr_range_indices",
    "parse_mem_budget",
    "default_mem_budget",
    "DEFAULT_SHARD_SOURCES",
]

_GROW = 4  # geometric growth factor exponent base for the flat arrays

#: source nodes per shard in sharded storage mode
DEFAULT_SHARD_SOURCES = 64

#: global path id = shard_index * stride + shard-local path id; pairs own a
#: contiguous local id range, so the contiguity invariant the flow
#: simulator's gathers rely on survives the encoding.
_SHARD_STRIDE = 1 << 40

_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


def parse_mem_budget(value: Union[str, int, float, None]) -> Optional[int]:
    """Parse a memory budget: bytes, or a string like ``"4G"`` / ``"512m"``.

    Suffixes are case-insensitive (``"4G"``, ``"4g"``, ``"256m"``, with an
    optional trailing ``b``/``B``).  ``None`` and ``""`` mean *no budget*
    (eager storage always); zero or negative budgets raise ``ValueError``
    rather than silently disabling the shard budget.
    """
    if value is None:
        return None
    if isinstance(value, (int, float)):
        budget = int(value)
        if budget <= 0:
            raise ValueError(
                f"memory budget must be positive, got {value!r} "
                "(use None for no budget)"
            )
        return budget
    text = value.strip().lower()
    if not text:
        return None
    scale = 1
    if text[-1] == "b":
        text = text[:-1]
    if text and text[-1] in _SUFFIXES:
        scale = _SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        budget = int(float(text) * scale)
    except ValueError:
        raise ValueError(f"unparseable memory budget {value!r}") from None
    if budget <= 0:
        raise ValueError(
            f"memory budget must be positive, got {value!r} "
            "(use an empty string or None for no budget)"
        )
    return budget


def default_mem_budget() -> Optional[int]:
    """The process-wide route-table budget from ``REPRO_ROUTE_MEM_BUDGET``."""
    return parse_mem_budget(os.environ.get("REPRO_ROUTE_MEM_BUDGET"))


def _release_csr_bytes(reported: List[int]) -> None:
    """Finalizer: subtract a dead table's last-reported CSR bytes."""
    _obs.gauge("routing.csr_mem_bytes").add(-reported[0])


def _cleanup_spill(spill_state: Dict[str, object]) -> None:
    """Finalizer: remove a dead table's spill files (and owned directory)."""
    files = spill_state.get("files", {})
    bytes_spilled = 0
    for path, nbytes in list(files.values()):  # type: ignore[union-attr]
        bytes_spilled += nbytes
        try:
            os.unlink(path)
        except OSError:
            pass
    files.clear()  # type: ignore[union-attr]
    if bytes_spilled:
        _obs.gauge("routing.spill_bytes").add(-bytes_spilled)
    owned = spill_state.get("owned_dir")
    if owned:
        shutil.rmtree(owned, ignore_errors=True)
        spill_state["owned_dir"] = None


def _scatter_targets(target_starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(t, t + l)`` for parallel starts/lengths arrays."""
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    out_starts = ends - lengths
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(out_starts, lengths)
        + np.repeat(target_starts, lengths)
    )


def csr_range_indices(offsets: np.ndarray, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Indices covering ``arange(offsets[i], offsets[i+1])`` for every id.

    The CSR multi-range gather shared by :meth:`RouteTable.gather_links`
    and the flow simulator's incremental max-min solver: returns
    ``(indices, lengths)`` where ``indices`` concatenates each id's range
    in order.
    """
    starts = offsets[ids]
    lengths = offsets[ids + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), lengths
    ends = np.cumsum(lengths)
    out_starts = ends - lengths
    indices = (
        np.arange(total, dtype=np.int64)
        - np.repeat(out_starts, lengths)
        + np.repeat(starts, lengths)
    )
    return indices, lengths


# ------------------------------------------------------------- shared memory
def _topo_signature(topo: Topology) -> Tuple:
    """Structural identity of a topology for cross-process seed matching.

    Topology objects never compare equal across processes (identity
    semantics), so shared-table seeds are matched on the structure the
    route enumeration actually depends on: the family/instance name, the
    node/link/accelerator counts, and the total link capacity.
    """
    return (
        topo.name,
        int(topo.num_nodes),
        int(topo.num_links),
        int(topo.num_accelerators),
        float(topo.link_capacity_array().sum()),
    )


#: shared-segment array dtypes by spec key (everything else is int64)
_ARRAY_DTYPES = {"weights": np.float64}


@dataclass(frozen=True)
class SharedRouteHandle:
    """Picklable description of a route table exported to shared memory.

    ``arrays`` (eager tables) and ``shards`` (sharded tables) carry
    ``(key, byte_offset, length)`` spans inside the single shared segment
    ``name``; every array is int64 except per-path ``weights`` (float64).
    The handle embeds the (picklable) topology and policy so
    :meth:`RouteTable.attach` is self-contained, and :meth:`seed_key` is
    the structural memo key :func:`route_table_for` uses to match a seed
    against a locally constructed topology.
    """

    name: str
    nbytes: int
    topo: Topology
    signature: Tuple
    policy: RoutingPolicy
    max_paths: int
    mem_budget: Optional[int]
    sharded: bool
    owner_pid: int = -1
    owner_tracker_pid: Optional[int] = None
    shard_sources: Optional[int] = None
    arrays: Tuple[Tuple[str, int, int], ...] = ()
    shards: Tuple[Tuple[int, int, Tuple[Tuple[str, int, int], ...]], ...] = ()

    def seed_key(self) -> Tuple:
        return (
            self.signature,
            get_policy(self.policy).cache_key(),
            self.max_paths,
            self.mem_budget,
        )


#: lease id -> lease dict for every shared segment this process holds open
#: (owned or attached); the atexit sweep releases stragglers whose table is
#: still alive at interpreter shutdown.
_LIVE_SEGMENTS: Dict[int, Dict[str, object]] = {}


def _release_segment(lease: Dict[str, object]) -> None:
    """Finalizer: close a segment mapping; unlink it if this process owns it.

    The owner-pid guard makes the finalizer safe under ``fork``: children
    inherit the parent's finalizers and ``_LIVE_SEGMENTS`` entries and may
    close their inherited mapping, but must never unlink the segment the
    parent still serves.
    """
    if lease.get("released"):
        return
    lease["released"] = True
    _LIVE_SEGMENTS.pop(lease["lease_id"], None)  # type: ignore[arg-type]
    shm = lease["shm"]
    try:
        shm.close()  # type: ignore[union-attr]
    except (OSError, BufferError):
        pass
    if lease.get("owner_pid") == os.getpid():
        try:
            shm.unlink()  # type: ignore[union-attr]
        except (OSError, FileNotFoundError):
            pass
        _obs.gauge("routing.shm_segments").add(-1)
        _obs.gauge("routing.shm_bytes").add(-int(lease["nbytes"]))  # type: ignore[call-overload]


def _release_all_segments() -> None:
    for lease in list(_LIVE_SEGMENTS.values()):
        _release_segment(lease)


atexit.register(_release_all_segments)


def _tracker_pid() -> Optional[int]:
    """Pid of this process's ``resource_tracker`` daemon (POSIX), if any."""
    try:
        from multiprocessing import resource_tracker

        return resource_tracker._resource_tracker._pid  # type: ignore[attr-defined]
    except Exception:
        return None


def _new_lease(shm, nbytes: int, *, owned: bool) -> Dict[str, object]:
    lease: Dict[str, object] = {
        "shm": shm,
        "nbytes": int(nbytes),
        "owner_pid": os.getpid() if owned else -1,
        "released": False,
    }
    lease["lease_id"] = id(lease)
    _LIVE_SEGMENTS[id(lease)] = lease
    return lease


#: module sentinel: "parameter not given, fall back to the environment"
_UNSET = object()


class _RouteShard:
    """One source-block's routes: a dict pair index + block-local CSR arrays.

    Local path ids are ``id_base + row``; ``id_base`` advances across
    drop-without-spill generations so a stale global id can never silently
    alias a freshly re-enumerated path — gathers detect out-of-range rows
    and fail loudly instead.
    """

    __slots__ = (
        "index",
        "offsets",
        "links",
        "weights",
        "num_paths",
        "links_used",
        "id_base",
        "dirty",
    )

    # rough per-entry cost of the dict index (key int, 3-tuple of ints,
    # hash-table slot) counted against the memory budget
    INDEX_ENTRY_BYTES = 120

    def __init__(self, id_base: int = 0):
        # pair key -> (local_first_path_id, num_paths, num_minimal)
        self.index: Dict[int, Tuple[int, int, int]] = {}
        self.offsets = np.zeros(1, dtype=np.int64)
        self.links = np.zeros(0, dtype=np.int64)
        self.weights = np.zeros(0, dtype=np.float64)
        self.num_paths = 0
        self.links_used = 0
        self.id_base = id_base
        self.dirty = True  # fresh shards always need spilling on evict

    def nbytes(self) -> int:
        return int(
            self.offsets.nbytes + self.links.nbytes + self.weights.nbytes
        ) + self.INDEX_ENTRY_BYTES * len(self.index)

    def append(
        self, key: int, paths: List[List[int]], weights: List[float], num_minimal: int
    ) -> None:
        first = self.num_paths
        need_paths = first + len(paths)
        if need_paths + 1 > len(self.offsets):
            grown = np.zeros(max(need_paths + 1, _GROW * len(self.offsets)), dtype=np.int64)
            grown[: self.num_paths + 1] = self.offsets[: self.num_paths + 1]
            self.offsets = grown
        if need_paths > len(self.weights):
            grown_w = np.zeros(max(need_paths, _GROW * max(len(self.weights), 16)))
            grown_w[: self.num_paths] = self.weights[: self.num_paths]
            self.weights = grown_w
        total_links = self.links_used + sum(len(p) for p in paths)
        if total_links > len(self.links):
            grown = np.zeros(max(total_links, _GROW * max(len(self.links), 16)), dtype=np.int64)
            grown[: self.links_used] = self.links[: self.links_used]
            self.links = grown
        self.weights[first : first + len(paths)] = weights
        for path in paths:
            end = self.links_used + len(path)
            self.links[self.links_used : end] = path
            self.links_used = end
            self.num_paths += 1
            self.offsets[self.num_paths] = end
        self.index[key] = (self.id_base + first, len(paths), num_minimal)
        self.dirty = True


class RouteTableStats:
    """Pair-level cache counters of one :class:`RouteTable`.

    A thin view over two table-local :class:`repro.obs.registry.Counter`
    instruments whose parents are the registry's ``routing.pair_hits`` /
    ``routing.pair_misses`` aggregates: bumping a table's stats also rolls
    up into the process-wide routing family, with no extra bookkeeping at
    the call sites.  The ``hits`` / ``misses`` / ``pairs_routed`` read API
    predates ``repro.obs`` and is pinned by the routing backend tests.
    """

    __slots__ = ("_hits", "_misses")

    def __init__(self) -> None:
        self._hits = _obs.Counter("hits", parent=_obs.counter("routing.pair_hits"))
        self._misses = _obs.Counter("misses", parent=_obs.counter("routing.pair_misses"))

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def pairs_routed(self) -> int:
        return self.misses

    def record_hits(self, n: int = 1) -> None:
        self._hits.inc(n)

    def record_misses(self, n: int = 1) -> None:
        self._misses.inc(n)

    def __repr__(self) -> str:  # keeps the old dataclass repr shape
        return f"RouteTableStats(hits={self.hits}, misses={self.misses})"


class RouteTable:
    """Lazily-populated CSR store of multipath routes on one topology.

    Layout (eager mode): path ``p`` occupies
    ``path_links[path_offsets[p]:path_offsets[p+1]]`` (directed link
    indices); the pair ``(src, dst)`` owns the contiguous path id range
    ``[pair_first[key], pair_first[key] + pair_npaths[key])`` where
    ``key = src * num_nodes + dst``.  Contiguity is what makes the flow
    simulator's incidence construction a gather instead of a loop.

    Sharded mode (chosen automatically when the dense pair index would not
    fit ``mem_budget``, or forced with ``sharded=True``) keeps the same
    contiguity invariant *within* each per-source-block shard and encodes
    path ids as ``shard_index * 2**40 + local_id``; every public query is
    shard-aware and bit-identical to the eager build.
    """

    def __init__(
        self,
        topo: Topology,
        *,
        max_paths: int = DEFAULT_MAX_PATHS,
        provider: Optional[PathProvider] = None,
        policy: Union[str, RoutingPolicy, None] = None,
        mem_budget: Union[str, int, float, None] = _UNSET,
        sharded: Optional[bool] = None,
        shard_sources: Optional[int] = None,
        spill: Optional[bool] = None,
        spill_dir: Optional[str] = None,
    ):
        if max_paths < 1:
            raise ValueError("max_paths must be at least 1")
        self.topo = topo
        self.max_paths = max_paths
        self.provider = provider if provider is not None else path_provider_for(topo)
        self.policy = get_policy(policy)
        self.stats = RouteTableStats()
        n = topo.num_nodes
        if mem_budget is _UNSET:
            budget = default_mem_budget()
        else:
            budget = parse_mem_budget(mem_budget)
        self.mem_budget = budget
        dense_index_bytes = 3 * 8 * n * n
        if sharded is None:
            sharded = budget is not None and dense_index_bytes > budget
        self._sharded = bool(sharded)
        if self._sharded:
            self._shard_sources = int(shard_sources or DEFAULT_SHARD_SOURCES)
            if self._shard_sources < 1:
                raise ValueError("shard_sources must be at least 1")
            self._spill_enabled = True if spill is None else bool(spill)
            # shard index -> resident shard, insertion order == LRU order
            self._shards: "OrderedDict[int, _RouteShard]" = OrderedDict()
            # shard index -> id_base of the *next* generation after a
            # drop-without-spill eviction
            self._dropped_bases: Dict[int, int] = {}
            self._resident_bytes = 0
            self._pairs_routed = 0
            self.shards_built = 0
            self.shards_evicted = 0
            # spill bookkeeping lives in a plain dict so a weakref finalizer
            # can delete the files without resurrecting the table
            self._spill_state: Dict[str, object] = {
                "files": {},  # shard index -> (path, size_bytes)
                "owned_dir": None,
                "base_dir": spill_dir or os.environ.get("REPRO_ROUTE_SPILL_DIR"),
            }
            weakref.finalize(self, _cleanup_spill, self._spill_state)
        else:
            # Pair key -> first path id / path count.  -1 == not yet populated.
            self._pair_first = np.full(n * n, -1, dtype=np.int64)
            self._pair_npaths = np.zeros(n * n, dtype=np.int64)
            # Leading paths of the pair that are minimal (== npaths except UGAL).
            self._pair_nmin = np.zeros(n * n, dtype=np.int64)
            # CSR storage, grown geometrically.
            self._path_offsets = np.zeros(1, dtype=np.int64)
            self._path_links = np.zeros(0, dtype=np.int64)
            self._path_weights = np.zeros(0, dtype=np.float64)
            self._num_paths = 0
            self._links_used = 0
        # (key, count) -> materialized Python path lists (shared, immutable)
        self._pylists: Dict[Tuple[int, int], List[List[int]]] = {}
        _obs.counter("routing.tables_built").inc()
        # routing.csr_mem_bytes tracks the estimated bytes of *live* tables:
        # growth is reported as gauge deltas, and a finalizer releases the
        # table's last-reported contribution when it is garbage collected.
        # Attached tables set a nonzero baseline so bytes the owning process
        # already reported are not double counted.
        self._csr_baseline = 0
        self._builder_pid = os.getpid()
        self._reported_bytes = [0]
        weakref.finalize(self, _release_csr_bytes, self._reported_bytes)
        self._report_csr_bytes()
        register_route_cache_client(self)

    @property
    def is_sharded(self) -> bool:
        """Whether the table uses sharded (budgeted) storage."""
        return self._sharded

    def estimated_csr_bytes(self) -> int:
        """Estimated bytes held by the table's index + CSR arrays.

        Dominated by the three ``O(num_nodes**2)`` pair-index arrays in
        eager mode; the number ROADMAP item 1 (10k+ endpoint scaling) is
        judged against.  In sharded mode this is the *resident* byte count
        (the quantity the memory budget bounds); spilled shards are on disk
        and tracked by the ``routing.spill_bytes`` gauge instead.
        """
        if self._sharded:
            return int(self._resident_bytes)
        return int(
            self._pair_first.nbytes
            + self._pair_npaths.nbytes
            + self._pair_nmin.nbytes
            + self._path_offsets.nbytes
            + self._path_links.nbytes
            + self._path_weights.nbytes
        )

    def _report_csr_bytes(self) -> None:
        now = self.estimated_csr_bytes() - self._csr_baseline
        delta = now - self._reported_bytes[0]
        if delta:
            self._reported_bytes[0] = now
            _obs.gauge("routing.csr_mem_bytes").add(delta)

    def clear_route_caches(self) -> None:
        """Drop derived route caches (the materialized Python path lists).

        On a sharded table this additionally drops every resident shard,
        deletes the spill files, and resets the memory-budget accounting —
        routes re-enumerate deterministically on next contact, so a cleared
        table can never serve stale shards or leak spill space.
        """
        self._pylists.clear()
        if self._sharded:
            self._shards.clear()
            self._dropped_bases.clear()
            self._resident_bytes = 0
            self._pairs_routed = 0
            # an attached table drops its shared views here; anything routed
            # afterwards is private, so the attach-time baseline is void
            self._csr_baseline = 0
            _cleanup_spill(self._spill_state)
            self._report_csr_bytes()

    # ------------------------------------------------- sharded storage internals
    def _spill_dir(self) -> str:
        state = self._spill_state
        directory = state.get("owned_dir")
        if directory is None:
            base = state.get("base_dir")
            if base:
                os.makedirs(base, exist_ok=True)  # type: ignore[arg-type]
                directory = tempfile.mkdtemp(prefix="repro-routes-", dir=base)  # type: ignore[arg-type]
            else:
                directory = tempfile.mkdtemp(prefix="repro-routes-")
            state["owned_dir"] = directory
        return directory  # type: ignore[return-value]

    def _spill_shard(self, si: int, shard: _RouteShard) -> None:
        path = os.path.join(self._spill_dir(), f"shard{si}.npz")
        count = len(shard.index)
        keys = np.fromiter(shard.index.keys(), dtype=np.int64, count=count)
        vals = np.array(list(shard.index.values()), dtype=np.int64).reshape(count, 3)
        with open(path, "wb") as handle:
            np.savez(
                handle,
                keys=keys,
                vals=vals,
                offsets=shard.offsets[: shard.num_paths + 1],
                links=shard.links[: shard.links_used],
                weights=shard.weights[: shard.num_paths],
                id_base=np.int64(shard.id_base),
            )
        nbytes = os.path.getsize(path)
        files: Dict[int, Tuple[str, int]] = self._spill_state["files"]  # type: ignore[assignment]
        previous = files.get(si)
        files[si] = (path, nbytes)
        _obs.gauge("routing.spill_bytes").add(nbytes - (previous[1] if previous else 0))

    def _load_shard(self, si: int) -> _RouteShard:
        path = self._spill_state["files"][si][0]  # type: ignore[index]
        with np.load(path) as data:
            shard = _RouteShard(id_base=int(data["id_base"]))
            vals = data["vals"].tolist()
            shard.index = {
                int(k): (v[0], v[1], v[2]) for k, v in zip(data["keys"].tolist(), vals)
            }
            shard.offsets = data["offsets"]
            shard.links = data["links"]
            shard.weights = data["weights"]
        shard.num_paths = len(shard.weights)
        shard.links_used = len(shard.links)
        shard.dirty = False
        return shard

    def _evict_shard(self, si: int) -> None:
        shard = self._shards.pop(si)
        self._resident_bytes -= shard.nbytes()
        self.shards_evicted += 1
        _obs.counter("routing.shards_evicted").inc()
        if self._spill_enabled:
            if shard.dirty:
                self._spill_shard(si, shard)
        else:
            # Routes re-enumerate (deterministically) on next contact; the id
            # space advances so stale global path ids fail loudly instead of
            # silently aliasing the re-enumerated paths.
            self._dropped_bases[si] = shard.id_base + shard.num_paths
            self._pairs_routed -= len(shard.index)

    def _enforce_budget(self, keep: int) -> None:
        if self.mem_budget is None:
            return
        while self._resident_bytes > self.mem_budget and len(self._shards) > 1:
            victim = next((si for si in self._shards if si != keep), None)
            if victim is None:
                break
            self._evict_shard(victim)
        self._report_csr_bytes()

    def _resident_shard(self, si: int, *, create: bool = False) -> Optional[_RouteShard]:
        """The shard, made resident (reloaded from spill / freshly created)."""
        shard = self._shards.get(si)
        if shard is not None:
            self._shards.move_to_end(si)
            return shard
        if si in self._spill_state["files"]:  # type: ignore[operator]
            shard = self._load_shard(si)
        elif create:
            shard = _RouteShard(id_base=self._dropped_bases.get(si, 0))
            self.shards_built += 1
            _obs.counter("routing.shards_built").inc()
        else:
            return None
        self._shards[si] = shard
        self._resident_bytes += shard.nbytes()
        self._enforce_budget(keep=si)
        return shard

    def _require_shard(self, si: int) -> _RouteShard:
        shard = self._resident_shard(si)
        if shard is None:
            raise RuntimeError(
                f"route shard {si} was evicted with spill disabled; its path ids "
                "can no longer be resolved (enable spill or raise the memory budget)"
            )
        return shard

    def _shard_rows(self, shard: _RouteShard, si: int, local_ids: np.ndarray) -> np.ndarray:
        rows = local_ids - shard.id_base
        if len(rows) and (int(rows.min()) < 0 or int(rows.max()) >= shard.num_paths):
            raise RuntimeError(
                f"stale path ids into route shard {si}: the shard was rebuilt after "
                "a spill-disabled eviction (enable spill or raise the memory budget)"
            )
        return rows

    def _shard_lookup(
        self, src: int, dst: int, shard: Optional[_RouteShard] = None
    ) -> Tuple[int, int, int, _RouteShard]:
        """(first_global_path_id, npaths, nmin, shard) of a pair; populates on miss."""
        si = src // self._shard_sources
        if shard is None:
            shard = self._resident_shard(si, create=True)
        key = src * self.topo.num_nodes + dst
        entry = shard.index.get(key)
        if entry is not None:
            self.stats.record_hits()
        else:
            routes = self.policy.routes(self.provider, src, dst, self.max_paths)
            if not routes.paths:
                raise TopologyError(f"no path between nodes {src} and {dst}")
            self.stats.record_misses()
            before = shard.nbytes()
            shard.append(key, routes.paths, routes.weights, routes.num_minimal)
            self._resident_bytes += shard.nbytes() - before
            self._pairs_routed += 1
            entry = shard.index[key]
            self._enforce_budget(keep=si)
        first_local, npaths, nmin = entry
        return si * _SHARD_STRIDE + first_local, npaths, nmin, shard

    # ------------------------------------------------------------- population
    def _append_paths(
        self, key: int, paths: List[List[int]], weights: List[float], num_minimal: int
    ) -> None:
        if not self._pair_first.flags.writeable:
            # attached (shared, read-only) pair index: privatize on first
            # miss — the shared segment itself is never written
            self._pair_first = self._pair_first.copy()
            self._pair_npaths = self._pair_npaths.copy()
            self._pair_nmin = self._pair_nmin.copy()
        first = self._num_paths
        need_paths = first + len(paths)
        if need_paths + 1 > len(self._path_offsets):
            grown = np.zeros(max(need_paths + 1, _GROW * len(self._path_offsets)), dtype=np.int64)
            grown[: self._num_paths + 1] = self._path_offsets[: self._num_paths + 1]
            self._path_offsets = grown
        if need_paths > len(self._path_weights):
            grown_w = np.zeros(max(need_paths, _GROW * max(len(self._path_weights), 16)))
            grown_w[: self._num_paths] = self._path_weights[: self._num_paths]
            self._path_weights = grown_w
        total_links = self._links_used + sum(len(p) for p in paths)
        if total_links > len(self._path_links):
            grown = np.zeros(max(total_links, _GROW * max(len(self._path_links), 16)), dtype=np.int64)
            grown[: self._links_used] = self._path_links[: self._links_used]
            self._path_links = grown
        self._path_weights[first : first + len(paths)] = weights
        for path in paths:
            end = self._links_used + len(path)
            self._path_links[self._links_used : end] = path
            self._links_used = end
            self._num_paths += 1
            self._path_offsets[self._num_paths] = end
        self._pair_first[key] = first
        self._pair_npaths[key] = len(paths)
        self._pair_nmin[key] = num_minimal
        self._report_csr_bytes()

    def _populate(self, src: int, dst: int) -> int:
        """Ensure ``(src, dst)`` is routed; return its pair key."""
        key = src * self.topo.num_nodes + dst
        if self._pair_first[key] >= 0:
            self.stats.record_hits()
            return key
        routes = self.policy.routes(self.provider, src, dst, self.max_paths)
        if not routes.paths:
            raise TopologyError(f"no path between nodes {src} and {dst}")
        self.stats.record_misses()
        self._append_paths(key, routes.paths, routes.weights, routes.num_minimal)
        return key

    # ---------------------------------------------------------------- queries
    @property
    def num_pairs_routed(self) -> int:
        if self._sharded:
            return int(self._pairs_routed)
        return int((self._pair_first >= 0).sum())

    def paths(self, src: int, dst: int, max_paths: Optional[int] = None) -> List[List[int]]:
        """Candidate paths as lists of directed link indices.

        ``max_paths`` may narrow (never widen) the table's configured width;
        the packet simulator uses this to constrain adaptive choices without
        a second table.
        """
        if src == dst:
            return [[]]
        if self._sharded:
            gid, count, _nmin, shard = self._shard_lookup(src, dst)
            if max_paths is not None:
                count = min(count, max_paths)
            row = (gid % _SHARD_STRIDE) - shard.id_base
            return [
                shard.links[shard.offsets[r] : shard.offsets[r + 1]].tolist()
                for r in range(row, row + count)
            ]
        key = self._populate(src, dst)
        first = int(self._pair_first[key])
        count = int(self._pair_npaths[key])
        if max_paths is not None:
            count = min(count, max_paths)
        out: List[List[int]] = []
        for pid in range(first, first + count):
            s, e = self._path_offsets[pid], self._path_offsets[pid + 1]
            out.append(self._path_links[s:e].tolist())
        return out

    def pair_slice(self, src: int, dst: int) -> Tuple[int, int]:
        """CSR slice of one pair: ``(first_path_id, num_paths)``.

        Populates the pair on first contact.  Path ``p`` of the pair
        (``first <= p < first + count``) occupies
        ``path_links[path_offsets[p]:path_offsets[p+1]]`` in eager mode; in
        sharded mode the ids are global (shard-encoded) and resolved by the
        table's own gathers.
        """
        if self._sharded:
            gid, count, _nmin, _shard = self._shard_lookup(src, dst)
            return int(gid), int(count)
        key = self._populate(src, dst)
        return int(self._pair_first[key]), int(self._pair_npaths[key])

    def pair_path_lists(
        self, src: int, dst: int, max_paths: Optional[int] = None
    ) -> List[List[int]]:
        """Candidate paths of a pair as **memoized** Python link-index lists.

        Unlike :meth:`paths`, the returned lists are cached on the table and
        shared by every caller — the packet simulator's per-packet adaptive
        scoring iterates these lists millions of times, and because the table
        itself is memoized per ``(topology, max_paths)``, the materialization
        cost is paid once per pair across *all* simulator instances.  Treat
        the result as immutable.
        """
        if src == dst:
            return [[]]
        if self._sharded:
            gid, count, _nmin, shard = self._shard_lookup(src, dst)
            if max_paths is not None:
                count = min(count, max_paths)
            cache_key = (src * self.topo.num_nodes + dst, count)
            cached = self._pylists.get(cache_key)
            if cached is None:
                row = (gid % _SHARD_STRIDE) - shard.id_base
                cached = [
                    shard.links[shard.offsets[r] : shard.offsets[r + 1]].tolist()
                    for r in range(row, row + count)
                ]
                self._pylists[cache_key] = cached
            return cached
        first, count = self.pair_slice(src, dst)
        if max_paths is not None:
            count = min(count, max_paths)
        cache_key = (src * self.topo.num_nodes + dst, count)
        cached = self._pylists.get(cache_key)
        if cached is None:
            offsets, links = self._path_offsets, self._path_links
            cached = [
                links[offsets[pid] : offsets[pid + 1]].tolist()
                for pid in range(first, first + count)
            ]
            self._pylists[cache_key] = cached
        return cached

    def pair_arrays(self, src_nodes: np.ndarray, dst_nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """First path id and path count per ``(src, dst)`` pair, vectorized.

        Populates any missing pairs (the only Python-level loop, and only on
        first contact with a pair), then answers from the index arrays.  In
        sharded mode the lookups are grouped by shard so each shard is made
        resident exactly once per call.
        """
        if self._sharded:
            return self._sharded_pair_arrays(src_nodes, dst_nodes)
        n = self.topo.num_nodes
        keys = src_nodes * n + dst_nodes
        missing = np.nonzero(self._pair_first[keys] < 0)[0]
        for i in missing:
            self._populate(int(src_nodes[i]), int(dst_nodes[i]))
        self.stats.record_hits(len(keys) - len(missing))
        return self._pair_first[keys], self._pair_npaths[keys]

    def _sharded_pair_arrays(
        self, src_nodes: np.ndarray, dst_nodes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        k = len(src_nodes)
        first = np.empty(k, dtype=np.int64)
        npaths = np.empty(k, dtype=np.int64)
        shard_ids = np.asarray(src_nodes, dtype=np.int64) // self._shard_sources
        order = np.argsort(shard_ids, kind="stable")
        current_si = -1
        shard: Optional[_RouteShard] = None
        for i in order.tolist():
            si = int(shard_ids[i])
            if si != current_si:
                shard = self._resident_shard(si, create=True)
                current_si = si
            gid, count, _nmin, shard = self._shard_lookup(
                int(src_nodes[i]), int(dst_nodes[i]), shard
            )
            first[i] = gid
            npaths[i] = count
        return first, npaths

    def gather_links(self, path_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated link indices and per-path lengths for ``path_ids``.

        Returns ``(links, lengths)`` where ``links`` is the concatenation of
        every path's link indices in order — the CSR gather at the heart of
        :meth:`FlowSimulator.assign`.
        """
        if self._sharded:
            return self._sharded_gather_links(np.asarray(path_ids, dtype=np.int64))
        idx, lengths = csr_range_indices(self._path_offsets, path_ids)
        if len(idx) == 0:
            return np.zeros(0, dtype=np.int64), lengths
        return self._path_links[idx], lengths

    def _sharded_gather_links(self, path_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        k = len(path_ids)
        lengths = np.empty(k, dtype=np.int64)
        shard_ids = path_ids // _SHARD_STRIDE
        local_ids = path_ids - shard_ids * _SHARD_STRIDE
        gathered = []
        for si in np.unique(shard_ids).tolist():
            si = int(si)
            shard = self._require_shard(si)
            positions = np.nonzero(shard_ids == si)[0]
            rows = self._shard_rows(shard, si, local_ids[positions])
            idx, lens = csr_range_indices(shard.offsets, rows)
            lengths[positions] = lens
            # copy now (fancy indexing already copies): the shard may be
            # evicted while a later shard is made resident
            gathered.append((positions, lens, shard.links[idx]))
        total = int(lengths.sum())
        out = np.empty(total, dtype=np.int64)
        ends = np.cumsum(lengths)
        starts = ends - lengths
        for positions, lens, links in gathered:
            out[_scatter_targets(starts[positions], lens)] = links
        return out, lengths

    def gather_path_weights(self, path_ids: np.ndarray) -> np.ndarray:
        """Policy split weight of every path in ``path_ids`` (vectorized)."""
        if self._sharded:
            path_ids = np.asarray(path_ids, dtype=np.int64)
            out = np.empty(len(path_ids), dtype=np.float64)
            shard_ids = path_ids // _SHARD_STRIDE
            local_ids = path_ids - shard_ids * _SHARD_STRIDE
            for si in np.unique(shard_ids).tolist():
                si = int(si)
                shard = self._require_shard(si)
                positions = np.nonzero(shard_ids == si)[0]
                rows = self._shard_rows(shard, si, local_ids[positions])
                out[positions] = shard.weights[rows]
            return out
        return self._path_weights[path_ids]

    def pair_weights(self, src: int, dst: int) -> List[float]:
        """Split weights of one pair's candidate paths (populates the pair)."""
        if src == dst:
            return [1.0]
        if self._sharded:
            gid, count, _nmin, shard = self._shard_lookup(src, dst)
            row = (gid % _SHARD_STRIDE) - shard.id_base
            return shard.weights[row : row + count].tolist()
        first, count = self.pair_slice(src, dst)
        return self._path_weights[first : first + count].tolist()

    def pair_minimal_counts(self, src_nodes: np.ndarray, dst_nodes: np.ndarray) -> np.ndarray:
        """Number of leading minimal paths per pair, vectorized.

        Pairs must already be populated (call :meth:`pair_arrays` first;
        a sharded table re-populates evicted pairs transparently).  Equals
        the pair's path count under ``minimal``/``ecmp``, the
        minimal-group size under ``ugal`` (whose trailing paths are the
        Valiant alternates), and 0 under ``valiant`` (every stored path is
        a detour).
        """
        if self._sharded:
            out = np.empty(len(src_nodes), dtype=np.int64)
            shard_ids = np.asarray(src_nodes, dtype=np.int64) // self._shard_sources
            order = np.argsort(shard_ids, kind="stable")
            current_si = -1
            shard: Optional[_RouteShard] = None
            for i in order.tolist():
                si = int(shard_ids[i])
                if si != current_si:
                    shard = self._resident_shard(si, create=True)
                    current_si = si
                _gid, _count, nmin, shard = self._shard_lookup(
                    int(src_nodes[i]), int(dst_nodes[i]), shard
                )
                out[i] = nmin
            return out
        keys = src_nodes * self.topo.num_nodes + dst_nodes
        return self._pair_nmin[keys]

    # ---------------------------------------------------------- shared memory
    def share(self) -> SharedRouteHandle:
        """Export the table's current contents into a shared-memory segment.

        Returns a picklable :class:`SharedRouteHandle`; repeated calls
        return the same handle (one segment per table — the snapshot covers
        the pairs routed so far, and attached processes re-enumerate later
        pairs into private memory).  The segment is unlinked when this
        table is garbage collected or the process exits.
        """
        handle = getattr(self, "_shared_handle", None)
        if handle is not None:
            return handle
        from multiprocessing import shared_memory

        offset = 0
        flat: List[Tuple[int, np.ndarray]] = []

        def pack(arrays) -> Tuple[Tuple[str, int, int], ...]:
            nonlocal offset
            specs = []
            for key, arr in arrays:
                specs.append((key, offset, int(len(arr))))
                flat.append((offset, arr))
                offset += int(arr.nbytes)
            return tuple(specs)

        arrays_spec: Tuple[Tuple[str, int, int], ...] = ()
        shards_spec: List[Tuple[int, int, Tuple[Tuple[str, int, int], ...]]] = []
        if self._sharded:
            spilled = self._spill_state["files"]
            for si in sorted(set(self._shards) | set(spilled)):  # type: ignore[arg-type]
                shard = self._shards.get(si)
                if shard is None:
                    shard = self._load_shard(si)
                if not shard.index:
                    continue
                count = len(shard.index)
                keys = np.fromiter(shard.index.keys(), dtype=np.int64, count=count)
                vals = np.array(list(shard.index.values()), dtype=np.int64).reshape(count * 3)
                shards_spec.append(
                    (
                        int(si),
                        int(shard.id_base),
                        pack(
                            [
                                ("keys", keys),
                                ("vals", vals),
                                ("offsets", np.ascontiguousarray(shard.offsets[: shard.num_paths + 1])),
                                ("links", np.ascontiguousarray(shard.links[: shard.links_used])),
                                ("weights", np.ascontiguousarray(shard.weights[: shard.num_paths])),
                            ]
                        ),
                    )
                )
        else:
            arrays_spec = pack(
                [
                    ("pair_first", self._pair_first),
                    ("pair_npaths", self._pair_npaths),
                    ("pair_nmin", self._pair_nmin),
                    ("offsets", np.ascontiguousarray(self._path_offsets[: self._num_paths + 1])),
                    ("links", np.ascontiguousarray(self._path_links[: self._links_used])),
                    ("weights", np.ascontiguousarray(self._path_weights[: self._num_paths])),
                ]
            )
        total = max(offset, 8)  # zero-size segments are not allowed
        seg = shared_memory.SharedMemory(create=True, size=total)
        for off, arr in flat:
            if len(arr):
                np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf, offset=off)[:] = arr
        handle = SharedRouteHandle(
            name=seg.name,
            nbytes=total,
            topo=self.topo,
            signature=_topo_signature(self.topo),
            policy=self.policy,
            max_paths=self.max_paths,
            mem_budget=self.mem_budget,
            sharded=self._sharded,
            owner_pid=os.getpid(),
            owner_tracker_pid=_tracker_pid(),
            shard_sources=self._shard_sources if self._sharded else None,
            arrays=arrays_spec,
            shards=tuple(shards_spec),
        )
        lease = _new_lease(seg, total, owned=True)
        weakref.finalize(self, _release_segment, lease)
        _obs.gauge("routing.shm_segments").add(1)
        _obs.gauge("routing.shm_bytes").add(total)
        self._shared_handle = handle
        self._shm_lease = lease
        return handle

    @classmethod
    def attach(
        cls, handle: SharedRouteHandle, topo: Optional[Topology] = None
    ) -> "RouteTable":
        """Map a shared table exported by :meth:`share` into this process.

        Array payloads are zero-copy, read-only views into the shared
        segment; queries over snapshot pairs are bit-identical to the
        owning table's.  Misses re-enumerate deterministically into
        process-private memory (the shared bytes are never written).
        ``topo`` defaults to the handle's embedded topology; passing a
        locally built topology with a different structural signature
        raises ``ValueError``.
        """
        from multiprocessing import shared_memory

        if topo is None:
            topo = handle.topo
        elif _topo_signature(topo) != handle.signature:
            raise ValueError(
                "topology does not match the shared route table "
                f"(local {_topo_signature(topo)!r} != shared {handle.signature!r})"
            )
        seg = shared_memory.SharedMemory(name=handle.name)
        # CPython registers *every* SharedMemory open with this process's
        # resource tracker, which would unlink the owner's live segment when
        # this (attaching) process exits.  Lifetime belongs to the owning
        # table's finalizer, so deregister the attachment — unless this
        # process *shares* the owner's tracker daemon (in-process attach,
        # or a fork child that inherited the tracker pipe): there the
        # registration is the owner's single entry, the shared tracker
        # outlives this process, and deregistering here would orphan the
        # owner's eventual ``unlink`` bookkeeping instead.
        if _tracker_pid() != handle.owner_tracker_pid or handle.owner_tracker_pid is None:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(seg._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:
                pass

        def view(spec: Tuple[str, int, int]) -> np.ndarray:
            key, off, length = spec
            arr = np.ndarray(
                (length,), dtype=_ARRAY_DTYPES.get(key, np.int64), buffer=seg.buf, offset=off
            )
            arr.flags.writeable = False
            return arr

        table = object.__new__(cls)
        table.topo = topo
        table.max_paths = handle.max_paths
        table.provider = path_provider_for(topo)
        table.policy = get_policy(handle.policy)
        table.stats = RouteTableStats()
        table._pylists = {}
        table._sharded = bool(handle.sharded)
        if table._sharded:
            table.mem_budget = None  # attached shards are never evicted or spilled
            table._shard_sources = int(handle.shard_sources or DEFAULT_SHARD_SOURCES)
            table._spill_enabled = False
            table._shards = OrderedDict()
            table._dropped_bases = {}
            table._resident_bytes = 0
            table._pairs_routed = 0
            table.shards_built = 0
            table.shards_evicted = 0
            table._spill_state = {"files": {}, "owned_dir": None, "base_dir": None}
            weakref.finalize(table, _cleanup_spill, table._spill_state)
            for si, id_base, specs in handle.shards:
                named = {spec[0]: spec for spec in specs}
                shard = _RouteShard(id_base=int(id_base))
                keys = view(named["keys"])
                vals = view(named["vals"]).reshape(-1, 3)
                shard.index = {
                    int(k): (int(v[0]), int(v[1]), int(v[2]))
                    for k, v in zip(keys.tolist(), vals.tolist())
                }
                shard.offsets = view(named["offsets"])
                shard.links = view(named["links"])
                shard.weights = view(named["weights"])
                shard.num_paths = len(shard.weights)
                shard.links_used = len(shard.links)
                shard.dirty = False
                table._shards[int(si)] = shard
                table._resident_bytes += shard.nbytes()
                table._pairs_routed += len(shard.index)
        else:
            table.mem_budget = handle.mem_budget
            named = {spec[0]: spec for spec in handle.arrays}
            table._pair_first = view(named["pair_first"])
            table._pair_npaths = view(named["pair_npaths"])
            table._pair_nmin = view(named["pair_nmin"])
            table._path_offsets = view(named["offsets"])
            table._path_links = view(named["links"])
            table._path_weights = view(named["weights"])
            table._num_paths = len(table._path_weights)
            table._links_used = len(table._path_links)
        table._attach_lease = _new_lease(seg, handle.nbytes, owned=False)
        weakref.finalize(table, _release_segment, table._attach_lease)
        table._shared_handle = handle
        table._csr_baseline = table.estimated_csr_bytes()
        table._builder_pid = os.getpid()
        table._reported_bytes = [0]
        weakref.finalize(table, _release_csr_bytes, table._reported_bytes)
        _obs.counter("routing.tables_attached").inc()
        register_route_cache_client(table)
        return table


# ------------------------------------------------------------------ memoization
# topology -> {(policy key, max_paths): RouteTable}; weak keys so tables die
# with the topology.
_TABLES: "weakref.WeakKeyDictionary[Topology, Dict[Tuple, RouteTable]]" = weakref.WeakKeyDictionary()

# Objects holding caches derived from route tables (simulator assignment
# LRUs, materialized path lists, packet scoring state).  Weak so registering
# never extends a lifetime; each client exposes ``clear_route_caches()``.
_CACHE_CLIENTS: "weakref.WeakSet" = weakref.WeakSet()


def register_route_cache_client(client) -> None:
    """Register an object whose ``clear_route_caches()`` must run when
    :func:`clear_route_tables` resets the routing state."""
    _CACHE_CLIENTS.add(client)


# seed key (signature, policy key, max_paths, budget) -> SharedRouteHandle;
# consulted by route_table_for on memo miss so worker processes attach the
# parent's shared tables instead of rebuilding them.
_SHARED_SEEDS: Dict[Tuple, SharedRouteHandle] = {}


def seed_shared_route_tables(handles: Sequence[SharedRouteHandle]) -> None:
    """Install shared-table seeds for :func:`route_table_for` to attach.

    Called in pool workers (via the initializer) with the handles the
    parent exported: any subsequent ``route_table_for`` whose
    ``(topology signature, policy, max_paths, budget)`` matches a seed
    attaches the shared segment instead of building a table.  Later seeds
    with the same key replace earlier ones.
    """
    for handle in handles:
        _SHARED_SEEDS[handle.seed_key()] = handle


def clear_shared_route_seeds() -> None:
    """Drop every installed shared-table seed (attached tables survive)."""
    _SHARED_SEEDS.clear()


def _attach_seed(
    topo: Topology, policy: RoutingPolicy, max_paths: int, budget: Optional[int]
) -> Optional[RouteTable]:
    """Attach a matching seed, or ``None`` (stale seeds fail soft)."""
    if not _SHARED_SEEDS:
        return None
    key = (_topo_signature(topo), policy.cache_key(), max_paths, budget)
    handle = _SHARED_SEEDS.get(key)
    if handle is None:
        return None
    try:
        return RouteTable.attach(handle, topo=topo)
    except (FileNotFoundError, ValueError, OSError):
        # the owner died or dropped the table; fall back to a local build
        _SHARED_SEEDS.pop(key, None)
        return None


def route_table_for(
    topo: Topology,
    *,
    max_paths: int = DEFAULT_MAX_PATHS,
    policy: Union[str, RoutingPolicy, None] = None,
    mem_budget: Union[str, int, float, None] = _UNSET,
) -> RouteTable:
    """The shared :class:`RouteTable` of ``(topo, policy, max_paths, budget)``.

    Repeated calls return the *same* table object, so any number of
    simulators and backends built on one topology reuse each other's route
    enumeration work.  ``policy`` is a registered policy name or a
    :class:`~repro.sim.policy.RoutingPolicy` instance (``None`` ==
    ``"minimal"``); policies with equal :meth:`cache_key` share a table.
    ``mem_budget`` (bytes or ``"4G"``-style string; default: the
    ``REPRO_ROUTE_MEM_BUDGET`` environment variable) selects sharded
    storage when the dense pair index would not fit — callers asking for
    the same resolved budget share one table.
    """
    resolved = get_policy(policy)
    if mem_budget is _UNSET:
        budget = default_mem_budget()
    else:
        budget = parse_mem_budget(mem_budget)
    per_topo = _TABLES.get(topo)
    if per_topo is None:
        per_topo = {}
        _TABLES[topo] = per_topo
    key = (resolved.cache_key(), max_paths, budget)
    table = per_topo.get(key)
    if table is None:
        table = _attach_seed(topo, resolved, max_paths, budget)
        if table is None:
            table = RouteTable(topo, max_paths=max_paths, policy=resolved, mem_budget=budget)
        per_topo[key] = table
    return table


def live_route_tables() -> List[RouteTable]:
    """Every currently memoized :class:`RouteTable`, across all topologies.

    Introspection for benchmarks and tests asserting memory-budget
    behaviour: after an in-process run, the tables it built are exactly the
    memoized ones (each table holds a strong reference to its topology, so
    entries outlive the simulators that created them until
    :func:`clear_route_tables`).
    """
    return [table for per_topo in _TABLES.values() for table in per_topo.values()]


def private_route_table_bytes() -> int:
    """Route-table CSR bytes *private to this process*.

    A table this process built counts in full; a table attached to another
    process' shared segment counts only what it added beyond the zero-copy
    views (privately routed misses).  Tables inherited through ``fork``
    (built by the parent, still memoized in the child's copied module
    state) are excluded — they are the parent's bytes, shared
    copy-on-write.  This is the per-worker memory metric the scale-out
    benchmarks assert on: a warm-pool worker solving against attached
    tables reports ~0 where a rebuilding worker reports the table
    footprint.
    """
    pid = os.getpid()
    total = 0
    for table in live_route_tables():
        if getattr(table, "_builder_pid", None) != pid:
            continue
        total += max(0, table.estimated_csr_bytes() - table._csr_baseline)
    return total


def clear_route_tables() -> None:
    """Drop every memoized table *and* every derived route cache.

    Besides the table memo itself, this clears the registered cache
    clients — live :class:`FlowSimulator` assignment LRUs, the tables'
    materialized ``pair_path_lists``, packet-simulator scoring state, and
    sharded tables' resident shards, spill files, and budget accounting.
    Simulators constructed before the reset keep their (immutable, still
    valid) table object, but their derived caches are rebuilt on next use
    and every simulator constructed afterwards gets a fresh table.
    """
    _TABLES.clear()
    for client in list(_CACHE_CLIENTS):
        client.clear_route_caches()
