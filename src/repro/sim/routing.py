"""Shared, vectorized route tables: one routing state per topology.

Both simulators (flow-level and packet-level) route over the same candidate
minimal paths, yet historically each simulator instance rebuilt its own
per-``(src, dst)`` path cache and every consumer that constructed a fresh
simulator (``analysis.bandwidth``, the figure benchmarks, the cluster
lifetime simulator's service-time model) threw that work away.  A
:class:`RouteTable` factors the routing state out of the simulators:

* paths are stored **vectorized** in CSR-style NumPy arrays (a flat array of
  directed link indices plus per-path offsets), so the flow simulator can
  build its subflow/link incidence arrays with pure array operations instead
  of per-flow Python loops;
* population is **lazy**: a pair's paths are enumerated by the topology's
  structured :class:`~repro.sim.paths.PathProvider` the first time the pair
  is routed, then served from the table forever after;
* paths and per-path **split weights** are produced by a pluggable
  :class:`~repro.sim.policy.RoutingPolicy` (``minimal`` / ``ecmp`` /
  ``valiant`` / ``ugal``); the default ``minimal`` policy reproduces the
  historical behaviour bit-identically;
* tables are **memoized per ``(topology, policy, max_paths)``** — every
  simulator (and every backend, see :mod:`repro.sim.backend`) asking for the
  same topology at the same policy and multipath width shares one table, so
  route state survives across simulator instances.  The memo holds the
  topology weakly; dropping the topology frees its tables.

``RouteTable.stats`` counts pair-level hits/misses, which the test suite
uses to assert cache reuse across simulator instances.

:func:`clear_route_tables` drops the memo **and** clears every derived
route cache registered via :func:`register_route_cache_client` (the flow
simulator's :class:`FlowAssignment` LRUs, the tables' materialized
``pair_path_lists``, the packet simulator's per-pair scoring state), so a
full reset can never serve stale routes out of a derived cache.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..obs import registry as _obs
from ..topology.base import Topology, TopologyError
from .paths import DEFAULT_MAX_PATHS, PathProvider, path_provider_for
from .policy import RoutingPolicy, get_policy

__all__ = [
    "RouteTable",
    "RouteTableStats",
    "route_table_for",
    "clear_route_tables",
    "register_route_cache_client",
    "csr_range_indices",
]

_GROW = 4  # geometric growth factor exponent base for the flat arrays


def _release_csr_bytes(reported: List[int]) -> None:
    """Finalizer: subtract a dead table's last-reported CSR bytes."""
    _obs.gauge("routing.csr_mem_bytes").add(-reported[0])


def csr_range_indices(offsets: np.ndarray, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Indices covering ``arange(offsets[i], offsets[i+1])`` for every id.

    The CSR multi-range gather shared by :meth:`RouteTable.gather_links`
    and the flow simulator's incremental max-min solver: returns
    ``(indices, lengths)`` where ``indices`` concatenates each id's range
    in order.
    """
    starts = offsets[ids]
    lengths = offsets[ids + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), lengths
    ends = np.cumsum(lengths)
    out_starts = ends - lengths
    indices = (
        np.arange(total, dtype=np.int64)
        - np.repeat(out_starts, lengths)
        + np.repeat(starts, lengths)
    )
    return indices, lengths


class RouteTableStats:
    """Pair-level cache counters of one :class:`RouteTable`.

    A thin view over two table-local :class:`repro.obs.registry.Counter`
    instruments whose parents are the registry's ``routing.pair_hits`` /
    ``routing.pair_misses`` aggregates: bumping a table's stats also rolls
    up into the process-wide routing family, with no extra bookkeeping at
    the call sites.  The ``hits`` / ``misses`` / ``pairs_routed`` read API
    predates ``repro.obs`` and is pinned by the routing backend tests.
    """

    __slots__ = ("_hits", "_misses")

    def __init__(self) -> None:
        self._hits = _obs.Counter("hits", parent=_obs.counter("routing.pair_hits"))
        self._misses = _obs.Counter("misses", parent=_obs.counter("routing.pair_misses"))

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def pairs_routed(self) -> int:
        return self.misses

    def record_hits(self, n: int = 1) -> None:
        self._hits.inc(n)

    def record_misses(self, n: int = 1) -> None:
        self._misses.inc(n)

    def __repr__(self) -> str:  # keeps the old dataclass repr shape
        return f"RouteTableStats(hits={self.hits}, misses={self.misses})"


class RouteTable:
    """Lazily-populated CSR store of multipath routes on one topology.

    Layout: path ``p`` occupies ``path_links[path_offsets[p]:path_offsets[p+1]]``
    (directed link indices); the pair ``(src, dst)`` owns the contiguous path
    id range ``[pair_first[key], pair_first[key] + pair_npaths[key])`` where
    ``key = src * num_nodes + dst``.  Contiguity is what makes the flow
    simulator's incidence construction a gather instead of a loop.
    """

    def __init__(
        self,
        topo: Topology,
        *,
        max_paths: int = DEFAULT_MAX_PATHS,
        provider: Optional[PathProvider] = None,
        policy: Union[str, RoutingPolicy, None] = None,
    ):
        if max_paths < 1:
            raise ValueError("max_paths must be at least 1")
        self.topo = topo
        self.max_paths = max_paths
        self.provider = provider if provider is not None else path_provider_for(topo)
        self.policy = get_policy(policy)
        self.stats = RouteTableStats()
        n = topo.num_nodes
        # Pair key -> first path id / path count.  -1 == not yet populated.
        self._pair_first = np.full(n * n, -1, dtype=np.int64)
        self._pair_npaths = np.zeros(n * n, dtype=np.int64)
        # Leading paths of the pair that are minimal (== npaths except UGAL).
        self._pair_nmin = np.zeros(n * n, dtype=np.int64)
        # CSR storage, grown geometrically.
        self._path_offsets = np.zeros(1, dtype=np.int64)
        self._path_links = np.zeros(0, dtype=np.int64)
        self._path_weights = np.zeros(0, dtype=np.float64)
        self._num_paths = 0
        self._links_used = 0
        # (key, count) -> materialized Python path lists (shared, immutable)
        self._pylists: Dict[Tuple[int, int], List[List[int]]] = {}
        _obs.counter("routing.tables_built").inc()
        # routing.csr_mem_bytes tracks the estimated bytes of *live* tables:
        # growth is reported as gauge deltas, and a finalizer releases the
        # table's last-reported contribution when it is garbage collected.
        self._reported_bytes = [0]
        weakref.finalize(self, _release_csr_bytes, self._reported_bytes)
        self._report_csr_bytes()
        register_route_cache_client(self)

    def estimated_csr_bytes(self) -> int:
        """Estimated bytes held by the table's index + CSR arrays.

        Dominated by the three ``O(num_nodes**2)`` pair-index arrays; the
        number ROADMAP item 1 (10k+ endpoint scaling) is judged against.
        """
        return int(
            self._pair_first.nbytes
            + self._pair_npaths.nbytes
            + self._pair_nmin.nbytes
            + self._path_offsets.nbytes
            + self._path_links.nbytes
            + self._path_weights.nbytes
        )

    def _report_csr_bytes(self) -> None:
        now = self.estimated_csr_bytes()
        delta = now - self._reported_bytes[0]
        if delta:
            self._reported_bytes[0] = now
            _obs.gauge("routing.csr_mem_bytes").add(delta)

    def clear_route_caches(self) -> None:
        """Drop derived route caches (the materialized Python path lists)."""
        self._pylists.clear()

    # ------------------------------------------------------------- population
    def _append_paths(
        self, key: int, paths: List[List[int]], weights: List[float], num_minimal: int
    ) -> None:
        first = self._num_paths
        need_paths = first + len(paths)
        if need_paths + 1 > len(self._path_offsets):
            grown = np.zeros(max(need_paths + 1, _GROW * len(self._path_offsets)), dtype=np.int64)
            grown[: self._num_paths + 1] = self._path_offsets[: self._num_paths + 1]
            self._path_offsets = grown
        if need_paths > len(self._path_weights):
            grown_w = np.zeros(max(need_paths, _GROW * max(len(self._path_weights), 16)))
            grown_w[: self._num_paths] = self._path_weights[: self._num_paths]
            self._path_weights = grown_w
        total_links = self._links_used + sum(len(p) for p in paths)
        if total_links > len(self._path_links):
            grown = np.zeros(max(total_links, _GROW * max(len(self._path_links), 16)), dtype=np.int64)
            grown[: self._links_used] = self._path_links[: self._links_used]
            self._path_links = grown
        self._path_weights[first : first + len(paths)] = weights
        for path in paths:
            end = self._links_used + len(path)
            self._path_links[self._links_used : end] = path
            self._links_used = end
            self._num_paths += 1
            self._path_offsets[self._num_paths] = end
        self._pair_first[key] = first
        self._pair_npaths[key] = len(paths)
        self._pair_nmin[key] = num_minimal
        self._report_csr_bytes()

    def _populate(self, src: int, dst: int) -> int:
        """Ensure ``(src, dst)`` is routed; return its pair key."""
        key = src * self.topo.num_nodes + dst
        if self._pair_first[key] >= 0:
            self.stats.record_hits()
            return key
        routes = self.policy.routes(self.provider, src, dst, self.max_paths)
        if not routes.paths:
            raise TopologyError(f"no path between nodes {src} and {dst}")
        self.stats.record_misses()
        self._append_paths(key, routes.paths, routes.weights, routes.num_minimal)
        return key

    # ---------------------------------------------------------------- queries
    @property
    def num_pairs_routed(self) -> int:
        return int((self._pair_first >= 0).sum())

    def paths(self, src: int, dst: int, max_paths: Optional[int] = None) -> List[List[int]]:
        """Candidate paths as lists of directed link indices.

        ``max_paths`` may narrow (never widen) the table's configured width;
        the packet simulator uses this to constrain adaptive choices without
        a second table.
        """
        if src == dst:
            return [[]]
        key = self._populate(src, dst)
        first = int(self._pair_first[key])
        count = int(self._pair_npaths[key])
        if max_paths is not None:
            count = min(count, max_paths)
        out: List[List[int]] = []
        for pid in range(first, first + count):
            s, e = self._path_offsets[pid], self._path_offsets[pid + 1]
            out.append(self._path_links[s:e].tolist())
        return out

    def pair_slice(self, src: int, dst: int) -> Tuple[int, int]:
        """CSR slice of one pair: ``(first_path_id, num_paths)``.

        Populates the pair on first contact.  Path ``p`` of the pair
        (``first <= p < first + count``) occupies
        ``path_links[path_offsets[p]:path_offsets[p+1]]``.
        """
        key = self._populate(src, dst)
        return int(self._pair_first[key]), int(self._pair_npaths[key])

    def pair_path_lists(
        self, src: int, dst: int, max_paths: Optional[int] = None
    ) -> List[List[int]]:
        """Candidate paths of a pair as **memoized** Python link-index lists.

        Unlike :meth:`paths`, the returned lists are cached on the table and
        shared by every caller — the packet simulator's per-packet adaptive
        scoring iterates these lists millions of times, and because the table
        itself is memoized per ``(topology, max_paths)``, the materialization
        cost is paid once per pair across *all* simulator instances.  Treat
        the result as immutable.
        """
        if src == dst:
            return [[]]
        first, count = self.pair_slice(src, dst)
        if max_paths is not None:
            count = min(count, max_paths)
        cache_key = (src * self.topo.num_nodes + dst, count)
        cached = self._pylists.get(cache_key)
        if cached is None:
            offsets, links = self._path_offsets, self._path_links
            cached = [
                links[offsets[pid] : offsets[pid + 1]].tolist()
                for pid in range(first, first + count)
            ]
            self._pylists[cache_key] = cached
        return cached

    def pair_arrays(self, src_nodes: np.ndarray, dst_nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """First path id and path count per ``(src, dst)`` pair, vectorized.

        Populates any missing pairs (the only Python-level loop, and only on
        first contact with a pair), then answers from the index arrays.
        """
        n = self.topo.num_nodes
        keys = src_nodes * n + dst_nodes
        missing = np.nonzero(self._pair_first[keys] < 0)[0]
        for i in missing:
            self._populate(int(src_nodes[i]), int(dst_nodes[i]))
        self.stats.record_hits(len(keys) - len(missing))
        return self._pair_first[keys], self._pair_npaths[keys]

    def gather_links(self, path_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated link indices and per-path lengths for ``path_ids``.

        Returns ``(links, lengths)`` where ``links`` is the concatenation of
        every path's link indices in order — the CSR gather at the heart of
        :meth:`FlowSimulator.assign`.
        """
        idx, lengths = csr_range_indices(self._path_offsets, path_ids)
        if len(idx) == 0:
            return np.zeros(0, dtype=np.int64), lengths
        return self._path_links[idx], lengths

    def gather_path_weights(self, path_ids: np.ndarray) -> np.ndarray:
        """Policy split weight of every path in ``path_ids`` (vectorized)."""
        return self._path_weights[path_ids]

    def pair_weights(self, src: int, dst: int) -> List[float]:
        """Split weights of one pair's candidate paths (populates the pair)."""
        if src == dst:
            return [1.0]
        first, count = self.pair_slice(src, dst)
        return self._path_weights[first : first + count].tolist()

    def pair_minimal_counts(self, src_nodes: np.ndarray, dst_nodes: np.ndarray) -> np.ndarray:
        """Number of leading minimal paths per pair, vectorized.

        Pairs must already be populated (call :meth:`pair_arrays` first).
        Equals the pair's path count under ``minimal``/``ecmp``, the
        minimal-group size under ``ugal`` (whose trailing paths are the
        Valiant alternates), and 0 under ``valiant`` (every stored path is
        a detour).
        """
        keys = src_nodes * self.topo.num_nodes + dst_nodes
        return self._pair_nmin[keys]


# ------------------------------------------------------------------ memoization
# topology -> {(policy key, max_paths): RouteTable}; weak keys so tables die
# with the topology.
_TABLES: "weakref.WeakKeyDictionary[Topology, Dict[Tuple, RouteTable]]" = weakref.WeakKeyDictionary()

# Objects holding caches derived from route tables (simulator assignment
# LRUs, materialized path lists, packet scoring state).  Weak so registering
# never extends a lifetime; each client exposes ``clear_route_caches()``.
_CACHE_CLIENTS: "weakref.WeakSet" = weakref.WeakSet()


def register_route_cache_client(client) -> None:
    """Register an object whose ``clear_route_caches()`` must run when
    :func:`clear_route_tables` resets the routing state."""
    _CACHE_CLIENTS.add(client)


def route_table_for(
    topo: Topology,
    *,
    max_paths: int = DEFAULT_MAX_PATHS,
    policy: Union[str, RoutingPolicy, None] = None,
) -> RouteTable:
    """The shared :class:`RouteTable` of ``(topo, policy, max_paths)``.

    Repeated calls return the *same* table object, so any number of
    simulators and backends built on one topology reuse each other's route
    enumeration work.  ``policy`` is a registered policy name or a
    :class:`~repro.sim.policy.RoutingPolicy` instance (``None`` ==
    ``"minimal"``); policies with equal :meth:`cache_key` share a table.
    """
    resolved = get_policy(policy)
    per_topo = _TABLES.get(topo)
    if per_topo is None:
        per_topo = {}
        _TABLES[topo] = per_topo
    key = (resolved.cache_key(), max_paths)
    table = per_topo.get(key)
    if table is None:
        table = RouteTable(topo, max_paths=max_paths, policy=resolved)
        per_topo[key] = table
    return table


def clear_route_tables() -> None:
    """Drop every memoized table *and* every derived route cache.

    Besides the table memo itself, this clears the registered cache
    clients — live :class:`FlowSimulator` assignment LRUs, the tables'
    materialized ``pair_path_lists``, and packet-simulator scoring state.
    Simulators constructed before the reset keep their (immutable, still
    valid) table object, but their derived caches are rebuilt on next use
    and every simulator constructed afterwards gets a fresh table.
    """
    _TABLES.clear()
    for client in list(_CACHE_CLIENTS):
        client.clear_route_caches()
