"""Network simulation substrates: flow-level and packet-level simulators,
shared vectorized route tables, and the pluggable backend interface."""

from .backend import (
    BACKENDS,
    AnalyticBackend,
    FlowBackend,
    NetworkModel,
    PacketBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .engine import EventEngine, EventHandle
from .flowsim import FlowAssignment, FlowSimulator, PhaseResult
from .network import PacketNetwork, PacketSimConfig, PacketSimResult
from .packet import DEFAULT_PACKET_SIZE, Message, Packet
from .reference import ReferencePacketNetwork, reference_maxmin_rates
from .routing import RouteTable, RouteTableStats, clear_route_tables, route_table_for
from .paths import (
    DragonflyPathProvider,
    FatTreePathProvider,
    GenericPathProvider,
    HxMeshPathProvider,
    HyperXPathProvider,
    PathProvider,
    TorusPathProvider,
    path_provider_for,
)
from .traffic import (
    Flow,
    alltoall_phase,
    alltoall_phases,
    nearest_neighbor_2d_flows,
    random_permutation,
    ring_neighbor_flows,
    sampled_alltoall_phases,
    uniform_pair_sample,
)

__all__ = [
    "NetworkModel",
    "AnalyticBackend",
    "FlowBackend",
    "PacketBackend",
    "BACKENDS",
    "get_backend",
    "available_backends",
    "register_backend",
    "RouteTable",
    "RouteTableStats",
    "route_table_for",
    "clear_route_tables",
    "EventEngine",
    "EventHandle",
    "FlowSimulator",
    "FlowAssignment",
    "PhaseResult",
    "PacketNetwork",
    "PacketSimConfig",
    "PacketSimResult",
    "Message",
    "Packet",
    "DEFAULT_PACKET_SIZE",
    "ReferencePacketNetwork",
    "reference_maxmin_rates",
    "PathProvider",
    "GenericPathProvider",
    "FatTreePathProvider",
    "DragonflyPathProvider",
    "TorusPathProvider",
    "HyperXPathProvider",
    "HxMeshPathProvider",
    "path_provider_for",
    "Flow",
    "alltoall_phase",
    "alltoall_phases",
    "sampled_alltoall_phases",
    "random_permutation",
    "uniform_pair_sample",
    "ring_neighbor_flows",
    "nearest_neighbor_2d_flows",
]
