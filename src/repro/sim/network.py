"""Packet-level network simulator (vectorized core).

This is the small-scale counterpart of the paper's SST simulations: messages
are split into packets, each packet picks one of its flow's candidate
minimal paths adaptively (least queueing delay along the path, evaluated at
injection time, approximating per-packet adaptive routing), and every
directed link serialises packets FIFO at its configured bandwidth with a
fixed propagation latency (1 ns for on-board PCB traces, 20 ns for cables,
matching Appendix F) plus a per-switch buffer latency.

The model uses output-queued links; buffers are not explicitly bounded, so
it measures throughput and (un)congested latency rather than loss/credit
behaviour.  The test suite validates its steady-state throughput against the
flow-level simulator on small configurations (DESIGN.md, substitution
table).

Performance architecture (see DESIGN.md, "performance architecture"):

* **No per-packet objects, no per-hop closures.**  Packet state is
  struct-of-arrays: message id, payload size, and a CSR view (start/length
  into one flat link array) of each packet's chosen path, exposed as NumPy
  arrays via :meth:`PacketNetwork.packet_state`.  An in-flight hop is a
  typed ``(time, seq, tag, packet, cursor, serialisation)`` record on the
  engine's record heap (:meth:`EventEngine.schedule_record`) whose *cursor*
  indexes the flat path array directly — scheduling a hop allocates one
  plain tuple (no lambda, no :class:`EventHandle`), and every element is a
  native Python scalar so heap sift comparisons never touch NumPy scalar
  dispatch.
* **Wave-based forwarding.**  The engine batch-pops every record sharing a
  timestamp; a large wave of simultaneous packets (ubiquitous under
  symmetric traffic, where equal serialisation times align whole packet
  trains) advances in one array pass — a stable sort by link, per-link
  segmented serialisation, and vectorized arrival/next-hop computation.
  Small waves take a scalar fast path over pure-Python link state, since
  array-call overhead dominates tiny batches.
* **Shared adaptive-scoring state.**  Candidate paths come from the
  memoized :class:`RouteTable` as shared Python lists
  (:meth:`RouteTable.pair_path_lists`), and per-train path scores are
  maintained incrementally: choosing a path only changes the queueing term
  of candidates crossing its first link, so only those are re-scored.

Every arithmetic expression on the hot path reproduces the reference
implementation (:class:`repro.sim.reference.ReferencePacketNetwork`)
operation-for-operation in IEEE order — Python float and NumPy float64 ops
round identically, and the wave pass keeps the reference's left-to-right
associations — so packet schedules (departure, arrival, and message
completion times) are **bit-identical** to the pre-vectorization simulator;
the parity tests assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence

import numpy as np

from .._hash import mix64  # noqa: F401  (inlined below; kept as the reference)
from ..obs import registry as _obs
from ..topology.base import CableClass, Topology, TopologyError
from .engine import EventEngine
from .faults import DegradedPathProvider, FaultSet
from .packet import DEFAULT_PACKET_SIZE, Message
from .paths import DEFAULT_MAX_PATHS, PathProvider
from .routing import RouteTable, register_route_cache_client, route_table_for
from .traffic import Flow
from .wavekernel import resolve_wave_kernel

__all__ = ["PacketSimConfig", "PacketNetwork", "PacketSimResult"]

# Typed-record tags on the event engine's record heap.
_INJECT, _FORWARD, _DELIVER = 0, 1, 2

_MASK64 = (1 << 64) - 1  # for the inlined SplitMix64 path-rotation hash

#: Forward waves at least this large take the vectorized NumPy path.  The
#: calendar queue already hands the scalar kernel whole waves, and profiling
#: shows the Python<->array conversion at the pass boundaries only amortizes
#: for very large waves, so the crossover sits high.
_WAVE_THRESHOLD = 4096

# packet.* instruments.  Counters are always live; the wave-size histogram
# and the sampled probes only record while observability is enabled, and the
# inlined ``_drive`` fast path is left untouched either way.
_MESSAGES = _obs.counter("packet.messages")
_PACKETS = _obs.counter("packet.packets")
_EVENTS = _obs.counter("packet.events")
_WAVE_SIZE = _obs.histogram("packet.wave_size")

# faults.* instruments shared with repro.sim.faults (same registry names).
_FAULT_EVENTS = _obs.counter("faults.events")
_FAULT_LINKS = _obs.counter("faults.links_dead")
_PKT_DROPPED = _obs.counter("faults.packets_dropped")
_PKT_RETRIED = _obs.counter("faults.packets_retried")
_PKT_LOST = _obs.counter("faults.packets_lost")

#: events per slice when ``run`` drives in sampled mode (obs enabled)
_SAMPLE_CHUNK = 32768

_GROW = 4  # geometric growth factor for the SoA arrays


@dataclass(frozen=True)
class PacketSimConfig:
    """Timing parameters of the packet simulator (Appendix F defaults).

    ``policy`` names the routing policy whose candidate sets constrain the
    per-packet adaptive next-hop choice (:mod:`repro.sim.policy`): under
    ``"minimal"`` packets adapt over minimal paths as before, ``"ecmp"``
    pins each pair to one path, ``"valiant"`` adapts over the non-minimal
    detours, and ``"ugal"`` scores minimal and Valiant candidates against
    each other by queueing delay at injection time.
    """

    packet_size: int = DEFAULT_PACKET_SIZE
    bytes_per_capacity_unit: float = 50e9      # one 400 Gb/s port
    cable_latency: float = 20e-9
    board_latency: float = 1e-9
    buffer_latency: float = 40e-9
    max_paths: int = DEFAULT_MAX_PATHS
    seed: int = 0
    policy: str = "minimal"
    #: Wave-pass kernel backend ("numpy", "python", or "numba"); empty
    #: string defers to ``REPRO_PACKET_KERNEL`` and then the default.  All
    #: kernels are bit-identical (see :mod:`repro.sim.wavekernel`).
    wave_kernel: str = ""
    #: Delay between a link dying and its in-flight packets being re-injected
    #: on a surviving path (models end-to-end loss detection + retransmission;
    #: see :meth:`PacketNetwork.schedule_link_faults`).
    fault_retry_timeout: float = 1e-6


@dataclass
class PacketSimResult:
    """Aggregate outcome of one packet-level run."""

    messages: List[Message]
    finish_time: float
    link_busy_time: np.ndarray
    #: fault bookkeeping (non-zero only when link faults were scheduled):
    #: in-flight packets dropped by a link death, packets successfully
    #: re-injected on a surviving path, and packets lost for good (their
    #: message never completes — reported, not raised).
    packets_dropped: int = 0
    packets_retried: int = 0
    packets_lost: int = 0

    @property
    def all_finished(self) -> bool:
        return all(m.finished for m in self.messages)

    def message_bandwidths(self) -> np.ndarray:
        return np.array([m.observed_bandwidth() for m in self.messages])

    def aggregate_bandwidth(self) -> float:
        """Total bytes delivered divided by the makespan."""
        total = sum(m.size for m in self.messages)
        return total / self.finish_time if self.finish_time > 0 else 0.0

    def link_utilization(self) -> np.ndarray:
        """Fraction of the makespan each directed link spent serialising.

        Busy time already accounts for each link's own bandwidth (a byte on
        a slow link keeps it busy longer), so no further normalisation by
        capacity is needed or accepted.
        """
        if self.finish_time <= 0:
            return np.zeros_like(self.link_busy_time)
        return self.link_busy_time / self.finish_time


class PacketNetwork:
    """Event-driven packet-level simulation over a :class:`Topology`."""

    def __init__(
        self,
        topo: Topology,
        *,
        provider: Optional[PathProvider] = None,
        config: PacketSimConfig = PacketSimConfig(),
        table: Optional[RouteTable] = None,
        faults: Optional[FaultSet] = None,
    ):
        self.topo = topo
        self.config = config
        # Wave-pass serialization kernel (resolved once; see wavekernel.py).
        self._wave_kernel = resolve_wave_kernel(config.wave_kernel)
        # Routes come from the same memoized per-(topology, policy,
        # max_paths) RouteTable the flow simulator uses, so candidate path
        # sets agree between fidelities and survive across simulator
        # instances.
        if table is not None:
            self.table = table
        elif provider is not None:
            self.table = RouteTable(
                topo, max_paths=config.max_paths, provider=provider, policy=config.policy
            )
        else:
            self.table = route_table_for(
                topo, max_paths=config.max_paths, policy=config.policy
            )
        self.provider = self.table.provider
        self.engine = EventEngine()
        self.engine.set_record_handler(self._on_records)
        self.ranks = list(topo.accelerators)
        # Per-directed-link state.  The mutable hot fields (release time,
        # busy time) are Python float lists: the scalar event path and the
        # adaptive scoring loop index them element-wise millions of times,
        # where native floats beat NumPy scalar dispatch ~10x.  The constant
        # per-link timing tables are kept in both forms (list for scalar
        # code, array for the wave pass).
        n_links = topo.num_links
        self._link_free: List[float] = [0.0] * n_links
        self._link_busy: List[float] = [0.0] * n_links
        self._serialization = np.empty(n_links)
        self._latency = np.empty(n_links)
        for idx, link in enumerate(topo.links):
            rate = link.capacity * config.bytes_per_capacity_unit
            self._serialization[idx] = config.packet_size / rate
            self._latency[idx] = (
                config.board_latency if link.cable is CableClass.PCB else config.cable_latency
            )
        self._ser_list: List[float] = self._serialization.tolist()
        self._lat_list: List[float] = self._latency.tolist()
        self._buffer = float(config.buffer_latency)
        self._messages: List[Message] = []
        # Per-message counters (touched once per delivery).
        self._msg_total: List[int] = []
        self._msg_arrived: List[int] = []
        self._msg_completion: List[Optional[float]] = []
        # Struct-of-arrays packet state.  The append-only Python lists are
        # canonical (the scalar path reads them element-wise); `_flush_soa`
        # mirrors new packets into the NumPy arrays the wave pass gathers
        # from.  A packet's chosen path is the flat slice
        # `path_links[path_start[p] : path_end[p]]`; hop records address it
        # by absolute cursor, so the hot loop never recomputes offsets.
        self._pkt_msg: List[int] = []
        self._pkt_size: List[float] = []
        self._pkt_factor: List[float] = []          # size / packet_size
        self._pkt_path_start: List[int] = []
        self._pkt_path_end: List[int] = []
        self._pkt_links: List[int] = []
        self._num_flushed = 0
        self._links_flushed = 0
        self._np_msg = np.zeros(0, dtype=np.int64)
        self._np_factor = np.zeros(0, dtype=np.float64)
        self._np_path_end = np.zeros(0, dtype=np.int64)
        self._np_links = np.zeros(0, dtype=np.int64)
        # Friend access to the engine's record calendar queue: while a batch
        # is processed, follow-up hops are pushed directly with a locally
        # threaded sequence counter, and the engine's counters are
        # reconciled once per batch (both containers are mutated in place
        # only, so the references survive `reset`).
        self._rtimes = self.engine._record_times
        self._rbuckets = self.engine._record_buckets
        # Per-pair adaptive-scoring state: candidate paths (shared lists from
        # the route table) plus, per first-hop link, the indices of the
        # candidates starting with it — the incremental re-scoring set of a
        # packet choosing that link (see `_inject` for why only first-hop
        # terms can change during a packet train).
        self._pair_scoring: Dict[tuple, tuple] = {}
        # Fault state.  ``_dead`` stays None until the first fault (static or
        # scheduled) so the fault-free hot paths never pay for it; once set,
        # injections filter dead candidate paths and scheduled fault events
        # drop/retransmit in-flight packets (see `schedule_link_faults`).
        self._dead: Optional[List[bool]] = None
        self._fault_events: List[tuple] = []
        self._degraded: Optional[DegradedPathProvider] = None
        self.packets_dropped = 0
        self.packets_retried = 0
        self.packets_lost = 0
        if faults is not None and not faults.is_empty:
            self._mark_dead(faults.dead_links)
        register_route_cache_client(self)

    def _mark_dead(self, links) -> None:
        if self._dead is None:
            self._dead = [False] * self.topo.num_links
        for li in links:
            self._dead[li] = True
        self._degraded = None

    def clear_route_caches(self) -> None:
        """Drop per-pair adaptive-scoring state (route-state reset)."""
        self._pair_scoring.clear()

    # ---------------------------------------------------------------- sending
    def send(
        self, src_rank: int, dst_rank: int, size: float, *, start_time: float = 0.0,
        tag: Optional[str] = None,
    ) -> Message:
        """Register a message between two accelerator ranks."""
        if src_rank == dst_rank:
            raise ValueError("messages need distinct endpoints")
        midx = len(self._messages)
        message = Message(
            message_id=midx,
            src=self.ranks[src_rank],
            dst=self.ranks[dst_rank],
            size=size,
            start_time=start_time,
            tag=tag,
        )
        self._messages.append(message)
        self._msg_total.append(0)
        self._msg_arrived.append(0)
        self._msg_completion.append(None)
        self.engine.schedule_record(start_time, _INJECT, midx)
        _MESSAGES.inc()
        return message

    def send_flows(self, flows: Sequence[Flow], size: float, *, start_time: float = 0.0) -> None:
        """Register one message of ``size`` bytes per flow (ranks)."""
        for flow in flows:
            self.send(flow.src, flow.dst, size * flow.demand, start_time=start_time)

    # ------------------------------------------------------- record dispatch
    def _on_records(self, time, records) -> None:
        """Engine record-handler: process one batch, reconcile counters.

        This is the generic entry point used when :meth:`EventEngine.run`
        drives the simulation (e.g. with closure events mixed in);
        :meth:`run` normally uses the inlined drive loop below instead.
        """
        engine = self.engine
        seq = seq0 = engine._sequence
        seq = self._process_batch(time, records, seq)
        engine._live += seq - seq0
        engine._sequence = seq

    def _process_batch(self, time, records, seq: int) -> int:
        """Process one batch of simultaneous records in sequence order.

        The batch is split into maximal same-tag runs; each run completes
        its state updates before the next starts, which is exactly the
        sequential semantics (simultaneous events run in schedule order).
        Follow-up records are pushed with the locally threaded sequence
        counter ``seq``; the caller reconciles the engine's counters.
        """
        k = len(records)
        i = 0
        while i < k:
            tag = records[i][2]
            j = i + 1
            while j < k and records[j][2] == tag:
                j += 1
            run = records if j - i == k else records[i:j]
            if tag == _FORWARD:
                _WAVE_SIZE.observe(j - i)
                if j - i < _WAVE_THRESHOLD:
                    seq = self._forward_scalar(time, run, seq)
                else:
                    seq = self._forward_wave(time, run, seq)
            elif tag == _DELIVER:
                self._deliver_run(time, run)
            else:
                for rec in run:
                    seq = self._inject(rec[3], time, seq)
                # Mirror the injected packets into the NumPy SoA arrays.
                self._flush_soa()
            i = j
        return seq

    # -------------------------------------------------------------- injection
    def _inject(self, midx: int, now: float, seq: int) -> int:
        """Inject one message: adaptive path choice + first-hop serialisation.

        Packets of a train are placed sequentially (each choice sees the
        queues its predecessors created, as in the reference), but the
        candidate scores are maintained incrementally.  Within one injection
        event only the *first-hop* links of the pair's candidates gain queue
        (a source's injection links cannot reappear mid-path, and nothing
        else runs at this timestamp), so every candidate's hop-1..end score
        terms are frozen for the whole train: they are computed once, and a
        re-score after placing a packet on ``l0`` is ``t0(l0)`` plus the
        frozen suffix — added left-to-right exactly as the reference sums
        them, which keeps scores (and adaptive choices) bit-identical.
        """
        message = self._messages[midx]
        config = self.config
        ps = config.packet_size
        size = message.size
        num_packets = max(1, int(np.ceil(size / ps)))
        # The last packet carries the exact remainder — fractional message
        # sizes (e.g. from fractional flow demands) lose nothing.
        last_payload = size - ps * (num_packets - 1)
        assert ps * (num_packets - 1) + last_payload == size, (
            f"payload split loses bytes for message size {size!r}"
        )
        message.packets_total = num_packets
        self._msg_total[midx] = num_packets
        _PACKETS.inc(num_packets)
        pair = (message.src, message.dst)
        entry = self._pair_scoring.get(pair)
        if entry is None:
            if self._dead is None:
                paths = self.table.pair_path_lists(
                    message.src, message.dst, max_paths=config.max_paths
                )
            else:
                paths = self._surviving_paths(message.src, message.dst)
                if not paths:
                    # No surviving route at injection time: the message is
                    # lost (reported via counters; it never completes).
                    self.packets_lost += num_packets
                    _PKT_LOST.inc(num_packets)
                    return seq
            by_first: Dict[int, List[int]] = {}
            for q, p in enumerate(paths):
                by_first.setdefault(p[0], []).append(q)
            n_paths = len(paths)
            rotations = tuple(
                tuple((o + k) % n_paths for k in range(n_paths))
                for o in range(n_paths)
            )
            entry = (paths, by_first, rotations)
            self._pair_scoring[pair] = entry
        paths, by_first, rotations = entry
        n = len(paths)
        link_free = self._link_free
        link_busy = self._link_busy
        ser_list = self._ser_list
        lat_list = self._lat_list
        buffer = self._buffer
        rtimes = self._rtimes
        rbuckets = self._rbuckets
        bucket_get = rbuckets.get
        pkt_links = self._pkt_links
        msg_append = self._pkt_msg.append
        size_append = self._pkt_size.append
        factor_append = self._pkt_factor.append
        start_append = self._pkt_path_start.append
        end_append = self._pkt_path_end.append
        links_extend = pkt_links.extend
        pid = len(self._pkt_msg)
        salt_base = midx * 131
        inf = float("inf")
        if n > 1:
            # Initial candidate scores, keeping each path's hop-1..end terms
            # (frozen for the train) for the incremental re-scores below.
            costs: List[float] = []
            suffixes: List[List[float]] = []
            for p in paths:
                l0 = p[0]
                queue = link_free[l0] - now
                if queue < 0.0:
                    queue = 0.0
                c = queue + ser_list[l0]
                suffix: List[float] = []
                for li in p[1:]:
                    queue = link_free[li] - now
                    if queue < 0.0:
                        queue = 0.0
                    term = queue + ser_list[li]
                    c += term
                    suffix.append(term)
                costs.append(c)
                suffixes.append(suffix)
        last_i = num_packets - 1
        last_factor = last_payload / ps
        payload = ps
        factor = 1.0
        for i in range(num_packets):
            if i == last_i:
                payload = last_payload
                factor = last_factor
            if n == 1:
                path = paths[0]
            else:
                # Inlined mix64 (SplitMix64 finaliser) — the function call is
                # measurable at packet rate; constants match `repro._hash`.
                z = (salt_base + i + 0x9E3779B97F4A7C15) & _MASK64
                z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
                z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
                best = -1
                best_cost = inf
                for idx in rotations[((z ^ (z >> 31)) & _MASK64) % n]:
                    c = costs[idx]
                    if c < best_cost:
                        best_cost = c
                        best = idx
                path = paths[best]
            l0 = path[0]
            # x * 1.0 is an exact identity, so skipping the multiply for
            # full-size packets is bit-safe.
            ser = ser_list[l0] if factor == 1.0 else ser_list[l0] * factor
            free = link_free[l0]
            depart = free if free > now else now
            end = depart + ser
            link_free[l0] = end
            link_busy[l0] += ser
            arrival = end + lat_list[l0] + buffer
            if n > 1:
                # Re-score the candidates starting on the perturbed link:
                # the new first-hop term plus their frozen suffixes, summed
                # left-to-right exactly as the reference recomputes them.
                t0 = (end - now) + ser_list[l0]
                for q in by_first[l0]:
                    c = t0
                    for term in suffixes[q]:
                        c += term
                    costs[q] = c
            start = len(pkt_links)
            links_extend(path)
            plen = len(path)
            msg_append(midx)
            size_append(payload)
            factor_append(factor)
            start_append(start)
            end_append(start + plen)
            if plen > 1:
                ser1 = ser_list[path[1]]
                if factor != 1.0:
                    ser1 = ser1 * factor
                rec = (arrival, seq, _FORWARD, pid, start + 1, ser1)
            else:
                rec = (arrival, seq, _DELIVER, pid, midx, 0.0)
            bucket = bucket_get(arrival)
            if bucket is None:
                rbuckets[arrival] = [rec]
                heappush(rtimes, arrival)
            else:
                bucket.append(rec)
            seq += 1
            pid += 1
        return seq

    def _flush_soa(self) -> None:
        """Mirror newly injected packets into the NumPy SoA arrays."""
        total = len(self._pkt_msg)
        add = total - self._num_flushed
        if not add:
            return
        if total > len(self._np_msg):
            cap = max(total, _GROW * max(len(self._np_msg), 16))
            for name, dtype in (
                ("_np_msg", np.int64),
                ("_np_factor", np.float64),
                ("_np_path_end", np.int64),
            ):
                old = getattr(self, name)
                grown = np.zeros(cap, dtype=dtype)
                grown[: self._num_flushed] = old[: self._num_flushed]
                setattr(self, name, grown)
        sl = slice(self._num_flushed, total)
        self._np_msg[sl] = self._pkt_msg[sl]
        self._np_factor[sl] = self._pkt_factor[sl]
        self._np_path_end[sl] = self._pkt_path_end[sl]
        total_links = len(self._pkt_links)
        if total_links > len(self._np_links):
            cap = max(total_links, _GROW * max(len(self._np_links), 64))
            grown = np.zeros(cap, dtype=np.int64)
            grown[: self._links_flushed] = self._np_links[: self._links_flushed]
            self._np_links = grown
        self._np_links[self._links_flushed : total_links] = self._pkt_links[
            self._links_flushed :
        ]
        self._num_flushed = total
        self._links_flushed = total_links

    # ------------------------------------------------------------- forwarding
    def _forward_scalar(self, time, records, seq: int) -> int:
        """Advance a small run of packets one at a time (sequence order)."""
        link_free = self._link_free
        link_busy = self._link_busy
        ser_list = self._ser_list
        lat_list = self._lat_list
        buffer = self._buffer
        pkt_links = self._pkt_links
        path_end = self._pkt_path_end
        factor = self._pkt_factor
        msg = self._pkt_msg
        rtimes = self._rtimes
        rbuckets = self._rbuckets
        bucket_get = rbuckets.get
        for rec in records:
            pid = rec[3]
            cursor = rec[4]
            ser = rec[5]
            li = pkt_links[cursor]
            free = link_free[li]
            depart = free if free > time else time
            end = depart + ser
            link_free[li] = end
            link_busy[li] += ser
            arrival = end + lat_list[li] + buffer
            cursor += 1
            if cursor < path_end[pid]:
                nxt = (arrival, seq, _FORWARD, pid, cursor,
                       ser_list[pkt_links[cursor]] * factor[pid])
            else:
                nxt = (arrival, seq, _DELIVER, pid, msg[pid], 0.0)
            bucket = bucket_get(arrival)
            if bucket is None:
                rbuckets[arrival] = [nxt]
                heappush(rtimes, arrival)
            else:
                bucket.append(nxt)
            seq += 1
        return seq

    def _forward_wave(self, time, records, seq: int) -> int:
        """Advance a large wave of simultaneous packets in one array pass.

        Packets are stably sorted by link; per link the wave serialises
        back-to-back in sequence order.  The per-segment serialization scan
        is delegated to the configured wave kernel (``numpy`` by default;
        see :mod:`repro.sim.wavekernel`) — every kernel performs the same
        left-to-right float adds, so the pass is bit-identical to the
        reference implementation no matter which backend computes it.  Link
        bookkeeping (release time, busy time) stays here, per-entry, in the
        reference's exact IEEE accumulation order.
        """
        _, _, _, pids, cursors, sers = zip(*records)
        k = len(pids)
        pid = np.array(pids, dtype=np.int64)
        cursor = np.array(cursors, dtype=np.int64)
        ser = np.array(sers, dtype=np.float64)
        li = self._np_links[cursor]
        link_free = self._link_free
        link_busy = self._link_busy
        order = np.argsort(li, kind="stable")
        sli = li[order]
        sser = ser[order]
        seg_start = np.empty(k, dtype=bool)
        seg_start[0] = True
        np.not_equal(sli[1:], sli[:-1], out=seg_start[1:])
        starts = np.nonzero(seg_start)[0]
        start_links = sli[starts].tolist()
        base = np.array([link_free[l] for l in start_links])
        np.maximum(time, base, out=base)
        counts = np.diff(np.append(starts, k))
        ends = self._wave_kernel(base, sser, starts, counts)
        sser_l = sser.tolist()
        if len(starts) == k:
            # Every link serialises exactly one packet of this wave.
            ends_l = ends.tolist()
            for t, l in enumerate(start_links):
                link_free[l] = ends_l[t]
                link_busy[l] += sser_l[t]
        else:
            starts_l = starts.tolist()
            counts_l = counts.tolist()
            ends_l = ends.tolist()
            for s_idx, s in enumerate(starts_l):
                l = start_links[s_idx]
                c = counts_l[s_idx]
                for t in range(s, s + c):
                    link_busy[l] += sser_l[t]
                link_free[l] = ends_l[s + c - 1]
        arrival_sorted = ends + self._latency[sli] + self._buffer
        arrival = np.empty(k)
        arrival[order] = arrival_sorted
        # Advance cursors and look up every packet's next link vectorized.
        next_cursor = cursor + 1
        alive = next_cursor < self._np_path_end[pid]
        nli = self._np_links[np.where(alive, next_cursor, 0)]
        nser = self._serialization[nli] * self._np_factor[pid]
        mids = self._np_msg[pid]
        # Push follow-up records in pop (sequence) order, as the reference
        # implementation would have while processing events one by one.
        rtimes = self._rtimes
        rbuckets = self._rbuckets
        bucket_get = rbuckets.get
        arrival_l = arrival.tolist()
        alive_l = alive.tolist()
        cursor_l = next_cursor.tolist()
        nser_l = nser.tolist()
        mids_l = mids.tolist()
        for t in range(k):
            at = arrival_l[t]
            if alive_l[t]:
                nxt = (at, seq, _FORWARD, pids[t], cursor_l[t], nser_l[t])
            else:
                nxt = (at, seq, _DELIVER, pids[t], mids_l[t], 0.0)
            bucket = bucket_get(at)
            if bucket is None:
                rbuckets[at] = [nxt]
                heappush(rtimes, at)
            else:
                bucket.append(nxt)
            seq += 1
        return seq

    def _deliver_run(self, time, records) -> None:
        arrived = self._msg_arrived
        total = self._msg_total
        completion = self._msg_completion
        for rec in records:
            m = rec[4]
            count = arrived[m] + 1
            arrived[m] = count
            if count >= total[m]:
                completion[m] = time

    # ---------------------------------------------------------- introspection
    def packet_state(self) -> Dict[str, np.ndarray]:
        """Struct-of-arrays view of every packet injected so far.

        The hop column is reconstructed from the pending hop records (the
        hot loops do not maintain it): a packet with an in-flight record
        sits at that record's cursor; every other packet has been delivered
        and sits past its last hop.
        """
        start = np.asarray(self._pkt_path_start, dtype=np.int64)
        end = np.asarray(self._pkt_path_end, dtype=np.int64)
        hop = (end - start).copy()
        for bucket in self._rbuckets.values():
            for rec in bucket:
                tag = rec[2]
                if tag == _FORWARD:
                    hop[rec[3]] = rec[4] - start[rec[3]]
        return {
            "message": np.asarray(self._pkt_msg, dtype=np.int64),
            "size": np.asarray(self._pkt_size, dtype=np.float64),
            "hop": hop,
            "path_start": start,
            "path_end": end,
            "path_links": np.asarray(self._pkt_links, dtype=np.int64),
        }

    @property
    def link_busy_time(self) -> np.ndarray:
        return np.asarray(self._link_busy, dtype=np.float64)

    # ------------------------------------------------------------------ faults
    def schedule_link_faults(self, time: float, links) -> None:
        """Kill the cables of ``links`` at simulation ``time``.

        ``links`` is a :class:`~repro.sim.faults.FaultSet` or an iterable of
        directed link indices (each takes its reverse cable partner with
        it).  When the run reaches ``time``, in-flight packets whose
        remaining hops cross a dead link are **dropped** and, after
        ``config.fault_retry_timeout``, **retransmitted** from their source
        over a surviving path (drop/retry/lost counters on the result);
        packets injected later avoid dead links at path-choice time.
        Messages with no surviving route are reported as unfinished rather
        than raising.
        """
        if isinstance(links, FaultSet):
            dead = links.dead_links
        else:
            dead = FaultSet.from_links(self.topo, links).dead_links
        self._fault_events.append((float(time), tuple(sorted(dead))))

    def _surviving_paths(self, src: int, dst: int) -> List[List[int]]:
        """Candidate paths avoiding every currently-dead link (may be [])."""
        dead = self._dead
        try:
            cands = self.table.pair_path_lists(
                src, dst, max_paths=self.config.max_paths
            )
        except TopologyError:
            cands = []
        alive = [p for p in cands if all(not dead[li] for li in p)]
        if alive:
            return alive
        if self._degraded is None:
            self._degraded = DegradedPathProvider(
                self.topo,
                FaultSet(
                    dead_links=frozenset(
                        li for li, is_dead in enumerate(dead) if is_dead
                    )
                ),
                base=self.provider,
            )
        try:
            return self._degraded.paths(src, dst, self.config.max_paths)
        except TopologyError:
            return []

    def _apply_link_faults(self, now: float, links) -> None:
        """Mark links dead and drop/retransmit the in-flight packets on them."""
        if self._dead is None:
            self._dead = [False] * self.topo.num_links
        dead = self._dead
        new = [li for li in links if not dead[li]]
        if not new:
            return
        self._mark_dead(new)
        # Cached candidate sets (and their scores) may cross dead links.
        self._pair_scoring.clear()
        _FAULT_EVENTS.inc()
        _FAULT_LINKS.inc(len(new))
        newset = set(new)
        pkt_links = self._pkt_links
        path_end = self._pkt_path_end
        engine = self.engine
        seq = engine._sequence
        victims: List[int] = []
        removed = 0
        # Sweep the pending record queue: a _FORWARD record whose packet's
        # remaining hops cross a dead link is removed (the packet is dropped
        # mid-flight).  Buckets are rewritten in place; emptied buckets stay
        # registered (the drive loops tolerate zero-record batches).
        for t, bucket in self._rbuckets.items():
            keep = None
            for i, rec in enumerate(bucket):
                doomed = False
                if rec[2] == _FORWARD:
                    pid = rec[3]
                    for c in range(rec[4], path_end[pid]):
                        if pkt_links[c] in newset:
                            doomed = True
                            break
                if doomed:
                    if keep is None:
                        keep = bucket[:i]
                    victims.append(rec[3])
                    removed += 1
                elif keep is not None:
                    keep.append(rec)
            if keep is not None:
                bucket[:] = keep
        # Purge emptied buckets (the engine's generic paths index bucket[0]),
        # mutating the shared containers in place so live references survive.
        emptied = [t for t, bucket in self._rbuckets.items() if not bucket]
        if emptied:
            for t in emptied:
                del self._rbuckets[t]
            self._rtimes[:] = [t for t in self._rtimes if t in self._rbuckets]
            heapify(self._rtimes)
        retry_at = now + self.config.fault_retry_timeout
        added = 0
        for pid in victims:
            seq2 = self._retransmit(pid, retry_at, seq)
            added += seq2 - seq
            seq = seq2
        self._flush_soa()
        engine._sequence = seq
        engine._live += added - removed

    def _retransmit(self, pid: int, retry_at: float, seq: int) -> int:
        """Re-inject a dropped packet from its source over a surviving path."""
        midx = self._pkt_msg[pid]
        message = self._messages[midx]
        factor = self._pkt_factor[pid]
        self.packets_dropped += 1
        _PKT_DROPPED.inc()
        paths = self._surviving_paths(message.src, message.dst)
        if not paths:
            self.packets_lost += 1
            _PKT_LOST.inc()
            return seq
        # Deterministic adaptive choice at retransmit time: least projected
        # completion over the surviving candidates (queueing + serialisation
        # along the path), ties broken by candidate order.
        link_free = self._link_free
        ser_list = self._ser_list
        best = 0
        best_cost = float("inf")
        for q, p in enumerate(paths):
            c = 0.0
            for li in p:
                queue = link_free[li] - retry_at
                if queue < 0.0:
                    queue = 0.0
                c += queue + ser_list[li]
            if c < best_cost:
                best_cost = c
                best = q
        path = paths[best]
        new_pid = len(self._pkt_msg)
        start = len(self._pkt_links)
        self._pkt_links.extend(path)
        self._pkt_msg.append(midx)
        self._pkt_size.append(self._pkt_size[pid])
        self._pkt_factor.append(factor)
        self._pkt_path_start.append(start)
        self._pkt_path_end.append(start + len(path))
        ser0 = ser_list[path[0]]
        if factor != 1.0:
            ser0 = ser0 * factor
        rec = (retry_at, seq, _FORWARD, new_pid, start, ser0)
        bucket = self._rbuckets.get(retry_at)
        if bucket is None:
            self._rbuckets[retry_at] = [rec]
            heappush(self._rtimes, retry_at)
        else:
            bucket.append(rec)
        self.packets_retried += 1
        _PKT_RETRIED.inc()
        return seq + 1

    def _drive_segment(self, until: Optional[float], max_events: Optional[int]) -> float:
        if self.engine._queue:
            return self.engine.run(until=until, max_events=max_events)
        if _obs.is_enabled():
            return self._drive_sampled(until, max_events)
        return self._drive(until, max_events)

    def _run_with_faults(self, until: Optional[float], max_events: Optional[int]) -> float:
        """Drive in segments split at the scheduled fault times."""
        self._fault_events.sort()
        finish = self.engine._now
        while self._fault_events:
            t, links = self._fault_events[0]
            if until is not None and t > until:
                break
            finish = self._drive_segment(t, None)
            self._fault_events.pop(0)
            self._apply_link_faults(t, links)
        return self._drive_segment(until, max_events)

    # ------------------------------------------------------------------- run
    def _drive(self, until: Optional[float], max_events: Optional[int]) -> float:
        """Inlined record drive loop (the common case: records only).

        Equivalent to :meth:`EventEngine.run` but with the singleton-forward
        hop — the dominant event in steady state — fully inlined: pop,
        serialise, push, with no batch list, handler call, or dispatch in
        between.  Simultaneous events (a timestamp tie at the heap head) fall
        back to batch processing, preserving the exact sequential semantics.
        The engine's clock and counters are reconciled on exit.
        """
        engine = self.engine
        rtimes = self._rtimes
        rbuckets = self._rbuckets
        bucket_get = rbuckets.get
        now = engine._now
        seq = seq0 = engine._sequence
        processed = 0
        link_free = self._link_free
        link_busy = self._link_busy
        ser_list = self._ser_list
        lat_list = self._lat_list
        buffer = self._buffer
        pkt_links = self._pkt_links
        path_end = self._pkt_path_end
        factor = self._pkt_factor
        msg = self._pkt_msg
        arrived = self._msg_arrived
        total = self._msg_total
        completion = self._msg_completion
        bounded = until is not None or max_events is not None
        while rtimes:
            if bounded:
                t = rtimes[0]
                if until is not None and t > until:
                    now = until
                    break
                if max_events is not None and processed >= max_events:
                    break
            t = heappop(rtimes)
            records = rbuckets.pop(t)
            now = t
            if len(records) == 1:
                rec = records[0]
                tag = rec[2]
            else:
                tag = -1
            if tag == _FORWARD:
                # Lone forward hop: serialise on the link and push the next
                # hop (or the delivery) — the entire steady-state fast path.
                pid = rec[3]
                cursor = rec[4]
                ser = rec[5]
                li = pkt_links[cursor]
                free = link_free[li]
                depart = free if free > t else t
                end = depart + ser
                link_free[li] = end
                link_busy[li] += ser
                arrival = end + lat_list[li] + buffer
                cursor += 1
                if cursor < path_end[pid]:
                    nxt = (arrival, seq, _FORWARD, pid, cursor,
                           ser_list[pkt_links[cursor]] * factor[pid])
                else:
                    nxt = (arrival, seq, _DELIVER, pid, msg[pid], 0.0)
                bucket = bucket_get(arrival)
                if bucket is None:
                    rbuckets[arrival] = [nxt]
                    heappush(rtimes, arrival)
                else:
                    bucket.append(nxt)
                seq += 1
                processed += 1
                continue
            if tag == _DELIVER:
                m = rec[4]
                count = arrived[m] + 1
                arrived[m] = count
                if count >= total[m]:
                    completion[m] = t
                processed += 1
                continue
            # A wave of simultaneous records (or an injection).
            if max_events is not None and len(records) > max_events - processed:
                cut = max_events - processed
                rbuckets[t] = records[cut:]
                heappush(rtimes, t)
                records = records[:cut]
            processed += len(records)
            seq = self._process_batch(t, records, seq)
        engine._now = now
        engine._processed += processed
        engine._live += (seq - seq0) - processed
        engine._sequence = seq
        return now

    def _drive_sampled(self, until: Optional[float], max_events: Optional[int]) -> float:
        """Drive in bounded slices, sampling link state between slices.

        Used instead of the plain :meth:`_drive` while observability is
        enabled: every ``_SAMPLE_CHUNK`` events the per-link backlog and
        cumulative utilization are recorded into the ``packet.queue_depth``
        and ``packet.link_utilization`` probes.  Event ordering — and thus
        every simulation result — is identical to the unsampled drive; only
        measurement data is collected between slices.
        """
        engine = self.engine
        depth_probe = _obs.probe("packet.queue_depth")
        util_probe = _obs.probe("packet.link_utilization")
        done = 0
        finish = engine._now
        while True:
            budget = _SAMPLE_CHUNK if max_events is None else min(_SAMPLE_CHUNK, max_events - done)
            before = engine._processed
            finish = self._drive(until, budget)
            done += engine._processed - before
            self._sample_link_state(depth_probe, util_probe)
            if not self._rtimes:
                break
            if until is not None and self._rtimes[0] > until:
                break
            if max_events is not None and done >= max_events:
                break
        return finish

    def _sample_link_state(self, depth_probe: "_obs.Probe", util_probe: "_obs.Probe") -> None:
        """Record one time-series sample of per-link backlog and utilization."""
        now = self.engine._now
        free = np.asarray(self._link_free, dtype=np.float64)
        if not len(free):
            return
        backlog = np.maximum(free - now, 0.0)
        depth_probe.record(
            now, float(backlog.mean()), float(backlog.max()), float((backlog > 0.0).sum())
        )
        if now > 0.0:
            util = np.asarray(self._link_busy, dtype=np.float64) / now
            util_probe.record(now, float(util.mean()), float(util.max()))

    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> PacketSimResult:
        """Run the simulation and return the aggregate result."""
        events_before = self.engine._processed
        if self._fault_events:
            finish = self._run_with_faults(until, max_events)
        elif self.engine._queue:
            # Closure events are mixed in (user extensions): let the engine
            # interleave both kinds through the generic handler path.
            finish = self.engine.run(until=until, max_events=max_events)
        elif _obs.is_enabled():
            finish = self._drive_sampled(until, max_events)
        else:
            finish = self._drive(until, max_events)
        _EVENTS.inc(self.engine._processed - events_before)
        arrived = self._msg_arrived
        completion = self._msg_completion
        for midx, message in enumerate(self._messages):
            message.packets_arrived = arrived[midx]
            message.completion_time = completion[midx]
        return PacketSimResult(
            messages=list(self._messages),
            finish_time=finish,
            link_busy_time=self.link_busy_time,
            packets_dropped=self.packets_dropped,
            packets_retried=self.packets_retried,
            packets_lost=self.packets_lost,
        )
