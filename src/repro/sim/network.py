"""Packet-level network simulator.

This is the small-scale counterpart of the paper's SST simulations: messages
are split into packets, each packet picks one of its flow's candidate
minimal paths adaptively (least queueing delay along the path, evaluated at
injection time, approximating per-packet adaptive routing), and every
directed link serialises packets FIFO at its configured bandwidth with a
fixed propagation latency (1 ns for on-board PCB traces, 20 ns for cables,
matching Appendix F) plus a per-switch buffer latency.

The model uses output-queued links; buffers are not explicitly bounded, so
it measures throughput and (un)congested latency rather than loss/credit
behaviour.  The test suite validates its steady-state throughput against the
flow-level simulator on small configurations (DESIGN.md, substitution
table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._hash import mix64
from ..topology.base import CableClass, Topology
from .engine import EventEngine
from .packet import DEFAULT_PACKET_SIZE, Message, Packet
from .paths import PathProvider
from .routing import RouteTable, route_table_for
from .traffic import Flow

__all__ = ["PacketSimConfig", "PacketNetwork", "PacketSimResult"]


@dataclass(frozen=True)
class PacketSimConfig:
    """Timing parameters of the packet simulator (Appendix F defaults)."""

    packet_size: int = DEFAULT_PACKET_SIZE
    bytes_per_capacity_unit: float = 50e9      # one 400 Gb/s port
    cable_latency: float = 20e-9
    board_latency: float = 1e-9
    buffer_latency: float = 40e-9
    max_paths: int = 4
    seed: int = 0


@dataclass
class PacketSimResult:
    """Aggregate outcome of one packet-level run."""

    messages: List[Message]
    finish_time: float
    link_busy_time: np.ndarray

    @property
    def all_finished(self) -> bool:
        return all(m.finished for m in self.messages)

    def message_bandwidths(self) -> np.ndarray:
        return np.array([m.observed_bandwidth() for m in self.messages])

    def aggregate_bandwidth(self) -> float:
        """Total bytes delivered divided by the makespan."""
        total = sum(m.size for m in self.messages)
        return total / self.finish_time if self.finish_time > 0 else 0.0

    def link_utilization(self, capacity: np.ndarray, bytes_per_unit: float) -> np.ndarray:
        if self.finish_time <= 0:
            return np.zeros_like(self.link_busy_time)
        return self.link_busy_time / self.finish_time


class PacketNetwork:
    """Event-driven packet-level simulation over a :class:`Topology`."""

    def __init__(
        self,
        topo: Topology,
        *,
        provider: Optional[PathProvider] = None,
        config: PacketSimConfig = PacketSimConfig(),
        table: Optional[RouteTable] = None,
    ):
        self.topo = topo
        self.config = config
        # Routes come from the same memoized per-(topology, max_paths)
        # RouteTable the flow simulator uses, so candidate path sets agree
        # between fidelities and survive across simulator instances.
        if table is not None:
            self.table = table
        elif provider is not None:
            self.table = RouteTable(topo, max_paths=config.max_paths, provider=provider)
        else:
            self.table = route_table_for(topo, max_paths=config.max_paths)
        self.provider = self.table.provider
        self.engine = EventEngine()
        self.ranks = list(topo.accelerators)
        n_links = topo.num_links
        # Per-directed-link bookkeeping: time the link becomes free, total
        # busy (serialisation) time, serialisation time per packet.
        self._link_free = np.zeros(n_links)
        self._link_busy = np.zeros(n_links)
        self._serialization = np.empty(n_links)
        self._latency = np.empty(n_links)
        for idx, link in enumerate(topo.links):
            rate = link.capacity * config.bytes_per_capacity_unit
            self._serialization[idx] = config.packet_size / rate
            self._latency[idx] = (
                config.board_latency if link.cable is CableClass.PCB else config.cable_latency
            )
        self._messages: List[Message] = []
        self._next_message_id = 0
        self._next_packet_id = 0
        self._path_cache: Dict[Tuple[int, int], List[List[int]]] = {}

    # ---------------------------------------------------------------- sending
    def send(
        self, src_rank: int, dst_rank: int, size: float, *, start_time: float = 0.0,
        tag: Optional[str] = None,
    ) -> Message:
        """Register a message between two accelerator ranks."""
        if src_rank == dst_rank:
            raise ValueError("messages need distinct endpoints")
        message = Message(
            message_id=self._next_message_id,
            src=self.ranks[src_rank],
            dst=self.ranks[dst_rank],
            size=size,
            start_time=start_time,
            tag=tag,
        )
        self._next_message_id += 1
        self._messages.append(message)
        self.engine.schedule_at(start_time, lambda m=message: self._inject(m))
        return message

    def send_flows(self, flows: Sequence[Flow], size: float, *, start_time: float = 0.0) -> None:
        """Register one message of ``size`` bytes per flow (ranks)."""
        for flow in flows:
            self.send(flow.src, flow.dst, size * flow.demand, start_time=start_time)

    # -------------------------------------------------------------- internals
    def _paths(self, src: int, dst: int) -> List[List[int]]:
        # The per-instance dict only avoids re-materializing Python lists
        # from the table's CSR arrays; the enumeration itself is shared.
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is None:
            cached = self.table.paths(src, dst, max_paths=self.config.max_paths)
            self._path_cache[key] = cached
        return cached

    def _choose_path(self, src: int, dst: int, salt: int) -> List[int]:
        """Adaptive path choice: minimise queueing delay along the candidates."""
        paths = self._paths(src, dst)
        if len(paths) == 1:
            return paths[0]
        now = self.engine.now
        best_path = paths[0]
        best_cost = float("inf")
        order = mix64(salt) % len(paths)
        rotated = paths[order:] + paths[:order]
        for path in rotated:
            cost = 0.0
            for li in path:
                cost += max(0.0, self._link_free[li] - now) + self._serialization[li]
            if cost < best_cost:
                best_cost = cost
                best_path = path
        return best_path

    def _inject(self, message: Message) -> None:
        size_left = message.size
        num_packets = max(1, int(np.ceil(message.size / self.config.packet_size)))
        message.packets_total = num_packets
        for i in range(num_packets):
            payload = int(min(self.config.packet_size, size_left))
            size_left -= payload
            path = self._choose_path(message.src, message.dst, message.message_id * 131 + i)
            packet = Packet(
                packet_id=self._next_packet_id, message=message, size=payload, path=path
            )
            self._next_packet_id += 1
            self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        """Advance a packet by one hop (serialise on the next link)."""
        if packet.at_last_hop:
            self._deliver(packet)
            return
        li = packet.path[packet.hop]
        now = self.engine.now
        ser = self._serialization[li] * (packet.size / self.config.packet_size)
        depart = max(now, self._link_free[li])
        self._link_free[li] = depart + ser
        self._link_busy[li] += ser
        arrival = depart + ser + self._latency[li] + self.config.buffer_latency
        packet.hop += 1
        self.engine.schedule_at(arrival, lambda p=packet: self._forward(p))

    def _deliver(self, packet: Packet) -> None:
        message = packet.message
        message.packets_arrived += 1
        if message.packets_arrived >= message.packets_total:
            message.completion_time = self.engine.now

    # ------------------------------------------------------------------- run
    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> PacketSimResult:
        """Run the simulation and return the aggregate result."""
        finish = self.engine.run(until=until, max_events=max_events)
        return PacketSimResult(
            messages=list(self._messages),
            finish_time=finish,
            link_busy_time=self._link_busy.copy(),
        )
