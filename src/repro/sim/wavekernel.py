"""Pluggable kernels for the packet simulator's forward-wave pass.

The hot inner step of :meth:`repro.sim.network.PacketNetwork._forward_wave`
is a segmented serialization scan: packets of one wave, stably sorted by
link, serialise back-to-back per link, so each packet's serialization *end*
time is the segment's base release time plus a left-to-right running sum of
the packet serialization times.  Everything else about the wave pass (link
bookkeeping, follow-up event pushes) stays in ``network.py`` — the kernels
here compute only the ``ends`` array, which makes them trivially swappable
and trivially comparable.

Three kernels are provided:

``numpy``
    The default.  Fully vectorized when every link serialises exactly one
    packet of the wave (the overwhelmingly common case); the few
    multi-packet segments run a short Python loop.
``python``
    A pure-Python reference loop.  Always available, used by CI to pin the
    contract, and the shape a compiled backend must reproduce.
``numba``
    An optional compiled kernel, registered only when :mod:`numba` is
    importable (the container does not ship it; nothing is installed on
    demand).  The jitted loop performs the same left-to-right float adds,
    so its output is bit-identical to the other kernels.

Every kernel performs the per-segment accumulation as the same sequence of
IEEE double additions (``end = end + ser``), so all kernels return
bit-identical ``ends`` for identical inputs and the ``sim.reference``
parity oracle is preserved no matter which kernel is selected.

Selection: :func:`resolve_wave_kernel` takes an explicit name (from
:class:`~repro.sim.network.PacketSimConfig.wave_kernel`), falling back to
the ``REPRO_PACKET_KERNEL`` environment variable, falling back to
``numpy``.  Requesting ``numba`` when numba is not importable raises a
``RuntimeError`` rather than silently degrading.
"""
from __future__ import annotations

import os
from typing import Callable, Dict, List

import numpy as np

__all__ = [
    "DEFAULT_WAVE_KERNEL",
    "WaveKernel",
    "available_wave_kernels",
    "resolve_wave_kernel",
    "wave_ends_numpy",
    "wave_ends_python",
]

#: ``kernel(base, sser, starts, counts) -> ends``.  ``sser`` is the wave's
#: per-packet serialization time sorted by link; ``starts``/``counts``
#: delimit the per-link segments; ``base[i]`` is segment ``i``'s release
#: time (already clamped to the wave timestamp).  Returns the per-packet
#: serialization end times, aligned with ``sser``.
WaveKernel = Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray]

DEFAULT_WAVE_KERNEL = "numpy"

_ENV_VAR = "REPRO_PACKET_KERNEL"


def _segment_scan(
    ends: np.ndarray,
    base: List[float],
    sser: List[float],
    starts: List[int],
    counts: List[int],
) -> None:
    """Left-to-right running sum per segment — the contract all kernels pin.

    Works on Python lists: element-wise float adds on native floats beat
    NumPy scalar dispatch ~10x, and Python float addition is the same IEEE
    double addition the compiled kernels perform.
    """
    for i, s in enumerate(starts):
        end = base[i]
        for t in range(s, s + counts[i]):
            end = end + sser[t]
            ends[t] = end


def wave_ends_numpy(
    base: np.ndarray, sser: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Vectorized singleton-segment fast path, scalar loop for the rest."""
    k = sser.shape[0]
    ends = np.empty(k)
    if starts.shape[0] == k:
        # Every link serialises exactly one packet of this wave.
        np.add(base, sser, out=ends)
        return ends
    _segment_scan(ends, base.tolist(), sser.tolist(), starts.tolist(), counts.tolist())
    return ends


def wave_ends_python(
    base: np.ndarray, sser: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Pure-Python reference kernel (no vectorized branch)."""
    ends = np.empty(sser.shape[0])
    _segment_scan(ends, base.tolist(), sser.tolist(), starts.tolist(), counts.tolist())
    return ends


def _build_numba_kernel() -> "WaveKernel | None":
    """Compile the jitted kernel, or return None when numba is missing."""
    try:  # pragma: no cover - exercised only where numba is installed
        import numba
    except ImportError:
        return None

    @numba.njit(cache=False)  # pragma: no cover - compiled, not traced
    def _nb_ends(base, sser, starts, counts):
        ends = np.empty(sser.shape[0])
        for i in range(starts.shape[0]):
            end = base[i]
            s = starts[i]
            for t in range(s, s + counts[i]):
                end = end + sser[t]
                ends[t] = end
        return ends

    def wave_ends_numba(base, sser, starts, counts):  # pragma: no cover
        return _nb_ends(base, sser, starts, counts)

    return wave_ends_numba


_numba_kernel: "WaveKernel | None | bool" = False  # False = not yet probed


def _numba() -> "WaveKernel | None":
    global _numba_kernel
    if _numba_kernel is False:
        _numba_kernel = _build_numba_kernel()
    return _numba_kernel


def available_wave_kernels() -> Dict[str, WaveKernel]:
    """Name -> kernel for every backend importable right now."""
    kernels: Dict[str, WaveKernel] = {
        "numpy": wave_ends_numpy,
        "python": wave_ends_python,
    }
    nb = _numba()
    if nb is not None:  # pragma: no cover - numba not shipped in CI
        kernels["numba"] = nb
    return kernels


def resolve_wave_kernel(name: str = "") -> WaveKernel:
    """Resolve a kernel by explicit name, env var, or the default.

    ``name`` (typically ``PacketSimConfig.wave_kernel``) wins when
    non-empty; otherwise ``REPRO_PACKET_KERNEL``; otherwise ``numpy``.
    Unknown names raise ``ValueError``; ``numba`` without an importable
    numba raises ``RuntimeError`` (no silent degradation).
    """
    chosen = name or os.environ.get(_ENV_VAR, "") or DEFAULT_WAVE_KERNEL
    if chosen == "numba":
        nb = _numba()
        if nb is None:
            raise RuntimeError(
                "REPRO_PACKET_KERNEL/wave_kernel requested 'numba' but numba "
                "is not importable; use 'numpy' or 'python'"
            )
        return nb  # pragma: no cover - numba not shipped in CI
    kernels = {"numpy": wave_ends_numpy, "python": wave_ends_python}
    if chosen not in kernels:
        raise ValueError(
            f"unknown wave kernel {chosen!r}; expected one of "
            f"'numpy', 'python', 'numba'"
        )
    return kernels[chosen]
