"""Network fault injection: dead links, switches, and boards.

The paper's fault-tolerance argument for HammingMesh is path diversity:
losing a cable or a whole board costs bandwidth, not connectivity.  This
module makes that claim simulable.  A :class:`FaultSet` is an immutable
set of dead directed links and dead nodes; it never mutates a
:class:`~repro.topology.base.Topology` — instead it is applied as a
*masked degraded view* at the routing layer:

* :class:`DegradedPathProvider` wraps the family's structured path
  provider and filters its candidate paths against the dead set.  Pairs
  whose minimal candidates all died reroute over surviving paths via a
  BFS over the surviving subgraph; pairs with no surviving path raise
  :class:`~repro.topology.base.TopologyError` (callers report them via
  :func:`split_connected` rather than crashing).
* :func:`degraded_route_table` builds (and memoizes) a private
  :class:`~repro.sim.routing.RouteTable` over the degraded provider, so
  every routing policy — including Valiant/UGAL detours, whose segments
  route through the same provider — automatically avoids dead links.
  An **empty** fault set returns the shared memoized fault-free table,
  which pins the degraded path bit-identical to the fault-free one.
* :class:`FaultEventSolver` replays a growing fault schedule against one
  flow set, re-solving each event incrementally with
  :meth:`~repro.sim.flowsim.FlowSimulator.maxmin_rates_delta`: only the
  flows whose current routes touch newly-dead links are re-routed, and
  the warm-started candidate is verified exactly (cold fallback on
  failure, and on any non-monotone event such as a repair).

Fault *sampling* is deterministic and nested: :func:`sample_link_faults`
orders the eligible cables by a seeded hash, so the ``k``-fault sample is
a prefix of the ``k+1``-fault sample and bandwidth-vs-faults curves are
comparable along a schedule (:func:`link_fault_schedule`).
"""

from __future__ import annotations

import weakref
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .._hash import mix64
from ..obs import registry as _obs
from ..topology.base import Topology, TopologyError
from .flowsim import FlowSimulator, WarmState
from .paths import DEFAULT_MAX_PATHS, PathProvider, path_provider_for
from .policy import RoutingPolicy, get_policy
from .routing import RouteTable, register_route_cache_client, route_table_for
from .traffic import Flow

__all__ = [
    "FaultSet",
    "cable_partner",
    "fault_candidate_links",
    "sample_link_faults",
    "link_fault_schedule",
    "sample_switch_faults",
    "board_fault_set",
    "DegradedPathProvider",
    "degraded_route_table",
    "split_connected",
    "FaultStepReport",
    "FaultEventSolver",
]

_EVENTS = _obs.counter("faults.events")
_LINKS_DEAD = _obs.counter("faults.links_dead")
_TABLES_DEGRADED = _obs.counter("faults.tables_degraded")
_PAIRS_REROUTED = _obs.counter("faults.pairs_rerouted")
_PAIRS_DISCONNECTED = _obs.counter("faults.pairs_disconnected")
_DELTA_RESOLVES = _obs.counter("faults.delta_resolves")
_COLD_RESOLVES = _obs.counter("faults.cold_resolves")


# ---------------------------------------------------------------------------
#  FaultSet
# ---------------------------------------------------------------------------
def cable_partner(topo: Topology, link_index: int) -> Optional[int]:
    """Directed link of the same cable in the opposite direction, if any.

    ``Topology.add_link`` creates directed pairs in lockstep, so the k-th
    forward link between two nodes pairs with the k-th reverse link; a
    dead cable kills both directions together.
    """
    link = topo.link(link_index)
    forward = topo.find_links(link.src, link.dst)
    reverse = topo.find_links(link.dst, link.src)
    if not reverse:
        return None
    pos = forward.index(link_index)
    return reverse[pos] if pos < len(reverse) else reverse[-1]


@dataclass(frozen=True)
class FaultSet:
    """Immutable set of dead directed links and dead nodes.

    Construct via the classmethods, which close over the topology's
    structure (cable partners, incident links of a dead node); the raw
    constructor takes already-closed sets.  ``FaultSet``\\ s compose with
    :meth:`union` and identify cache entries via :meth:`cache_key`.
    """

    dead_links: FrozenSet[int] = frozenset()
    dead_nodes: FrozenSet[int] = frozenset()

    _EMPTY = None  # type: Optional["FaultSet"]

    @staticmethod
    def empty() -> "FaultSet":
        if FaultSet._EMPTY is None:
            FaultSet._EMPTY = FaultSet()
        return FaultSet._EMPTY

    @classmethod
    def from_links(cls, topo: Topology, links: Iterable[int]) -> "FaultSet":
        """Dead cables: each directed link takes its reverse partner with it."""
        dead = set()
        for li in links:
            if li < 0 or li >= topo.num_links:
                raise ValueError(f"link index {li} out of range")
            dead.add(int(li))
            partner = cable_partner(topo, li)
            if partner is not None:
                dead.add(partner)
        return cls(dead_links=frozenset(dead))

    @classmethod
    def from_nodes(cls, topo: Topology, nodes: Iterable[int]) -> "FaultSet":
        """Dead switches/accelerators: the node and every incident link die."""
        dead_nodes = set()
        dead_links = set()
        for node in nodes:
            if node < 0 or node >= topo.num_nodes:
                raise ValueError(f"node index {node} out of range")
            dead_nodes.add(int(node))
            dead_links.update(topo.out_links(node))
            dead_links.update(topo.in_links(node))
        return cls(dead_links=frozenset(dead_links), dead_nodes=frozenset(dead_nodes))

    @classmethod
    def from_boards(
        cls, topo: Topology, boards: Iterable[Tuple[int, int]]
    ) -> "FaultSet":
        """Dead HammingMesh boards: every accelerator on the board dies."""
        if topo.meta.get("family") != "hammingmesh":
            raise TopologyError("board faults require a HammingMesh topology")
        coord_of = topo.meta["coord_of"]
        wanted = {tuple(b) for b in boards}
        nodes = [acc for acc, coord in coord_of.items() if tuple(coord[:2]) in wanted]
        missing = wanted - {tuple(coord[:2]) for coord in coord_of.values()}
        if missing:
            raise ValueError(f"unknown board coordinates: {sorted(missing)}")
        return cls.from_nodes(topo, nodes)

    # ------------------------------------------------------------------ algebra
    @property
    def is_empty(self) -> bool:
        return not self.dead_links and not self.dead_nodes

    def union(self, other: "FaultSet") -> "FaultSet":
        if other.is_empty:
            return self
        if self.is_empty:
            return other
        return FaultSet(
            dead_links=self.dead_links | other.dead_links,
            dead_nodes=self.dead_nodes | other.dead_nodes,
        )

    def difference(self, other: "FaultSet") -> "FaultSet":
        """Faults in ``self`` but not in ``other`` (e.g. after a repair)."""
        return FaultSet(
            dead_links=self.dead_links - other.dead_links,
            dead_nodes=self.dead_nodes - other.dead_nodes,
        )

    def cache_key(self) -> Tuple:
        return (tuple(sorted(self.dead_links)), tuple(sorted(self.dead_nodes)))

    def link_mask(self, num_links: int) -> np.ndarray:
        """Boolean mask over directed link indices, True == dead."""
        mask = np.zeros(num_links, dtype=bool)
        if self.dead_links:
            mask[np.fromiter(self.dead_links, dtype=np.int64)] = True
        return mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultSet({len(self.dead_links)} dead links, "
            f"{len(self.dead_nodes)} dead nodes)"
        )


# ---------------------------------------------------------------------------
#  Seeded samplers and deterministic schedules
# ---------------------------------------------------------------------------
def fault_candidate_links(topo: Topology, *, seed: int = 0) -> List[int]:
    """Cable representatives eligible for link-fault sampling, hash-ordered.

    One directed representative per cable; on switched fabrics access
    (NIC) cables are excluded — an access-link fault is an endpoint
    fault, modeled by :meth:`FaultSet.from_nodes` — so sampled faults
    degrade the fabric rather than amputating endpoints.  The order is a
    pure function of ``(topology structure, seed)``: prefixes of the
    returned list form nested fault sets.
    """
    switched = topo.num_switches > 0
    reps: List[int] = []
    seen = set()
    for li in range(topo.num_links):
        if li in seen:
            continue
        partner = cable_partner(topo, li)
        if partner is not None:
            seen.add(partner)
        link = topo.link(li)
        if switched and topo.is_accelerator(link.src) != topo.is_accelerator(link.dst):
            continue
        reps.append(li)
    reps.sort(key=lambda li: mix64(mix64(li + 1) ^ mix64(0xFA17 + seed)))
    return reps


def sample_link_faults(topo: Topology, count: int, *, seed: int = 0) -> FaultSet:
    """Deterministic sample of ``count`` dead cables (both directions die).

    Samples are nested across ``count`` for a fixed seed: the k-fault
    sample is a strict subset of the (k+1)-fault sample.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return FaultSet.empty()
    order = fault_candidate_links(topo, seed=seed)
    if count > len(order):
        raise ValueError(
            f"requested {count} link faults but only {len(order)} eligible cables"
        )
    return FaultSet.from_links(topo, order[:count])


def link_fault_schedule(
    topo: Topology, count: int, *, seed: int = 0
) -> List[FaultSet]:
    """Cumulative fault schedule: ``schedule[k]`` has exactly ``k`` dead cables.

    ``schedule[0]`` is the empty set and each entry extends the previous
    one by one cable, so the schedule drives
    :meth:`FaultEventSolver.apply` monotonically (pure delta re-solves).
    """
    order = fault_candidate_links(topo, seed=seed)
    if count > len(order):
        raise ValueError(
            f"requested {count} link faults but only {len(order)} eligible cables"
        )
    out = [FaultSet.empty()]
    for k in range(1, count + 1):
        out.append(FaultSet.from_links(topo, order[:k]))
    return out


def sample_switch_faults(topo: Topology, count: int, *, seed: int = 0) -> FaultSet:
    """Deterministic sample of ``count`` dead switches (incident links die)."""
    switches = list(topo.switches)
    if not switches:
        raise TopologyError("topology has no switches to fail")
    if count > len(switches):
        raise ValueError(
            f"requested {count} switch faults but topology has {len(switches)} switches"
        )
    switches.sort(key=lambda s: mix64(mix64(s + 1) ^ mix64(0x5517 + seed)))
    return FaultSet.from_nodes(topo, switches[:count])


def board_fault_set(topo: Topology, boards: Iterable[Tuple[int, int]]) -> FaultSet:
    """Alias of :meth:`FaultSet.from_boards` (reads better at call sites)."""
    return FaultSet.from_boards(topo, boards)


# ---------------------------------------------------------------------------
#  Degraded routing view
# ---------------------------------------------------------------------------
class DegradedPathProvider:
    """Masked view of a path provider under a :class:`FaultSet`.

    Candidate paths from the wrapped (family-structured) provider are
    filtered against the dead links; when every structured candidate
    died, the pair reroutes over surviving paths via a BFS on the
    surviving subgraph (shortest surviving paths — possibly longer than
    the fault-free minimal ones).  Policies that enumerate detour
    segments (Valiant/UGAL) route those segments through this provider
    too, so detours also avoid dead links.  Disconnected pairs raise
    :class:`TopologyError`; use :meth:`connected` to pre-filter.
    """

    def __init__(
        self,
        topo: Topology,
        faults: FaultSet,
        *,
        base: Optional[PathProvider] = None,
        dist_cache_entries: int = 1024,
    ):
        self.topo = topo
        self.faults = faults
        self.base = base if base is not None else path_provider_for(topo)
        self._dead_links = frozenset(faults.dead_links)
        self._dead_nodes = frozenset(faults.dead_nodes)
        self._dist_cache: "OrderedDict[int, List[int]]" = OrderedDict()
        self._dist_cache_entries = max(1, int(dist_cache_entries))

    # ------------------------------------------------------------------ queries
    def _alive(self, path: Sequence[int]) -> bool:
        dead = self._dead_links
        for li in path:
            if li in dead:
                return False
        return True

    def paths(
        self, src: int, dst: int, max_paths: int = DEFAULT_MAX_PATHS
    ) -> List[List[int]]:
        if src == dst:
            return [[]]
        if src in self._dead_nodes or dst in self._dead_nodes:
            _PAIRS_DISCONNECTED.inc()
            raise TopologyError(
                f"no surviving path between nodes {src} and {dst}: endpoint failed"
            )
        try:
            cand = self.base.paths(src, dst, max_paths=max_paths)
        except TopologyError:
            cand = []
        alive = [p for p in cand if self._alive(p)]
        if cand and len(alive) == len(cand):
            return alive
        if alive:
            # Some minimal candidates died but others survive: route over
            # the survivors (the policy layer re-normalizes split weights).
            _PAIRS_REROUTED.inc()
            return alive
        out = self._survivor_paths(src, dst, max_paths)
        if not out:
            _PAIRS_DISCONNECTED.inc()
            raise TopologyError(
                f"no surviving path between nodes {src} and {dst} under "
                f"{len(self._dead_links)} dead links"
            )
        _PAIRS_REROUTED.inc()
        return out

    def connected(self, src: int, dst: int) -> bool:
        """Whether a surviving path exists (no exception, cached BFS)."""
        if src == dst:
            return True
        if src in self._dead_nodes or dst in self._dead_nodes:
            return False
        return self._distances_to(dst)[src] >= 0

    # ------------------------------------------------- surviving-subgraph BFS
    def _distances_to(self, dst: int) -> List[int]:
        cached = self._dist_cache.get(dst)
        if cached is not None:
            self._dist_cache.move_to_end(dst)
            return cached
        dead_links = self._dead_links
        dead_nodes = self._dead_nodes
        dist = [-1] * self.topo.num_nodes
        if dst not in dead_nodes:
            dist[dst] = 0
            q = deque([dst])
            while q:
                u = q.popleft()
                for li in self.topo.in_links(u):
                    if li in dead_links:
                        continue
                    v = self.topo.link(li).src
                    if dist[v] < 0 and v not in dead_nodes:
                        dist[v] = dist[u] + 1
                        q.append(v)
        self._dist_cache[dst] = dist
        if len(self._dist_cache) > self._dist_cache_entries:
            self._dist_cache.popitem(last=False)
        return dist

    def _survivor_paths(self, src: int, dst: int, max_paths: int) -> List[List[int]]:
        dist = self._distances_to(dst)
        if dist[src] < 0:
            return []
        dead_links = self._dead_links
        out: List[List[int]] = []

        def descend(node: int, acc: List[int]) -> None:
            if len(out) >= max_paths:
                return
            if node == dst:
                out.append(list(acc))
                return
            for li in self.topo.out_links(node):
                if li in dead_links:
                    continue
                v = self.topo.link(li).dst
                if dist[v] == dist[node] - 1:
                    acc.append(li)
                    descend(v, acc)
                    acc.pop()
                    if len(out) >= max_paths:
                        return

        descend(src, [])
        return out


# ------------------------------------------------------------- degraded tables
#: topology -> {(fault key, policy key, max_paths) -> RouteTable}
_DEGRADED_TABLES: "weakref.WeakKeyDictionary[Topology, Dict[Tuple, RouteTable]]" = (
    weakref.WeakKeyDictionary()
)


class _DegradedTableCache:
    """Registers the memo with the shared route-cache clearing hook."""

    def clear_route_caches(self) -> None:
        _DEGRADED_TABLES.clear()


_CACHE_HOOK = _DegradedTableCache()
register_route_cache_client(_CACHE_HOOK)


def degraded_route_table(
    topo: Topology,
    faults: Optional[FaultSet],
    *,
    max_paths: int = DEFAULT_MAX_PATHS,
    policy: Union[str, RoutingPolicy, None] = None,
) -> RouteTable:
    """Route table over the surviving subgraph of ``topo`` under ``faults``.

    An empty (or ``None``) fault set returns the **shared memoized**
    fault-free table from :func:`route_table_for` — the degraded path is
    bit-identical to the fault-free one by construction, not by testing
    luck.  Non-empty fault sets get a private table over a
    :class:`DegradedPathProvider`, memoized per
    ``(topology, faults, policy, max_paths)`` and cleared by
    :func:`~repro.sim.routing.clear_route_tables`.
    """
    resolved = get_policy(policy)
    if faults is None or faults.is_empty:
        return route_table_for(topo, max_paths=max_paths, policy=resolved)
    per_topo = _DEGRADED_TABLES.get(topo)
    if per_topo is None:
        per_topo = {}
        _DEGRADED_TABLES[topo] = per_topo
    key = (faults.cache_key(), resolved.cache_key(), max_paths)
    table = per_topo.get(key)
    if table is None:
        provider = DegradedPathProvider(topo, faults)
        table = RouteTable(topo, max_paths=max_paths, provider=provider, policy=resolved)
        per_topo[key] = table
        _TABLES_DEGRADED.inc()
        _LINKS_DEAD.inc(len(faults.dead_links))
    return table


def split_connected(
    table: RouteTable, pairs: Sequence[Tuple[int, int]]
) -> Tuple[List[int], List[int]]:
    """Split ``(src_node, dst_node)`` pairs into connected / disconnected.

    On a fault-free table every pair is connected (index lists
    ``(all, [])`` without any BFS); on a degraded table disconnected
    pairs are reported by index — this is the "report, don't crash"
    entry point backends use before solving.
    """
    provider = getattr(table, "provider", None)
    if not isinstance(provider, DegradedPathProvider):
        return list(range(len(pairs))), []
    ok: List[int] = []
    dead: List[int] = []
    for k, (s, d) in enumerate(pairs):
        (ok if provider.connected(s, d) else dead).append(k)
    if dead:
        _PAIRS_DISCONNECTED.inc(len(dead))
    return ok, dead


# ---------------------------------------------------------------------------
#  Incremental re-solve over fault events
# ---------------------------------------------------------------------------
@dataclass
class FaultStepReport:
    """Solved state of one fault event in a :class:`FaultEventSolver` replay.

    ``rates`` is indexed by the solver's *original* flow list;
    disconnected flows carry rate 0.0 and are listed in
    ``disconnected``.  ``warm`` is True when the event was absorbed by a
    verified warm delta solve; ``rerouted`` counts the flows whose
    routes were re-spliced by the event.
    """

    faults: FaultSet
    rates: np.ndarray
    disconnected: Tuple[int, ...] = ()
    rerouted: int = 0
    warm: bool = True

    @property
    def connected_rates(self) -> np.ndarray:
        if not self.disconnected:
            return self.rates
        mask = np.ones(len(self.rates), dtype=bool)
        mask[list(self.disconnected)] = False
        return self.rates[mask]

    @property
    def min_rate(self) -> float:
        """Min rate over still-connected flows (0.0 when none survive)."""
        rates = self.connected_rates
        return float(rates.min()) if len(rates) else 0.0

    @property
    def mean_rate(self) -> float:
        """Mean rate over the original flow list (disconnected count as 0)."""
        return float(self.rates.mean()) if len(self.rates) else 0.0


class FaultEventSolver:
    """Warm-started max-min re-solves across a sequence of fault events.

    Holds one flow set and replays cumulative :class:`FaultSet`\\ s
    against it.  For a monotone event (faults only grow, no flow newly
    disconnected) only the flows whose current routes touch newly-dead
    links are re-routed, via
    :meth:`~repro.sim.flowsim.FlowSimulator.maxmin_rates_delta`;
    disconnections, repairs (fault sets shrinking), group-selecting
    policies (UGAL), and policies whose per-pair choice shifts when an
    *unused* candidate dies (ECMP, Valiant — see
    :attr:`~repro.sim.policy.RoutingPolicy.local_reroutes`) re-solve
    cold on the surviving flow list.  Either
    way the result is exact — ``warm`` on the report only records which
    path produced it.
    """

    def __init__(
        self,
        topo: Topology,
        flows: Sequence[Flow],
        *,
        policy: Union[str, RoutingPolicy, None] = None,
        max_paths: int = DEFAULT_MAX_PATHS,
    ):
        self.topo = topo
        self.flows = list(flows)
        self.policy = get_policy(policy)
        self.max_paths = max_paths
        self.faults = FaultSet.empty()
        self._active: Tuple[int, ...] = tuple(range(len(self.flows)))
        self._sim = self._sim_for(self.faults)
        self._state: Optional[WarmState] = (
            self._sim.maxmin_warm_state(self.flows) if self.flows else None
        )
        #: fault-free solution of the flow set (step 0 of every schedule)
        self.baseline = self._report(self.faults, warm=True, rerouted=0)

    def _sim_for(self, faults: FaultSet) -> FlowSimulator:
        table = degraded_route_table(
            self.topo, faults, max_paths=self.max_paths, policy=self.policy
        )
        return FlowSimulator(self.topo, table=table)

    def _touched(self, state: WarmState, newly_dead: FrozenSet[int]) -> List[int]:
        """Active-list indices of flows whose current routes cross dead links."""
        if not newly_dead or state is None:
            return []
        asg = state.asg
        if not len(asg.entry_link):
            return []
        dead = np.fromiter(newly_dead, dtype=np.int64)
        hit = np.isin(asg.entry_link, dead)
        if not hit.any():
            return []
        flows = np.unique(asg.subflow_flow[asg.entry_subflow[hit]])
        return [int(i) for i in flows]

    def apply(self, faults: FaultSet) -> FaultStepReport:
        """Advance to the cumulative fault set ``faults`` and re-solve."""
        sim = self._sim_for(faults)
        provider = sim.table.provider
        if isinstance(provider, DegradedPathProvider):
            ranks = sim.ranks
            active = tuple(
                i
                for i, f in enumerate(self.flows)
                if provider.connected(ranks[f.src], ranks[f.dst])
            )
        else:
            active = tuple(range(len(self.flows)))
        newly_dead = faults.dead_links - self.faults.dead_links
        monotone = (
            not (self.faults.dead_links - faults.dead_links)
            and not (self.faults.dead_nodes - faults.dead_nodes)
        )
        active_flows = [self.flows[i] for i in active]
        warm = False
        if (
            monotone
            and active == self._active
            and self._state is not None
            and not self.policy.selects_group
            and self.policy.local_reroutes
        ):
            changed = self._touched(self._state, newly_dead)
            rerouted = len(changed)
            ds = sim.maxmin_rates_delta(self._state, active_flows, changed=changed)
            state, warm = ds.state, ds.warm
        elif active_flows:
            rerouted = len(self._touched(self._state, newly_dead)) if self._state else len(active_flows)
            state = sim.maxmin_warm_state(active_flows)
        else:
            rerouted = 0
            state = None
        (_DELTA_RESOLVES if warm else _COLD_RESOLVES).inc()
        _EVENTS.inc()
        self._sim = sim
        self._state = state
        self.faults = faults
        self._active = active
        return self._report(faults, warm=warm, rerouted=rerouted)

    def apply_schedule(self, schedule: Sequence[FaultSet]) -> List[FaultStepReport]:
        """Replay a cumulative schedule (see :func:`link_fault_schedule`)."""
        return [self.apply(fs) for fs in schedule]

    def _report(self, faults: FaultSet, *, warm: bool, rerouted: int) -> FaultStepReport:
        n = len(self.flows)
        rates = np.zeros(n)
        if self._state is not None and self._active:
            rates[list(self._active)] = self._state.result.flow_rates
        alive = set(self._active)
        disconnected = tuple(i for i in range(n) if i not in alive)
        return FaultStepReport(
            faults=faults,
            rates=rates,
            disconnected=disconnected,
            rerouted=rerouted,
            warm=warm,
        )
