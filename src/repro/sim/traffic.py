"""Traffic pattern generators used by the microbenchmarks (Section V-A).

Patterns are expressed over *ranks* ``0..P-1`` (dense accelerator indices);
the simulators translate ranks to topology node ids.  A pattern is either a
single list of :class:`Flow` objects (one communication phase) or a list of
phases executed one after another (e.g. the balanced-shift alltoall).

Randomised generators accept either an explicit integer seed (the
experiment engine's convention: serialisable and independent of execution
order, so parallel and serial sweeps are bit-identical) or a caller-managed
``numpy.random.Generator``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..exp.seeding import SeedLike, as_generator

__all__ = [
    "Flow",
    "alltoall_phase",
    "alltoall_phases",
    "sampled_alltoall_phases",
    "random_permutation",
    "adversarial_permutation",
    "swap_destinations",
    "uniform_pair_sample",
    "ring_neighbor_flows",
    "nearest_neighbor_2d_flows",
]


@dataclass(frozen=True)
class Flow:
    """A point-to-point transfer between two ranks with a relative demand."""

    src: int
    dst: int
    demand: float = 1.0


def alltoall_phase(p: int, shift: int) -> List[Flow]:
    """Phase ``shift`` of the balanced-shift alltoall on ``p`` ranks.

    In phase ``i`` every rank ``j`` sends to rank ``(j + i) mod p``
    (Section V-A1a of the paper).
    """
    if not (1 <= shift < p):
        raise ValueError(f"shift must be in [1, p), got {shift} for p={p}")
    return [Flow(j, (j + shift) % p) for j in range(p)]


def alltoall_phases(p: int) -> List[List[Flow]]:
    """All ``p - 1`` phases of the balanced-shift alltoall."""
    return [alltoall_phase(p, s) for s in range(1, p)]


def sampled_alltoall_phases(p: int, num_phases: int, seed: SeedLike = 0) -> List[List[Flow]]:
    """A stratified sample of alltoall phases for large ``p``.

    Shifts are drawn evenly spaced across ``[1, p/2]`` (with a seeded random
    offset) and every sampled shift ``s`` is paired with its complement
    ``p - s``.  This keeps the sample symmetric under direction reversal
    (East/West, North/South), which removes the directional bias a plain
    random sample of shifts would impose on the link-load estimate, while
    still covering near, medium and far communication distances.
    """
    if num_phases >= p - 1:
        return alltoall_phases(p)
    rng = as_generator(seed)
    half = max(1, num_phases // 2)
    stride = (p // 2) / half
    offset = rng.uniform(0, stride)
    shifts = set()
    for i in range(half):
        s = 1 + int(offset + i * stride) % (p - 1)
        shifts.add(s)
        shifts.add(p - s)
    shifts.discard(0)
    shifts.discard(p)
    return [alltoall_phase(p, s) for s in sorted(shifts)]


def random_permutation(p: int, seed: SeedLike = 0) -> List[Flow]:
    """Random permutation traffic: each rank sends to a unique random peer."""
    rng = as_generator(seed)
    perm = rng.permutation(p)
    # Avoid self-sends by re-drawing fixed points with a cyclic shift.
    fixed = np.nonzero(perm == np.arange(p))[0]
    if len(fixed) == 1:
        other = (fixed[0] + 1) % p
        perm[fixed[0]], perm[other] = perm[other], perm[fixed[0]]
    elif len(fixed) > 1:
        perm[fixed] = np.roll(perm[fixed], 1)
    return [Flow(int(i), int(perm[i])) for i in range(p)]


def adversarial_permutation(topo) -> List[Flow]:
    """Worst-case permutation traffic for ``topo``'s family: the classic
    adversary of minimal routing, which concentrates traffic onto a *few* of
    the parallel global resources while the rest of the network idles —
    exactly the situation non-minimal (Valiant/UGAL) routing exists to fix
    (Section IV-C's minimal-vs-non-minimal discussion).

    The result is a permutation over the *participating* ranks and may be
    **partial**: for HammingMesh the adversary is a job allocated on the
    boards of one global row (the fragmented-allocation scenario of
    Section IV) running a tornado shift among themselves while the rest of
    the machine is silent — minimal routing funnels everything through that
    row's few tapered row networks and cannot touch the idle rows' trees,
    whereas non-minimal detours can.  Per family:

    * **HammingMesh** — hot-row tornado: only the boards of global row 0
      participate, each sending half-way along the row.
    * **torus** — the tornado pattern: a ring shift *strictly* below half
      the ring, so every minimal route takes the same direction and the
      opposite direction idles (all ranks participate).
    * **Dragonfly** — shift by half the groups: each group pair saturates
      its few direct global channels while all other channels idle.
    * **HyperX** — shift the switch column by half the row length: all
      traffic serialises on the single direct row link per switch pair.
    * **fat tree / generic** — shift ranks by ``P/2`` (all traffic crosses
      the tapered upper levels; with only one path class, no policy helps).

    Deterministic (no randomness): this is a structural worst case, not a
    sample.
    """
    p = topo.num_accelerators
    if p < 2:
        raise ValueError("adversarial permutation needs at least two accelerators")
    rank_of = topo.accelerator_index()
    family = topo.meta.get("family")
    perm: Optional[List[int]] = None
    if family == "hammingmesh":
        coord_of = topo.meta["coord_of"]
        params = topo.meta["params"]
        x, y = params.x, params.y
        node_at = {coords: node for node, coords in coord_of.items()}
        hot_row = x > 1  # hot dimension: the global row if there is one
        if hot_row or y > 1:
            flows = []
            for node in topo.accelerators:
                gr, gc, br, bc = coord_of[node]
                if hot_row and gr == 0:
                    target = (0, (gc + max(1, x // 2)) % x, br, bc)
                elif not hot_row and gc == 0:
                    target = ((gr + max(1, y // 2)) % y, 0, br, bc)
                else:
                    continue  # idle rank: the adversary's job is elsewhere
                flows.append(Flow(rank_of[node], rank_of[node_at[target]]))
            return flows
    elif family == "torus":
        rows, cols = topo.meta["rows"], topo.meta["cols"]
        coord_of = topo.meta["coord_of"]
        grid = topo.meta["grid"]
        if cols > 2 or rows > 2:
            perm = []
            for node in topo.accelerators:
                r, c = coord_of[node]
                if cols > 2:
                    # strictly below cols/2, so minimal goes one way only
                    target = grid[r][(c + (cols - 1) // 2) % cols]
                else:
                    target = grid[(r + (rows - 1) // 2) % rows][c]
                perm.append(rank_of[target])
    elif family == "dragonfly":
        acc_router = topo.meta["acc_router"]
        router_group = topo.meta["router_group"]
        by_group: dict = {}
        for node in topo.accelerators:
            by_group.setdefault(router_group[acc_router[node]], []).append(node)
        groups = sorted(by_group)
        if len(groups) > 1 and len({len(v) for v in by_group.values()}) == 1:
            shift = max(1, len(groups) // 2)
            perm = [0] * p
            for gi, g in enumerate(groups):
                peers = by_group[groups[(gi + shift) % len(groups)]]
                for i, node in enumerate(by_group[g]):
                    perm[rank_of[node]] = rank_of[peers[i]]
    elif family == "hyperx":
        acc_switch = topo.meta["acc_switch"]
        switch_coord = topo.meta["switch_coord"]
        switch_grid = topo.meta["switch_grid"]
        cols = len(switch_grid[0])
        by_switch: dict = {}
        for node in topo.accelerators:
            by_switch.setdefault(acc_switch[node], []).append(node)
        if cols > 1 and len({len(v) for v in by_switch.values()}) == 1:
            perm = [0] * p
            for sw, nodes in by_switch.items():
                r, c = switch_coord[sw]
                peers = by_switch[switch_grid[r][(c + max(1, cols // 2)) % cols]]
                for i, node in enumerate(nodes):
                    perm[rank_of[node]] = rank_of[peers[i]]
    if perm is None:
        # fat tree / unknown family / degenerate shapes: half-shift in ranks.
        perm = [(r + max(1, p // 2)) % p for r in range(p)]
    # Degenerate shifts can produce fixed points (e.g. a 2-wide dimension
    # where half-way is the identity after wrap); rotate them away.
    fixed = [r for r in range(p) if perm[r] == r]
    if fixed:
        vals = [perm[r] for r in fixed]
        vals = vals[1:] + vals[:1]
        for r, v in zip(fixed, vals):
            perm[r] = v
    if any(perm[r] == r for r in range(p)):
        raise ValueError("could not build a fixed-point-free adversarial permutation")
    return [Flow(r, perm[r]) for r in range(p)]


def swap_destinations(flows: Sequence[Flow], i: int, j: int) -> List[Flow]:
    """The neighbour move of the adversary search: flows ``i`` and ``j``
    trade destinations (sources and demands stay put), so a permutation
    stays a permutation.  Returns a new list; ``flows`` is not modified.
    """
    if i == j:
        raise ValueError("swap_destinations needs two distinct flow indices")
    fi, fj = flows[i], flows[j]
    out = list(flows)
    out[i] = Flow(fi.src, fj.dst, fi.demand)
    out[j] = Flow(fj.src, fi.dst, fj.demand)
    return out


def uniform_pair_sample(p: int, num_samples: int, seed: SeedLike = 0) -> List[Flow]:
    """Uniformly sampled ordered (src, dst) pairs, src != dst.

    Used by the flow simulator's uniform-traffic throughput estimator to
    approximate the average link load of an alltoall without enumerating all
    ``p * (p - 1)`` pairs.
    """
    rng = as_generator(seed)
    src = rng.integers(0, p, size=num_samples)
    off = rng.integers(1, p, size=num_samples)
    dst = (src + off) % p
    return [Flow(int(s), int(d)) for s, d in zip(src, dst)]


def ring_neighbor_flows(
    order: Sequence[int], *, bidirectional: bool = False, wrap: bool = True
) -> List[Flow]:
    """Steady-state neighbour flows of a pipelined ring over ``order``.

    Each rank sends to its successor (and, if ``bidirectional``, also to its
    predecessor); this is the per-round communication pattern of the
    pipelined ring allreduce of Section V-A2b.  With ``wrap=False`` the last
    link of the ring is left unused (a pipeline rather than a ring).
    """
    p = len(order)
    flows: List[Flow] = []
    last = p if wrap else p - 1
    for i in range(last):
        flows.append(Flow(order[i], order[(i + 1) % p]))
        if bidirectional:
            flows.append(Flow(order[(i + 1) % p], order[i]))
    return flows


def nearest_neighbor_2d_flows(rows: int, cols: int, *, wrap: bool = True) -> List[Flow]:
    """Nearest-neighbour (halo exchange) flows on a ``rows`` x ``cols`` grid.

    Rank ``r * cols + c`` exchanges with its four neighbours; used to model
    operator-parallel convolution workloads such as CosmoFlow.
    """
    flows: List[Flow] = []
    for r in range(rows):
        for c in range(cols):
            me = r * cols + c
            neighbours = []
            if wrap or c + 1 < cols:
                neighbours.append(r * cols + (c + 1) % cols)
            if wrap or r + 1 < rows:
                neighbours.append(((r + 1) % rows) * cols + c)
            for nb in neighbours:
                if nb != me:
                    flows.append(Flow(me, nb))
                    flows.append(Flow(nb, me))
    return flows
