"""Traffic pattern generators used by the microbenchmarks (Section V-A).

Patterns are expressed over *ranks* ``0..P-1`` (dense accelerator indices);
the simulators translate ranks to topology node ids.  A pattern is either a
single list of :class:`Flow` objects (one communication phase) or a list of
phases executed one after another (e.g. the balanced-shift alltoall).

Randomised generators accept either an explicit integer seed (the
experiment engine's convention: serialisable and independent of execution
order, so parallel and serial sweeps are bit-identical) or a caller-managed
``numpy.random.Generator``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..exp.seeding import SeedLike, as_generator

__all__ = [
    "Flow",
    "alltoall_phase",
    "alltoall_phases",
    "sampled_alltoall_phases",
    "random_permutation",
    "uniform_pair_sample",
    "ring_neighbor_flows",
    "nearest_neighbor_2d_flows",
]


@dataclass(frozen=True)
class Flow:
    """A point-to-point transfer between two ranks with a relative demand."""

    src: int
    dst: int
    demand: float = 1.0


def alltoall_phase(p: int, shift: int) -> List[Flow]:
    """Phase ``shift`` of the balanced-shift alltoall on ``p`` ranks.

    In phase ``i`` every rank ``j`` sends to rank ``(j + i) mod p``
    (Section V-A1a of the paper).
    """
    if not (1 <= shift < p):
        raise ValueError(f"shift must be in [1, p), got {shift} for p={p}")
    return [Flow(j, (j + shift) % p) for j in range(p)]


def alltoall_phases(p: int) -> List[List[Flow]]:
    """All ``p - 1`` phases of the balanced-shift alltoall."""
    return [alltoall_phase(p, s) for s in range(1, p)]


def sampled_alltoall_phases(p: int, num_phases: int, seed: SeedLike = 0) -> List[List[Flow]]:
    """A stratified sample of alltoall phases for large ``p``.

    Shifts are drawn evenly spaced across ``[1, p/2]`` (with a seeded random
    offset) and every sampled shift ``s`` is paired with its complement
    ``p - s``.  This keeps the sample symmetric under direction reversal
    (East/West, North/South), which removes the directional bias a plain
    random sample of shifts would impose on the link-load estimate, while
    still covering near, medium and far communication distances.
    """
    if num_phases >= p - 1:
        return alltoall_phases(p)
    rng = as_generator(seed)
    half = max(1, num_phases // 2)
    stride = (p // 2) / half
    offset = rng.uniform(0, stride)
    shifts = set()
    for i in range(half):
        s = 1 + int(offset + i * stride) % (p - 1)
        shifts.add(s)
        shifts.add(p - s)
    shifts.discard(0)
    shifts.discard(p)
    return [alltoall_phase(p, s) for s in sorted(shifts)]


def random_permutation(p: int, seed: SeedLike = 0) -> List[Flow]:
    """Random permutation traffic: each rank sends to a unique random peer."""
    rng = as_generator(seed)
    perm = rng.permutation(p)
    # Avoid self-sends by re-drawing fixed points with a cyclic shift.
    fixed = np.nonzero(perm == np.arange(p))[0]
    if len(fixed) == 1:
        other = (fixed[0] + 1) % p
        perm[fixed[0]], perm[other] = perm[other], perm[fixed[0]]
    elif len(fixed) > 1:
        perm[fixed] = np.roll(perm[fixed], 1)
    return [Flow(int(i), int(perm[i])) for i in range(p)]


def uniform_pair_sample(p: int, num_samples: int, seed: SeedLike = 0) -> List[Flow]:
    """Uniformly sampled ordered (src, dst) pairs, src != dst.

    Used by the flow simulator's uniform-traffic throughput estimator to
    approximate the average link load of an alltoall without enumerating all
    ``p * (p - 1)`` pairs.
    """
    rng = as_generator(seed)
    src = rng.integers(0, p, size=num_samples)
    off = rng.integers(1, p, size=num_samples)
    dst = (src + off) % p
    return [Flow(int(s), int(d)) for s, d in zip(src, dst)]


def ring_neighbor_flows(
    order: Sequence[int], *, bidirectional: bool = False, wrap: bool = True
) -> List[Flow]:
    """Steady-state neighbour flows of a pipelined ring over ``order``.

    Each rank sends to its successor (and, if ``bidirectional``, also to its
    predecessor); this is the per-round communication pattern of the
    pipelined ring allreduce of Section V-A2b.  With ``wrap=False`` the last
    link of the ring is left unused (a pipeline rather than a ring).
    """
    p = len(order)
    flows: List[Flow] = []
    last = p if wrap else p - 1
    for i in range(last):
        flows.append(Flow(order[i], order[(i + 1) % p]))
        if bidirectional:
            flows.append(Flow(order[(i + 1) % p], order[i]))
    return flows


def nearest_neighbor_2d_flows(rows: int, cols: int, *, wrap: bool = True) -> List[Flow]:
    """Nearest-neighbour (halo exchange) flows on a ``rows`` x ``cols`` grid.

    Rank ``r * cols + c`` exchanges with its four neighbours; used to model
    operator-parallel convolution workloads such as CosmoFlow.
    """
    flows: List[Flow] = []
    for r in range(rows):
        for c in range(cols):
            me = r * cols + c
            neighbours = []
            if wrap or c + 1 < cols:
                neighbours.append(r * cols + (c + 1) % cols)
            if wrap or r + 1 < rows:
                neighbours.append(((r + 1) % rows) * cols + c)
            for nb in neighbours:
                if nb != me:
                    flows.append(Flow(me, nb))
                    flows.append(Flow(nb, me))
    return flows
