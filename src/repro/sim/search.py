"""Simulated-annealing adversary search over permutation traffic.

The paper's worst-case claims (Section IV-C, Figure 12) are anchored on one
hand-built adversarial permutation per family
(:func:`repro.sim.traffic.adversarial_permutation`).  ROADMAP item 3a asks
for the stronger statement: the *searched* per-policy worst case.  This
module provides it — a simulated-annealing walk over permutations whose
neighbour move swaps two destinations (:func:`~repro.sim.traffic.swap_destinations`,
closed over permutations) and whose objective is the worst per-destination
receive fraction, the same number :meth:`NetworkModel.permutation_sample`
reports.

Each neighbour evaluation is a full max-min solve, so the search leans on
the delta-solve engine: proposals are evaluated **speculatively in
batches** through :meth:`FlowSimulator.maxmin_rates_delta_batch` — every
candidate perturbs the same accepted fixed point, the batch shares its
closure / fill / verification dispatches, and the first Metropolis winner
(in proposal order) advances the chain while the remaining evaluations are
discarded.  That is the standard speculative-annealing construction: the
accepted trajectory is identical to a sequential annealer consuming the
same proposal stream, because every proposal is genuinely evaluated
against the state it would have seen.

The hand-built adversary seeds the walk and is evaluated first, so
``searched_worst <= hand_built_worst`` holds by construction (lower is
worse for the network, i.e. a stronger adversary).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import obs as _obs
from ..exp.seeding import SeedLike, as_generator
from .flowsim import FlowSimulator
from .traffic import Flow, adversarial_permutation, swap_destinations

__all__ = ["SearchResult", "anneal_adversary", "worst_receive_fraction"]

_SEARCH_STEPS = _obs.counter("search.steps")
_SEARCH_ACCEPTS = _obs.counter("search.accepts")
_SEARCH_BEST = _obs.counter("search.best_updates")


def worst_receive_fraction(topo, flows: Sequence[Flow], rates: np.ndarray) -> float:
    """Worst per-destination receive fraction of one solved phase.

    Sums achieved rates by destination, normalises by the injection
    capacity, and takes the minimum over the **participating**
    destinations (hand-built adversaries may be partial permutations that
    leave part of the machine idle).  This is exactly the objective of
    :meth:`repro.sim.backend.NetworkModel.permutation_sample` reduced with
    ``.min()``, so searched and hand-built degradations are comparable.
    """
    p = topo.num_accelerators
    inj = float(topo.meta.get("injection_capacity", 4.0))
    dst = np.fromiter((f.dst for f in flows), dtype=np.int64, count=len(flows))
    by_dst = np.zeros(p)
    np.add.at(by_dst, dst, np.asarray(rates, dtype=np.float64))
    if not len(dst):
        return 0.0
    return float(by_dst[dst].min() / inj)


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one :func:`anneal_adversary` run.

    Objectives are worst receive fractions (lower = stronger adversary);
    ``seed_objective`` is the hand-built (or caller-provided) starting
    permutation's, and ``best_objective <= seed_objective`` always holds
    because the seed is the first evaluated candidate.
    """

    best_flows: List[Flow]
    best_objective: float
    seed_objective: float
    steps: int
    accepted: int
    warm_evals: int
    cold_evals: int


def anneal_adversary(
    sim: FlowSimulator,
    flows: Optional[Sequence[Flow]] = None,
    *,
    steps: int = 256,
    seed: SeedLike = 0,
    batch: int = 16,
    t_initial: float = 0.02,
    t_final: float = 1e-3,
    max_attempts: int = 3,
    max_active_fraction: float = 0.85,
) -> SearchResult:
    """Anneal towards the worst-case permutation for ``sim``'s policy.

    Starts from ``flows`` (default: the family's hand-built
    :func:`~repro.sim.traffic.adversarial_permutation`), proposes
    swap-two-destinations moves, and accepts with the Metropolis rule
    under a geometric temperature schedule from ``t_initial`` to
    ``t_final`` (temperatures are in objective units — receive
    fractions).  ``steps`` counts proposal evaluations, each a full
    max-min solve; proposals are evaluated in speculative batches of
    ``batch`` through :meth:`FlowSimulator.maxmin_rates_delta_batch`, and
    an accepted move is re-solved with
    :meth:`FlowSimulator.maxmin_rates_delta` (``want_state=True``) to
    advance the warm state.  The best candidate ever evaluated — accepted
    or not — is tracked and returned.

    Deterministic for a given ``(sim, flows, steps, seed, batch,
    t_initial, t_final)``: proposals come from a seeded generator and the
    solver is exact.
    """
    if steps < 0:
        raise ValueError("steps must be >= 0")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if not (0.0 < t_final <= t_initial):
        raise ValueError("need 0 < t_final <= t_initial")
    topo = sim.topo
    cur = list(flows) if flows is not None else adversarial_permutation(topo)
    n = len(cur)
    rng = as_generator(seed)

    # The seed is evaluated first (it defines the warm state), so the
    # search can never report a weaker adversary than the hand-built one.
    state = sim.maxmin_warm_state(cur)
    cur_obj = worst_receive_fraction(topo, cur, state.result.flow_rates)
    seed_obj = cur_obj
    best_flows = list(cur)
    best_obj = cur_obj

    def propose() -> Optional[Tuple[int, int]]:
        """A valid swap: neither flow may become a self-send."""
        for _ in range(16):
            i, j = (int(v) for v in rng.choice(n, size=2, replace=False))
            if cur[i].src != cur[j].dst and cur[j].src != cur[i].dst:
                return i, j
        return None

    done = 0
    accepted = 0
    warm_evals = 0
    cold_evals = 0
    denom = max(steps - 1, 1)
    ratio = t_final / t_initial
    while done < steps and n >= 2:
        width = min(batch, steps - done)
        moves: List[Tuple[int, int]] = []
        cands: List[List[Flow]] = []
        for _ in range(width):
            mv = propose()
            if mv is None:
                continue
            moves.append(mv)
            cands.append(swap_destinations(cur, *mv))
        if not moves:
            break
        solves = sim.maxmin_rates_delta_batch(
            state,
            cands,
            changed=moves,
            max_attempts=max_attempts,
            max_active_fraction=max_active_fraction,
        )
        objs: List[float] = []
        for cand, ds in zip(cands, solves):
            obj = worst_receive_fraction(topo, cand, ds.result.flow_rates)
            objs.append(obj)
            if ds.warm:
                warm_evals += 1
            else:
                cold_evals += 1
            # Every evaluation is exact, so even candidates the chain will
            # discard are fair game for the best-seen record.
            if obj < best_obj:
                best_obj = obj
                best_flows = cand
                _SEARCH_BEST.inc()
        winner = -1
        for k, obj in enumerate(objs):
            temp = t_initial * ratio ** ((done + k) / denom)
            delta = obj - cur_obj
            if delta < 0 or rng.random() < math.exp(-delta / temp):
                winner = k
                break
        # Speculation: proposals after the winner were evaluated against a
        # base the chain has now left, so they cannot be accepted — but
        # they were full solves and count against the step budget.
        done += len(moves)
        _SEARCH_STEPS.inc(len(moves))
        if winner >= 0:
            accepted += 1
            _SEARCH_ACCEPTS.inc()
            adv = sim.maxmin_rates_delta(
                state,
                cands[winner],
                changed=moves[winner],
                max_attempts=max_attempts,
                max_active_fraction=max_active_fraction,
                want_state=True,
            )
            state = adv.state
            cur = cands[winner]
            cur_obj = worst_receive_fraction(
                topo, cur, state.result.flow_rates
            )
    return SearchResult(
        best_flows=best_flows,
        best_objective=best_obj,
        seed_objective=seed_obj,
        steps=done,
        accepted=accepted,
        warm_evals=warm_evals,
        cold_evals=cold_evals,
    )
