"""Reference (pre-vectorization) simulator kernels.

These are the original object-per-packet / full-rescan implementations that
the vectorized kernels in :mod:`repro.sim.network` and
:mod:`repro.sim.flowsim` replaced.  They are kept for two reasons:

* **Oracle** — the vectorized kernels are required to reproduce these
  results exactly (bit-identical packet schedules, max-min rates within
  1e-9); the parity tests in ``tests/test_sim_kernels.py`` and the
  cross-validation benchmarks run both sides on every topology family.
* **Baseline** — the before/after speedup artifacts
  (``BENCH_simulators_packet_event_rate.json``,
  ``BENCH_flowsim_maxmin.json``) time these implementations as the
  "before" measurement on the same machine as the vectorized "after", so
  the recorded speedups are hardware-independent ratios.

The only intentional deviation from the seed code is the shared
fractional-payload fix: the last packet of a message carries the exact
remainder ``size - packet_size * (n - 1)`` instead of silently truncating
it to an integer, so delivered bytes always equal the message size (both
implementations assert this).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .._hash import mix64
from ..topology.base import CableClass, Topology
from .engine import EventEngine
from .flowsim import _EPS, FlowSimulator, PhaseResult
from .packet import Message, Packet
from .paths import PathProvider
from .routing import RouteTable, route_table_for

__all__ = ["ReferencePacketNetwork", "reference_maxmin_rates"]


class ReferencePacketNetwork:
    """Seed event-driven packet simulator: one closure per packet-hop.

    Mirrors the public surface of :class:`~repro.sim.network.PacketNetwork`
    (``send`` / ``send_flows`` / ``run``) so tests and benchmarks can drive
    either implementation interchangeably.
    """

    def __init__(
        self,
        topo: Topology,
        *,
        provider: Optional[PathProvider] = None,
        config=None,
        table: Optional[RouteTable] = None,
    ):
        from .network import PacketSimConfig, PacketSimResult

        self._result_cls = PacketSimResult
        self.topo = topo
        self.config = config if config is not None else PacketSimConfig()
        config = self.config
        if table is not None:
            self.table = table
        elif provider is not None:
            self.table = RouteTable(
                topo, max_paths=config.max_paths, provider=provider, policy=config.policy
            )
        else:
            self.table = route_table_for(
                topo, max_paths=config.max_paths, policy=config.policy
            )
        self.provider = self.table.provider
        self.engine = EventEngine()
        self.ranks = list(topo.accelerators)
        n_links = topo.num_links
        self._link_free = np.zeros(n_links)
        self._link_busy = np.zeros(n_links)
        self._serialization = np.empty(n_links)
        self._latency = np.empty(n_links)
        for idx, link in enumerate(topo.links):
            rate = link.capacity * config.bytes_per_capacity_unit
            self._serialization[idx] = config.packet_size / rate
            self._latency[idx] = (
                config.board_latency if link.cable is CableClass.PCB else config.cable_latency
            )
        self._messages: List[Message] = []
        self._next_message_id = 0
        self._next_packet_id = 0
        self._path_cache: Dict[Tuple[int, int], List[List[int]]] = {}

    # ---------------------------------------------------------------- sending
    def send(
        self, src_rank: int, dst_rank: int, size: float, *, start_time: float = 0.0,
        tag: Optional[str] = None,
    ) -> Message:
        if src_rank == dst_rank:
            raise ValueError("messages need distinct endpoints")
        message = Message(
            message_id=self._next_message_id,
            src=self.ranks[src_rank],
            dst=self.ranks[dst_rank],
            size=size,
            start_time=start_time,
            tag=tag,
        )
        self._next_message_id += 1
        self._messages.append(message)
        self.engine.schedule_at(start_time, lambda m=message: self._inject(m))
        return message

    def send_flows(self, flows, size: float, *, start_time: float = 0.0) -> None:
        for flow in flows:
            self.send(flow.src, flow.dst, size * flow.demand, start_time=start_time)

    # -------------------------------------------------------------- internals
    def _paths(self, src: int, dst: int) -> List[List[int]]:
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is None:
            cached = self.table.paths(src, dst, max_paths=self.config.max_paths)
            self._path_cache[key] = cached
        return cached

    def _choose_path(self, src: int, dst: int, salt: int) -> List[int]:
        paths = self._paths(src, dst)
        if len(paths) == 1:
            return paths[0]
        now = self.engine.now
        best_path = paths[0]
        best_cost = float("inf")
        order = mix64(salt) % len(paths)
        rotated = paths[order:] + paths[:order]
        for path in rotated:
            cost = 0.0
            for li in path:
                cost += max(0.0, self._link_free[li] - now) + self._serialization[li]
            if cost < best_cost:
                best_cost = cost
                best_path = path
        return best_path

    def _inject(self, message: Message) -> None:
        ps = self.config.packet_size
        num_packets = max(1, int(np.ceil(message.size / ps)))
        last_payload = message.size - ps * (num_packets - 1)
        assert ps * (num_packets - 1) + last_payload == message.size
        message.packets_total = num_packets
        for i in range(num_packets):
            payload = ps if i < num_packets - 1 else last_payload
            path = self._choose_path(message.src, message.dst, message.message_id * 131 + i)
            packet = Packet(
                packet_id=self._next_packet_id, message=message, size=payload, path=path
            )
            self._next_packet_id += 1
            self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        if packet.at_last_hop:
            self._deliver(packet)
            return
        li = packet.path[packet.hop]
        now = self.engine.now
        ser = self._serialization[li] * (packet.size / self.config.packet_size)
        depart = max(now, self._link_free[li])
        self._link_free[li] = depart + ser
        self._link_busy[li] += ser
        arrival = depart + ser + self._latency[li] + self.config.buffer_latency
        packet.hop += 1
        self.engine.schedule_at(arrival, lambda p=packet: self._forward(p))

    def _deliver(self, packet: Packet) -> None:
        message = packet.message
        message.packets_arrived += 1
        if message.packets_arrived >= message.packets_total:
            message.completion_time = self.engine.now

    # ------------------------------------------------------------------- run
    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None):
        finish = self.engine.run(until=until, max_events=max_events)
        return self._result_cls(
            messages=list(self._messages),
            finish_time=finish,
            link_busy_time=self._link_busy.copy(),
        )


def reference_maxmin_rates(
    sim: FlowSimulator, flows, *, max_iterations: int = 100000
) -> PhaseResult:
    """Seed progressive-filling solver: full ``bincount`` rescan per round.

    Every bottleneck round recomputes the per-link load over *all* active
    (subflow, link) entries — O(entries) per round — where the incremental
    solver in :meth:`FlowSimulator.maxmin_rates` subtracts only the entries
    of freshly-frozen subflows.  Semantics are identical.
    """
    asg = sim.assign(flows)
    L = len(sim.capacity)
    remaining = sim.capacity.copy()
    sub_rate = np.zeros(asg.num_subflows)
    active = np.ones(asg.num_subflows, dtype=bool)
    entry_weight = (
        asg.subflow_weight[asg.entry_subflow]
        * asg.flow_demand[asg.subflow_flow[asg.entry_subflow]]
    )
    iterations = 0
    while active.any():
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - defensive
            raise RuntimeError("max-min filling did not converge")
        entry_active = active[asg.entry_subflow]
        load = np.bincount(
            asg.entry_link[entry_active],
            weights=entry_weight[entry_active],
            minlength=L,
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            headroom = np.where(load > _EPS, remaining / np.maximum(load, _EPS), np.inf)
        inc = float(headroom.min())
        if not np.isfinite(inc):
            break
        sub_weights = asg.subflow_weight * asg.flow_demand[asg.subflow_flow]
        sub_rate[active] += inc * sub_weights[active]
        remaining = remaining - load * inc
        saturated = remaining <= _EPS * (1.0 + sim.capacity)
        if saturated.any():
            entry_saturated = saturated[asg.entry_link] & entry_active
            frozen_subflows = np.unique(asg.entry_subflow[entry_saturated])
            active[frozen_subflows] = False
        else:  # pragma: no cover - numerical safety
            break
    flow_rates = np.bincount(asg.subflow_flow, weights=sub_rate, minlength=asg.num_flows)
    used = sim.capacity - remaining
    link_util = np.where(sim.capacity > 0, used / sim.capacity, 0.0)
    bottleneck = int(np.argmax(link_util)) if L else -1
    return PhaseResult(
        flow_rates=flow_rates, link_utilization=link_util, bottleneck_link=bottleneck
    )
