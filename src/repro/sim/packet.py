"""Packet and message records of the packet-level simulator.

:class:`Message` is the public per-transfer record both packet-simulator
implementations return.  :class:`Packet` is the object-per-packet record of
the *reference* implementation
(:class:`repro.sim.reference.ReferencePacketNetwork`); the vectorized core
keeps packet state in struct-of-arrays form instead (see
:meth:`repro.sim.network.PacketNetwork.packet_state`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Message", "Packet", "DEFAULT_PACKET_SIZE"]

#: Packet size used by the paper's SST configuration (Appendix F).
DEFAULT_PACKET_SIZE = 8192


@dataclass
class Message:
    """An application-level transfer between two accelerators."""

    message_id: int
    src: int                 # accelerator node id
    dst: int                 # accelerator node id
    size: float              # bytes
    start_time: float = 0.0
    tag: Optional[str] = None
    # filled in by the simulator
    packets_total: int = 0
    packets_arrived: int = 0
    completion_time: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.completion_time is not None

    def observed_bandwidth(self) -> float:
        """Achieved bytes/s from injection start to last packet arrival."""
        if self.completion_time is None or self.completion_time <= self.start_time:
            return 0.0
        return self.size / (self.completion_time - self.start_time)


@dataclass
class Packet:
    """One packet of a message, following a fixed path of directed links."""

    packet_id: int
    message: Message
    size: int
    path: List[int]
    hop: int = 0
    virtual_channel: int = 0

    @property
    def at_last_hop(self) -> bool:
        return self.hop >= len(self.path)
