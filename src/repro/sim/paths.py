"""Multipath route enumeration for every topology family.

The flow-level simulator approximates packet-level adaptive routing by
splitting each flow evenly over a small set of minimal paths; the packet
simulator uses the same candidate sets to constrain its adaptive next-hop
choices.  This module provides a uniform ``PathProvider`` interface and a
structured (i.e. non-search-based) implementation per topology family, plus
a generic BFS fallback used for tests and custom topologies.

Besides the minimal candidate sets, :func:`valiant_paths` enumerates
*non-minimal* two-phase candidates (minimal to a randomized intermediate,
then minimal to the destination) used by the ``valiant`` and ``ugal``
routing policies (:mod:`repro.sim.policy`).  Intermediates are chosen per
topology family — a different board on a HammingMesh, a different group on a
Dragonfly, a different switch on a HyperX — so the detour actually crosses
the resources the minimal route would avoid.

All providers return paths as lists of **directed link indices** of the
underlying :class:`~repro.topology.base.Topology`.
"""

from __future__ import annotations

import itertools
import os
from collections import OrderedDict, deque
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from .._hash import mix64
from ..core.routing import HxMeshRouter
from ..topology.base import Topology, TopologyError

__all__ = [
    "DEFAULT_MAX_PATHS",
    "PathProvider",
    "GenericPathProvider",
    "FatTreePathProvider",
    "DragonflyPathProvider",
    "TorusPathProvider",
    "HyperXPathProvider",
    "HxMeshPathProvider",
    "path_provider_for",
    "valiant_intermediates",
    "valiant_paths",
]

#: Default multipath width shared by every provider, :class:`RouteTable`,
#: and :func:`route_table_for` — the single source of truth for the
#: "how many candidate paths per pair" default.
DEFAULT_MAX_PATHS = 4


class PathProvider(Protocol):
    """Protocol of a multipath route provider."""

    topo: Topology

    def paths(self, src: int, dst: int, max_paths: int = DEFAULT_MAX_PATHS) -> List[List[int]]:
        """Minimal candidate paths from accelerator ``src`` to ``dst``."""
        ...


# ---------------------------------------------------------------------------
class GenericPathProvider:
    """BFS-based shortest-path provider for arbitrary topologies.

    Enumerates up to ``max_paths`` shortest paths by BFS from the destination
    followed by a depth-first descent along distance-decreasing links.  This
    is exact but O(V+E) per destination, so it is only used for small
    topologies, tests, and as a fallback when a structured provider cannot
    produce a path.
    """

    #: default cap on cached per-destination distance maps (each map is
    #: O(num_nodes), so an unbounded cache is an all-pairs memory hazard at
    #: scale); override per instance or via ``REPRO_PATHS_DIST_CACHE``
    DEFAULT_DIST_CACHE_ENTRIES = 1024

    def __init__(self, topo: Topology, *, dist_cache_entries: Optional[int] = None):
        self.topo = topo
        if dist_cache_entries is None:
            env = os.environ.get("REPRO_PATHS_DIST_CACHE", "").strip()
            dist_cache_entries = int(env) if env else self.DEFAULT_DIST_CACHE_ENTRIES
        self._dist_cache_entries = max(1, int(dist_cache_entries))
        self._dist_cache: "OrderedDict[int, List[int]]" = OrderedDict()

    def _distances_to(self, dst: int) -> List[int]:
        cached = self._dist_cache.get(dst)
        if cached is not None:
            self._dist_cache.move_to_end(dst)
            return cached
        dist = [-1] * self.topo.num_nodes
        dist[dst] = 0
        q = deque([dst])
        while q:
            u = q.popleft()
            for li in self.topo.in_links(u):
                v = self.topo.link(li).src
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    q.append(v)
        self._dist_cache[dst] = dist
        if len(self._dist_cache) > self._dist_cache_entries:
            self._dist_cache.popitem(last=False)
        return dist

    def paths(self, src: int, dst: int, max_paths: int = DEFAULT_MAX_PATHS) -> List[List[int]]:
        if src == dst:
            return [[]]
        dist = self._distances_to(dst)
        if dist[src] < 0:
            raise TopologyError(f"no path from {src} to {dst}")
        out: List[List[int]] = []

        def descend(node: int, acc: List[int]) -> None:
            if len(out) >= max_paths:
                return
            if node == dst:
                out.append(list(acc))
                return
            for li in self.topo.out_links(node):
                v = self.topo.link(li).dst
                if dist[v] == dist[node] - 1:
                    acc.append(li)
                    descend(v, acc)
                    acc.pop()
                    if len(out) >= max_paths:
                        return

        descend(src, [])
        return out


# ---------------------------------------------------------------------------
class FatTreePathProvider:
    """Paths through a standalone fat-tree cluster (up/down routing)."""

    def __init__(self, topo: Topology):
        if topo.meta.get("family") != "fattree":
            raise TopologyError("not a fat-tree topology")
        self.topo = topo
        self.network = topo.meta["network"]
        self._fallback = GenericPathProvider(topo)

    def paths(self, src: int, dst: int, max_paths: int = DEFAULT_MAX_PATHS) -> List[List[int]]:
        if src == dst:
            return [[]]
        out = self.network.paths(src, dst, max_paths=max_paths)
        if not out:
            out = self._fallback.paths(src, dst, max_paths=max_paths)
        return out


# ---------------------------------------------------------------------------
class DragonflyPathProvider:
    """Minimal (local-global-local) Dragonfly routing with channel multipath."""

    def __init__(self, topo: Topology):
        if topo.meta.get("family") != "dragonfly":
            raise TopologyError("not a Dragonfly topology")
        self.topo = topo
        m = topo.meta
        self.acc_router: Dict[int, int] = m["acc_router"]
        self.router_group: Dict[int, int] = m["router_group"]
        self.local_links: Dict[Tuple[int, int], Tuple[int, int]] = m["local_links"]
        self.group_links: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = m["group_links"]
        self.access_links: Dict[int, Tuple[int, int]] = m["access_links"]

    def _local(self, r1: int, r2: int) -> List[int]:
        if r1 == r2:
            return []
        return [self.local_links[(r1, r2)][0]]

    def paths(self, src: int, dst: int, max_paths: int = DEFAULT_MAX_PATHS) -> List[List[int]]:
        if src == dst:
            return [[]]
        up = self.access_links[src][0]
        down = self.access_links[dst][1]
        rs, rd = self.acc_router[src], self.acc_router[dst]
        gs, gd = self.router_group[rs], self.router_group[rd]
        if rs == rd:
            return [[up, down]]
        if gs == gd:
            return [[up] + self._local(rs, rd) + [down]]
        channels = self.group_links.get((gs, gd), [])
        if not channels:
            raise TopologyError(f"no global channel between groups {gs} and {gd}")
        # Rotate the channel list by a pair-dependent offset so the capped
        # path enumeration spreads different flows over different global
        # channels (approximates adaptive routing's load balancing).
        off = mix64(src * 1000003 + dst) % len(channels)
        channels = channels[off:] + channels[:off]
        candidates: List[List[int]] = []
        for r1, r2, glink in channels:
            path = [up] + self._local(rs, r1) + [glink] + self._local(r2, rd) + [down]
            candidates.append(path)
        candidates.sort(key=len)
        shortest = len(candidates[0])
        minimal = [p for p in candidates if len(p) == shortest]
        # Keep some longer alternatives if there are few strictly minimal
        # ones (approximates UGAL's willingness to take non-minimal paths).
        if len(minimal) < max_paths:
            minimal = candidates[: max(max_paths, len(minimal))]
        return minimal[:max_paths]


# ---------------------------------------------------------------------------
class TorusPathProvider:
    """Dimension-ordered routing on the 2D torus with minimal wrap choice."""

    def __init__(self, topo: Topology):
        if topo.meta.get("family") != "torus":
            raise TopologyError("not a torus topology")
        self.topo = topo
        m = topo.meta
        self.rows: int = m["rows"]
        self.cols: int = m["cols"]
        self.coord_of: Dict[int, Tuple[int, int]] = m["coord_of"]
        self.grid = m["grid"]
        self.dir_links: Dict[Tuple[int, int, str], int] = m["dir_links"]

    def _dim_moves(self, delta: int, size: int, pos_dir: str, neg_dir: str) -> List[Tuple[str, int]]:
        """Candidate (direction, hop count) moves along one dimension."""
        fwd = delta % size
        back = (-delta) % size
        moves: List[Tuple[str, int]] = []
        if fwd == 0:
            return [("", 0)]
        if fwd <= back:
            moves.append((pos_dir, fwd))
        if back <= fwd:
            moves.append((neg_dir, back))
        return moves

    def _walk(self, r: int, c: int, direction: str, hops: int) -> Tuple[List[int], int, int]:
        links: List[int] = []
        for _ in range(hops):
            links.append(self.dir_links[(r, c, direction)])
            if direction == "E":
                c = (c + 1) % self.cols
            elif direction == "W":
                c = (c - 1) % self.cols
            elif direction == "S":
                r = (r + 1) % self.rows
            elif direction == "N":
                r = (r - 1) % self.rows
        return links, r, c

    def paths(self, src: int, dst: int, max_paths: int = DEFAULT_MAX_PATHS) -> List[List[int]]:
        if src == dst:
            return [[]]
        (r1, c1), (r2, c2) = self.coord_of[src], self.coord_of[dst]
        hmoves = self._dim_moves(c2 - c1, self.cols, "E", "W")
        vmoves = self._dim_moves(r2 - r1, self.rows, "S", "N")
        out: List[List[int]] = []
        for (hd, hn), (vd, vn), order in itertools.product(hmoves, vmoves, ("xy", "yx")):
            r, c = r1, c1
            links: List[int] = []
            steps = [(hd, hn), (vd, vn)] if order == "xy" else [(vd, vn), (hd, hn)]
            for direction, hops in steps:
                if hops == 0 or not direction:
                    continue
                seg, r, c = self._walk(r, c, direction, hops)
                links.extend(seg)
            if (r, c) != (r2, c2):  # pragma: no cover - defensive
                continue
            if links not in out:
                out.append(links)
            if len(out) >= max_paths:
                break
        return out


# ---------------------------------------------------------------------------
class HyperXPathProvider:
    """Minimal routing on the switch-based 2D HyperX.

    A flow crosses at most two switch-to-switch links: one in the row
    dimension and one in the column dimension, via either of the two corner
    switches (dimension order is the adaptive choice).
    """

    def __init__(self, topo: Topology):
        if topo.meta.get("family") != "hyperx":
            raise TopologyError("not a HyperX topology")
        self.topo = topo
        m = topo.meta
        self.acc_switch: Dict[int, int] = m["acc_switch"]
        self.switch_coord: Dict[int, Tuple[int, int]] = m["switch_coord"]
        self.switch_grid = m["switch_grid"]
        self.switch_links: Dict[Tuple[int, int], int] = m["switch_links"]
        self.access_links: Dict[int, Tuple[int, int]] = m["access_links"]

    def paths(self, src: int, dst: int, max_paths: int = DEFAULT_MAX_PATHS) -> List[List[int]]:
        if src == dst:
            return [[]]
        up = self.access_links[src][0]
        down = self.access_links[dst][1]
        s1, s2 = self.acc_switch[src], self.acc_switch[dst]
        if s1 == s2:
            return [[up, down]]
        (r1, c1), (r2, c2) = self.switch_coord[s1], self.switch_coord[s2]
        if r1 == r2 or c1 == c2:
            return [[up, self.switch_links[(s1, s2)], down]]
        mid_a = self.switch_grid[r1][c2]   # row first
        mid_b = self.switch_grid[r2][c1]   # column first
        out = [
            [up, self.switch_links[(s1, mid_a)], self.switch_links[(mid_a, s2)], down],
            [up, self.switch_links[(s1, mid_b)], self.switch_links[(mid_b, s2)], down],
        ]
        return out[:max_paths]


# ---------------------------------------------------------------------------
class HxMeshPathProvider:
    """Adaptive minimal routing on HammingMesh (wraps :class:`HxMeshRouter`)."""

    def __init__(self, topo: Topology):
        self.topo = topo
        self.router = HxMeshRouter(topo)
        self._fallback: Optional[GenericPathProvider] = None

    def paths(self, src: int, dst: int, max_paths: int = DEFAULT_MAX_PATHS) -> List[List[int]]:
        try:
            return self.router.paths(src, dst, max_paths=max_paths)
        except TopologyError:
            if self._fallback is None:
                self._fallback = GenericPathProvider(self.topo)
            return self._fallback.paths(src, dst, max_paths=max_paths)


# ---------------------------------------------------------------------------
#  Non-minimal (Valiant) candidate enumeration
# ---------------------------------------------------------------------------
def valiant_intermediates(
    topo: Topology, src: int, dst: int, count: int, *, seed: int = 0
) -> List[int]:
    """Deterministic randomized intermediate accelerators for Valiant routing.

    The intermediate is chosen per topology family so the detour actually
    leaves the congested region of the minimal route:

    * **HammingMesh** — an accelerator on a board different from both the
      source's and the destination's board (reusing the intermediate-board
      idea of :class:`~repro.core.routing.HxMeshRouter`);
    * **Dragonfly** — an accelerator in a third group (classic Valiant
      group-level misrouting);
    * **HyperX** — an accelerator on a third switch;
    * **fat tree / torus / generic** — any third accelerator.

    The sequence is a pure function of ``(src, dst, seed)`` (SplitMix64
    probing over the accelerator list), so candidate sets are reproducible
    across processes and cache layers.  Falls back to the relaxed "any third
    accelerator" rule when the family-specific filter leaves no candidates
    (e.g. a two-board HxMesh).
    """
    accs = topo.accelerators
    if len(accs) <= 2 or count <= 0:
        return []
    family = topo.meta.get("family")
    if family == "hammingmesh":
        coord_of = topo.meta["coord_of"]
        sgr, sgc = coord_of[src][:2]
        dgr, dgc = coord_of[dst][:2]

        def accept(mid: int) -> bool:
            # A true diagonal detour: the intermediate board shares neither
            # a global row nor a global column with either endpoint, so both
            # detour phases can cross networks the minimal route never uses.
            gr, gc = coord_of[mid][:2]
            return gr not in (sgr, dgr) and gc not in (sgc, dgc)

    elif family == "dragonfly":
        acc_router = topo.meta["acc_router"]
        router_group = topo.meta["router_group"]
        gs = router_group[acc_router[src]]
        gd = router_group[acc_router[dst]]

        def accept(mid: int) -> bool:
            g = router_group[acc_router[mid]]
            return g != gs and g != gd

    elif family == "hyperx":
        acc_switch = topo.meta["acc_switch"]
        ss, sd = acc_switch[src], acc_switch[dst]

        def accept(mid: int) -> bool:
            sw = acc_switch[mid]
            return sw != ss and sw != sd

    else:

        def accept(mid: int) -> bool:
            return True

    base = mix64(src * 1_000_003 + dst) ^ mix64(0x51A7 + seed)
    attempts = 4 * count + 16

    def probe(filter_fn) -> List[int]:
        out: List[int] = []
        seen = set()
        for k in range(attempts):
            if len(out) >= count:
                break
            mid = accs[mix64(base + k) % len(accs)]
            if mid == src or mid == dst or mid in seen:
                continue
            seen.add(mid)
            if filter_fn(mid):
                out.append(mid)
        return out

    out = probe(accept)
    if not out and family == "hammingmesh":
        # No fully-diagonal board (e.g. a single global row): relax to any
        # board distinct from both endpoints' boards.
        coord_of = topo.meta["coord_of"]
        boards = (coord_of[src][:2], coord_of[dst][:2])
        out = probe(lambda mid: coord_of[mid][:2] not in boards)
    if not out:
        out = probe(lambda mid: True)
    return out


def valiant_paths(
    provider: PathProvider,
    src: int,
    dst: int,
    *,
    max_paths: int = DEFAULT_MAX_PATHS,
    seed: int = 0,
    exclude: Iterable[Sequence[int]] = (),
) -> List[List[int]]:
    """Non-minimal two-phase (Valiant) candidate paths from ``src`` to ``dst``.

    Each candidate routes minimally to a randomized intermediate accelerator
    (see :func:`valiant_intermediates`) and minimally onwards to the
    destination.  Within each phase the segment is chosen to **minimise
    link overlap with the pair's own minimal routes** (hash-rotated
    tie-break): a detour that funnels straight back through the links
    minimal routing congests (e.g. a HammingMesh phase class re-crossing
    the source's own global-row network) defeats its purpose — and leaves
    UGAL's congestion filter without a usable alternate.  ``exclude``
    suppresses duplicates of already-enumerated (e.g. minimal) paths.
    Deterministic per ``(src, dst, seed)``.
    """
    if src == dst:
        return [[]]
    banned = {tuple(p) for p in exclude}
    try:
        minimal_links = {
            li for p in provider.paths(src, dst, max_paths=max(2, max_paths)) for li in p
        }
    except TopologyError:
        minimal_links = set()
    out: List[List[int]] = []
    mids = valiant_intermediates(provider.topo, src, dst, 2 * max_paths, seed=seed)
    pair_key = mix64(src * 1_000_003 + dst)

    def pick(segments: List[List[int]], salt: int) -> List[int]:
        return min(
            segments,
            key=lambda q: (
                sum(li in minimal_links for li in q),
                mix64(salt ^ (q[0] if q else 0)),
            ),
        )

    for j, mid in enumerate(mids):
        if len(out) >= max_paths:
            break
        try:
            heads = provider.paths(src, mid, max_paths=DEFAULT_MAX_PATHS)
            tails = provider.paths(mid, dst, max_paths=DEFAULT_MAX_PATHS)
        except TopologyError:
            continue
        if not heads or not tails:
            continue
        h = mix64(pair_key ^ mix64(seed * 0x9E37 + j))
        path = pick(heads, h) + pick(tails, h >> 16)
        key = tuple(path)
        if not path or key in banned:
            continue
        banned.add(key)
        out.append(path)
    return out


# ---------------------------------------------------------------------------
_PROVIDERS = {
    "fattree": FatTreePathProvider,
    "dragonfly": DragonflyPathProvider,
    "torus": TorusPathProvider,
    "hammingmesh": HxMeshPathProvider,
    "hyperx": HyperXPathProvider,
}


def path_provider_for(topo: Topology) -> PathProvider:
    """Return the structured path provider for ``topo``'s family, or the
    generic BFS provider when the family is unknown."""
    family = topo.meta.get("family")
    cls = _PROVIDERS.get(family)
    if cls is None:
        return GenericPathProvider(topo)
    return cls(topo)
