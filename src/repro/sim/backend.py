"""Pluggable network-model backends behind one interface.

Every experiment in the reproduction ultimately asks a network model a small
set of questions — achievable alltoall/allreduce fractions, per-rank
permutation bandwidth, per-flow rates of one communication phase.  The
:class:`NetworkModel` interface answers them at three fidelities, selectable
by name:

* ``"analytic"`` — :class:`AnalyticBackend`, congestion-free alpha-beta
  models (wrapping :mod:`repro.collectives.cost_models`): instant, exact on
  non-blocking networks, an upper bound everywhere else;
* ``"flow"`` — :class:`FlowBackend`, the max-min fair flow-level simulator
  (the default fidelity behind Table II and the figures);
* ``"packet"`` — :class:`PacketBackend`, the event-driven packet simulator:
  slowest, adds latency/queueing effects, practical on small topologies.

Backends constructed on the same topology share one memoized
:class:`~repro.sim.routing.RouteTable` per multipath width, so switching
fidelity (or interleaving backends, as the validation tests do) never
re-enumerates routes.

Usage::

    from repro.sim import get_backend

    model = get_backend("flow", topo, max_paths=8)
    frac = model.alltoall_fraction(num_phases=24, seed=1)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type, Union

import numpy as np

from ..topology.base import Topology
from .faults import FaultSet, degraded_route_table, split_connected
from .flowsim import FlowSimulator
from .network import PacketNetwork, PacketSimConfig
from .paths import DEFAULT_MAX_PATHS
from .policy import RoutingPolicy, get_policy
from .routing import RouteTable, route_table_for
from .traffic import Flow, random_permutation

__all__ = [
    "NetworkModel",
    "AnalyticBackend",
    "FlowBackend",
    "PacketBackend",
    "BACKENDS",
    "get_backend",
    "available_backends",
    "register_backend",
]

_EPS = 1e-9


class NetworkModel:
    """Common interface of the analytic / flow / packet network models.

    Concrete backends implement :meth:`phase_rates` plus the three bandwidth
    measurements the analysis layer reports (Table II conventions); all
    quantities are in normalised port units (1.0 == one 400 Gb/s port)
    unless stated otherwise.
    """

    #: registry name of the backend (set by :func:`register_backend`)
    name: str = ""

    def __init__(self, topo: Topology):
        self.topo = topo
        self.injection_capacity = float(topo.meta.get("injection_capacity", 4.0))

    @property
    def num_ranks(self) -> int:
        return self.topo.num_accelerators

    # -------------------------------------------------------------- interface
    def phase_rates(self, flows: Sequence[Flow], *, exact: bool = False) -> np.ndarray:
        """Achieved rate per flow (port units) for one concurrent phase."""
        raise NotImplementedError

    def alltoall_fraction(
        self, *, num_phases: Optional[int] = None, seed: int = 0
    ) -> float:
        """Achievable per-accelerator alltoall bandwidth / injection bandwidth."""
        raise NotImplementedError

    def allreduce_fraction(self) -> float:
        """Achieved large-message allreduce bandwidth / theoretical optimum.

        Measurement convention of Table II: dual bidirectional rings on
        edge-disjoint Hamiltonian cycles for grid topologies, per-plane
        bidirectional ring on switched ones (see ``analysis.bandwidth``).
        Implemented once on top of :meth:`phase_rates`, so every fidelity
        measures the same convention.
        """
        from ..collectives.ring import dual_ring_steady_flows, ring_orders_for

        orders = ring_orders_for(self.topo)
        flows = dual_ring_steady_flows(orders)
        rates = self.phase_rates(flows)
        send_rate = float(rates.min()) * 2 * len(orders)
        return min(send_rate / self.injection_capacity, 1.0)

    def permutation_fractions(
        self, *, num_permutations: int = 4, seed: int = 0
    ) -> np.ndarray:
        """Concatenated per-rank receive fractions over random permutations."""
        samples = [
            self._permutation_sample(random_permutation(self.num_ranks, seed=seed + i))
            for i in range(num_permutations)
        ]
        return np.concatenate(samples)

    def permutation_sample(self, flows: Sequence[Flow]) -> np.ndarray:
        """Per-rank receive fractions of one explicit permutation phase.

        Like :meth:`permutation_fractions` but for a caller-supplied
        permutation (e.g. an adversarial pattern from
        :func:`~repro.sim.traffic.adversarial_permutation`).
        """
        return self._permutation_sample(flows)

    def _permutation_sample(self, flows: Sequence[Flow]) -> np.ndarray:
        rates = self.phase_rates(flows, exact=True)
        by_dst = np.zeros(self.num_ranks)
        dst = np.fromiter((f.dst for f in flows), dtype=np.int64, count=len(flows))
        np.add.at(by_dst, dst, rates)
        return by_dst / self.injection_capacity

    # ------------------------------------------------------------ conveniences
    def phase_duration(
        self, flows: Sequence[Flow], *, bytes_per_unit: float = 1.0, exact: bool = False
    ) -> float:
        """Wall-clock seconds until the slowest flow of the phase completes.

        Flow demands are interpreted as byte volumes; ``bytes_per_unit``
        converts the backend's port units into bytes per second.
        """
        flows = [f for f in flows if f.demand > 0]
        if not flows:
            return 0.0
        rates = self.phase_rates(flows, exact=exact)
        demands = np.fromiter((f.demand for f in flows), dtype=np.float64, count=len(flows))
        return float((demands / np.maximum(rates * bytes_per_unit, 1e-30)).max())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} ({self.name!r}) on {self.topo.name!r}>"


# ---------------------------------------------------------------------- registry
BACKENDS: Dict[str, Type[NetworkModel]] = {}


def register_backend(name: str):
    """Register a :class:`NetworkModel` subclass under ``name``."""

    def decorator(cls: Type[NetworkModel]) -> Type[NetworkModel]:
        if name in BACKENDS:
            raise ValueError(f"backend {name!r} registered twice")
        cls.name = name
        BACKENDS[name] = cls
        return cls

    return decorator


def available_backends() -> List[str]:
    """Names of the registered network-model backends."""
    return sorted(BACKENDS)


def get_backend(
    backend: Union[str, NetworkModel], topo: Optional[Topology] = None, **knobs
) -> NetworkModel:
    """Resolve a backend by name (or pass an instance through unchanged).

    ``knobs`` are fidelity parameters forwarded to the backend constructor
    (e.g. ``max_paths`` for flow, ``config=PacketSimConfig(...)`` for
    packet, ``alpha`` for analytic).  Every backend accepts ``policy`` — a
    registered routing-policy name (``"minimal"``, ``"ecmp"``, ``"valiant"``,
    ``"ugal"``) or a :class:`~repro.sim.policy.RoutingPolicy` instance; the
    congestion-free analytic backend validates and records it but its
    numbers are policy-independent by construction.
    """
    if isinstance(backend, NetworkModel):
        if topo is not None and backend.topo is not topo:
            raise ValueError("backend instance is bound to a different topology")
        return backend
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown network backend {backend!r}; available: {available_backends()}"
        ) from None
    if topo is None:
        raise ValueError("a topology is required to construct a backend by name")
    return cls(topo, **knobs)


# ---------------------------------------------------------------------- analytic
@register_backend("analytic")
class AnalyticBackend(NetworkModel):
    """Congestion-free alpha-beta model (wraps ``collectives.cost_models``).

    Flows are limited only by their endpoints' injection/ejection capacity
    (all concurrent flows of a rank share its NICs); the network core is
    assumed non-blocking.  This is exact for the non-blocking fat tree and
    an optimistic bound everywhere else — useful for instant sweeps and as
    the reference the congested fidelities are compared against.  The
    allreduce algorithm timings of Section V-A2 are exposed directly via
    :meth:`allreduce_time` / :meth:`allreduce_bus_bandwidth`.
    """

    def __init__(
        self,
        topo: Topology,
        *,
        alpha: float = 2e-6,
        bytes_per_unit: float = 50e9,
        policy: Union[str, RoutingPolicy, None] = None,
    ):
        super().__init__(topo)
        self.alpha = alpha
        self.bytes_per_unit = bytes_per_unit
        #: seconds per byte of a single NIC (one port)
        self.beta = 1.0 / bytes_per_unit
        # Validated for interface uniformity; a congestion-free model gives
        # the same numbers under every routing policy.
        self.policy = get_policy(policy)

    def phase_rates(self, flows: Sequence[Flow], *, exact: bool = False) -> np.ndarray:
        src = np.fromiter((f.src for f in flows), dtype=np.int64, count=len(flows))
        dst = np.fromiter((f.dst for f in flows), dtype=np.int64, count=len(flows))
        if (src == dst).any():
            raise ValueError("flows must have distinct endpoints")
        demand = np.fromiter((f.demand for f in flows), dtype=np.float64, count=len(flows))
        out_load = np.zeros(self.num_ranks)
        in_load = np.zeros(self.num_ranks)
        np.add.at(out_load, src, demand)
        np.add.at(in_load, dst, demand)
        # Each flow progresses at its demand-proportional share of the more
        # contended of its two endpoints.
        endpoint_load = np.maximum(out_load[src], in_load[dst])
        return demand * self.injection_capacity / np.maximum(endpoint_load, _EPS)

    def alltoall_fraction(
        self, *, num_phases: Optional[int] = None, seed: int = 0
    ) -> float:
        return 1.0

    # --------------------------------------------- alpha-beta algorithm models
    def allreduce_time(
        self, size: float, *, algorithm: str = "rings", p: Optional[int] = None
    ) -> float:
        """Completion time of one Section V-A2 allreduce algorithm."""
        from ..collectives.cost_models import allreduce_time

        return allreduce_time(algorithm, p or self.num_ranks, size, self.alpha, self.beta)

    def allreduce_bus_bandwidth(
        self, size: float, *, algorithm: str = "rings", p: Optional[int] = None
    ) -> float:
        """Bus bandwidth ``S / T`` (bytes/s) of one allreduce algorithm."""
        from ..collectives.cost_models import allreduce_bus_bandwidth

        return allreduce_bus_bandwidth(
            algorithm, p or self.num_ranks, size, self.alpha, self.beta
        )


# -------------------------------------------------------------------------- flow
@register_backend("flow")
class FlowBackend(NetworkModel):
    """Max-min fair flow-level fidelity (wraps :class:`FlowSimulator`).

    ``faults`` (a :class:`~repro.sim.faults.FaultSet`) switches the backend
    to the degraded routing view: flows route over surviving paths, and
    flows with no surviving path are *reported* (rate 0.0, counted in
    :attr:`disconnected_pairs`) instead of raising.  An empty fault set is
    bit-identical to the fault-free backend — it resolves to the same
    shared memoized route table.
    """

    def __init__(
        self,
        topo: Optional[Topology] = None,
        *,
        max_paths: int = 8,
        sim: Optional[FlowSimulator] = None,
        table: Optional[RouteTable] = None,
        policy: Union[str, RoutingPolicy, None] = None,
        mem_budget: Union[str, int, float, None] = None,
        faults: Optional[FaultSet] = None,
    ):
        if faults is not None and not faults.is_empty:
            if sim is not None or table is not None:
                raise ValueError(
                    "pass faults or a prebuilt simulator/table, not both"
                )
            if topo is None:
                raise ValueError("FlowBackend needs a topology to apply faults")
            table = degraded_route_table(
                topo, faults, max_paths=max_paths, policy=policy
            )
        if sim is None:
            if topo is None:
                raise ValueError("FlowBackend needs a topology or a simulator")
            sim = FlowSimulator(
                topo, max_paths=max_paths, table=table, policy=policy,
                mem_budget=mem_budget,
            )
        elif policy is not None and get_policy(policy).cache_key() != sim.policy.cache_key():
            raise ValueError(
                f"policy {get_policy(policy).name!r} conflicts with the "
                f"simulator's routing policy {sim.policy.name!r}"
            )
        super().__init__(sim.topo)
        self.sim = sim
        self.policy = sim.policy
        self.faults = faults if faults is not None else FaultSet.empty()
        #: running count of flow endpoints found disconnected by this backend
        self.disconnected_pairs = 0

    @property
    def table(self) -> RouteTable:
        return self.sim.table

    def _split(self, flows: Sequence[Flow]):
        """Indices of routable / disconnected flows under the fault view."""
        ranks = self.sim.ranks
        pairs = [(ranks[f.src], ranks[f.dst]) for f in flows]
        ok, dead = split_connected(self.sim.table, pairs)
        self.disconnected_pairs += len(dead)
        return ok, dead

    def phase_rates(self, flows: Sequence[Flow], *, exact: bool = False) -> np.ndarray:
        if self.faults.is_empty:
            if exact:
                return self.sim.maxmin_rates(flows).flow_rates
            return self.sim.symmetric_rate(flows).flow_rates
        ok, dead = self._split(flows)
        rates = np.zeros(len(flows))
        if ok:
            alive = [flows[i] for i in ok]
            solved = (
                self.sim.maxmin_rates(alive) if exact else self.sim.symmetric_rate(alive)
            )
            rates[ok] = solved.flow_rates
        return rates

    def alltoall_fraction(
        self, *, num_phases: Optional[int] = None, seed: int = 0
    ) -> float:
        if self.faults.is_empty:
            return self.sim.alltoall_bandwidth(num_phases=num_phases, seed=seed)
        from .traffic import alltoall_phases, sampled_alltoall_phases

        sim = self.sim
        p = len(sim.ranks)
        if num_phases is None or num_phases >= p - 1:
            phases = alltoall_phases(p)
        else:
            phases = sampled_alltoall_phases(p, num_phases, seed=seed)
        all_flows = [f for phase in phases for f in phase]
        ok, dead = self._split(all_flows)
        if not ok:
            return 0.0
        # Mirror of FlowSimulator.alltoall_bandwidth's aggregate model over
        # the surviving flows: the most loaded surviving link bounds the
        # achievable per-accelerator injection rate.
        asg = sim.assign([all_flows[i] for i in ok])
        weights = asg.subflow_weight[asg.entry_subflow]
        load = np.bincount(asg.entry_link, weights=weights, minlength=len(sim.capacity))
        load = load / len(phases)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(load > _EPS, sim.capacity / np.maximum(load, _EPS), np.inf)
        injection_rate = float(ratio.min())
        return min(injection_rate / self.injection_capacity, 1.0)

    def _permutation_sample(self, flows: Sequence[Flow]) -> np.ndarray:
        if self.faults.is_empty:
            return self.sim.permutation_bandwidths(flows)
        ok, dead = self._split(flows)
        if not ok:
            return np.zeros(self.num_ranks)
        # Disconnected destinations receive nothing; surviving flows get
        # their max-min share of the degraded network.
        return self.sim.permutation_bandwidths([flows[i] for i in ok])


# ------------------------------------------------------------------------ packet
@register_backend("packet")
class PacketBackend(NetworkModel):
    """Packet-level fidelity (drives :class:`PacketNetwork` runs).

    Each measurement instantiates a fresh event-driven simulation (packet
    state is single-shot), but all of them route through the shared
    :class:`RouteTable`.  ``message_size`` sets the bytes carried per unit
    of flow demand — large enough that steady-state throughput dominates
    ramp-up latency.
    """

    def __init__(
        self,
        topo: Topology,
        *,
        config: Optional[PacketSimConfig] = None,
        max_paths: int = DEFAULT_MAX_PATHS,
        message_size: float = 1 << 18,
        impl: str = "vectorized",
        policy: Union[str, RoutingPolicy, None] = None,
        faults: Optional[FaultSet] = None,
    ):
        super().__init__(topo)
        resolved = get_policy(policy if policy is not None else (config.policy if config else None))
        if config is None:
            config = PacketSimConfig(max_paths=max_paths, policy=resolved.name)
        elif policy is not None and resolved.name != config.policy:
            raise ValueError(
                f"policy {resolved.name!r} conflicts with config.policy "
                f"{config.policy!r}; set the policy in one place"
            )
        self.config = config
        self.policy = resolved
        self.message_size = float(message_size)
        self.faults = faults if faults is not None else FaultSet.empty()
        #: running count of flow endpoints found disconnected by this backend
        self.disconnected_pairs = 0
        # Built here (and passed to every network instance) so parameterized
        # policy *instances* are honoured even though the frozen config only
        # records the policy name.  Under faults the table routes over the
        # surviving subgraph only.
        self.table = degraded_route_table(
            topo, self.faults, max_paths=self.config.max_paths, policy=resolved
        )
        if impl not in ("vectorized", "reference"):
            raise ValueError(f"unknown packet impl {impl!r}")
        if impl == "reference" and not self.faults.is_empty:
            raise ValueError("the reference packet impl does not support faults")
        self.impl = impl

    def _network(self) -> PacketNetwork:
        if self.impl == "reference":
            from .reference import ReferencePacketNetwork

            return ReferencePacketNetwork(self.topo, config=self.config, table=self.table)
        return PacketNetwork(
            self.topo, config=self.config, table=self.table, faults=self.faults
        )

    def _split(self, flows: Sequence[Flow]):
        """Indices of routable / disconnected flows under the fault view."""
        ranks = list(self.topo.accelerators)
        ok, dead = split_connected(
            self.table, [(ranks[f.src], ranks[f.dst]) for f in flows]
        )
        self.disconnected_pairs += len(dead)
        return ok, dead

    def phase_rates(self, flows: Sequence[Flow], *, exact: bool = False) -> np.ndarray:
        ok, dead = self._split(flows)
        net = self._network()
        messages = {
            i: net.send(flows[i].src, flows[i].dst, self.message_size * flows[i].demand)
            for i in ok
        }
        net.run()
        # observed bandwidth is bytes/s; normalise to port units.
        return np.array(
            [
                messages[i].observed_bandwidth() / self.config.bytes_per_capacity_unit
                if i in messages
                else 0.0
                for i in range(len(flows))
            ]
        )

    def alltoall_fraction(
        self, *, num_phases: Optional[int] = None, seed: int = 0
    ) -> float:
        from .traffic import alltoall_phases, sampled_alltoall_phases

        p = self.num_ranks
        if num_phases is None or num_phases >= p - 1:
            phases = alltoall_phases(p)
        else:
            phases = sampled_alltoall_phases(p, num_phases, seed=seed)
        net = self._network()
        for phase in phases:
            if not self.faults.is_empty:
                ok, dead = self._split(phase)
                phase = [phase[i] for i in ok]
            net.send_flows(phase, self.message_size)
        result = net.run()
        if result.finish_time <= 0:
            return 0.0
        # Aggregate per-accelerator injection rate over the makespan.
        per_acc = result.aggregate_bandwidth() / p
        fraction = per_acc / (self.injection_capacity * self.config.bytes_per_capacity_unit)
        return min(fraction, 1.0)
