"""Routing policies: how candidate paths and split weights are chosen.

Section IV-C of the paper argues that HammingMesh's bandwidth claims rest on
*adaptive* routing; the reproduction historically hard-coded one implicit
policy (split evenly over minimal paths).  This module makes the policy a
first-class, name-registered object consumed by the shared
:class:`~repro.sim.routing.RouteTable` — and therefore by both simulators
and every backend:

* ``"minimal"`` — today's behaviour, bit-identical: the provider's minimal
  candidates with an even ``1/k`` split.
* ``"ecmp"`` — a static flow hash pins each pair onto exactly one of its
  minimal paths (no multipath spreading; models ECMP without adaptivity).
* ``"valiant"`` — randomized two-phase non-minimal routing: minimal to a
  per-pair-deterministic intermediate (a different board / group / switch,
  see :func:`~repro.sim.paths.valiant_intermediates`), then minimal to the
  destination.  Trades hop count for worst-case load balance.
* ``"ugal"`` — per-flow choice between the minimal and the Valiant candidate
  sets by estimated congestion.  The table stores both groups (the leading
  ``num_minimal`` paths are the minimal group); the flow simulator picks a
  group per flow from the link load its flow set would put on the minimal
  routes (see :meth:`FlowSimulator.assign`), while the packet simulator's
  injection-time queue scoring chooses among all candidates directly —
  which *is* UGAL's "adaptively pick minimal unless its queues are longer".

A policy is stateless and cheap to construct; equality of
:meth:`RoutingPolicy.cache_key` defines route-table memoization identity
(``route_table_for`` is keyed per ``(topology, policy, max_paths)``), and
the policy *name* is what enters experiment-engine content hashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from .._hash import mix64
from .paths import DEFAULT_MAX_PATHS, PathProvider, valiant_paths

__all__ = [
    "RouteSet",
    "RoutingPolicy",
    "MinimalPolicy",
    "EcmpPolicy",
    "ValiantPolicy",
    "UgalPolicy",
    "POLICIES",
    "register_policy",
    "get_policy",
    "available_policies",
]


@dataclass(frozen=True)
class RouteSet:
    """Candidate paths of one ``(src, dst)`` pair under a policy.

    ``paths`` are lists of directed link indices; ``weights`` (one per path,
    summing to 1 over the pair) are the static demand split the flow
    simulator applies; the leading ``num_minimal`` paths form the minimal
    group (the rest are non-minimal alternates — only UGAL stores both).
    """

    paths: List[List[int]]
    weights: List[float]
    num_minimal: int


class RoutingPolicy:
    """Base class of the name-registered routing policies."""

    #: registry name (set by :func:`register_policy`)
    name: str = ""
    #: True when the flow simulator should choose between the minimal and the
    #: non-minimal group per flow by estimated congestion (UGAL)
    selects_group: bool = False
    #: True when a pair's routes can only change if one of its currently
    #: used links dies.  Policies whose choice depends on the candidate
    #: set's *size* (ECMP's hash modulus, Valiant's capped detour
    #: composition) break this: removing an unused candidate re-routes the
    #: pair, so warm fault-event splicing cannot prove parity and must
    #: re-solve cold.
    local_reroutes: bool = True

    def cache_key(self) -> Tuple:
        """Memoization identity of the policy (shared-table key component)."""
        return (self.name,)

    def routes(
        self, provider: PathProvider, src: int, dst: int, max_paths: int
    ) -> RouteSet:
        """Candidate paths + split weights for one pair."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} ({self.name!r})>"


# ---------------------------------------------------------------------- registry
POLICIES: Dict[str, Type[RoutingPolicy]] = {}


def register_policy(name: str):
    """Register a :class:`RoutingPolicy` subclass under ``name``."""

    def decorator(cls: Type[RoutingPolicy]) -> Type[RoutingPolicy]:
        if name in POLICIES:
            raise ValueError(f"routing policy {name!r} registered twice")
        cls.name = name
        POLICIES[name] = cls
        return cls

    return decorator


def available_policies() -> List[str]:
    """Names of the registered routing policies."""
    return sorted(POLICIES)


def get_policy(policy: Union[str, RoutingPolicy, None]) -> RoutingPolicy:
    """Resolve a policy by name (``None`` means ``"minimal"``).

    Instances pass through unchanged, so parameterized policies (e.g.
    ``ValiantPolicy(seed=7)``) can be used wherever a name is accepted.
    """
    if policy is None:
        return _MINIMAL
    if isinstance(policy, RoutingPolicy):
        return policy
    try:
        cls = POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {policy!r}; available: {available_policies()}"
        ) from None
    return cls()


# ------------------------------------------------------------------- minimal
@register_policy("minimal")
class MinimalPolicy(RoutingPolicy):
    """Even split over the provider's minimal candidates (the historical
    behaviour; routes and weights are bit-identical to the pre-policy code)."""

    def routes(
        self, provider: PathProvider, src: int, dst: int, max_paths: int
    ) -> RouteSet:
        paths = provider.paths(src, dst, max_paths=max_paths)
        if not paths:
            return RouteSet([], [], 0)
        w = 1.0 / len(paths)
        return RouteSet(paths, [w] * len(paths), len(paths))


_MINIMAL = MinimalPolicy()


# ---------------------------------------------------------------------- ecmp
@register_policy("ecmp")
class EcmpPolicy(RoutingPolicy):
    """Static hash onto exactly one minimal path (ECMP without adaptivity).

    The chosen path is a pure function of ``(src, dst, seed)``; all traffic
    of the pair serialises onto it.  This models the oblivious single-path
    baseline of the paper's minimal-vs-adaptive discussion.
    """

    local_reroutes = False  # the hash modulus shifts when a candidate dies

    def __init__(self, seed: int = 0):
        self.seed = seed

    def cache_key(self) -> Tuple:
        return (self.name, self.seed)

    def routes(
        self, provider: PathProvider, src: int, dst: int, max_paths: int
    ) -> RouteSet:
        minimal = provider.paths(src, dst, max_paths=max_paths)
        if not minimal:
            return RouteSet([], [], 0)
        idx = mix64(mix64(src * 1_000_003 + dst) ^ mix64(0xEC3F + self.seed)) % len(minimal)
        return RouteSet([minimal[idx]], [1.0], 1)


# -------------------------------------------------------------------- valiant
@register_policy("valiant")
class ValiantPolicy(RoutingPolicy):
    """Randomized two-phase non-minimal routing (Valiant load balancing).

    Every candidate detours through a per-pair-deterministic intermediate;
    traffic splits evenly over the candidates.  Falls back to the minimal
    candidates on degenerate topologies with no usable intermediate.
    """

    local_reroutes = False  # capped detour composition shifts under shrink

    def __init__(self, seed: int = 0):
        self.seed = seed

    def cache_key(self) -> Tuple:
        return (self.name, self.seed)

    def routes(
        self, provider: PathProvider, src: int, dst: int, max_paths: int
    ) -> RouteSet:
        paths = valiant_paths(provider, src, dst, max_paths=max_paths, seed=self.seed)
        if not paths:
            return _MINIMAL.routes(provider, src, dst, max_paths)
        w = 1.0 / len(paths)
        return RouteSet(paths, [w] * len(paths), 0)


# ----------------------------------------------------------------------- ugal
@register_policy("ugal")
class UgalPolicy(RoutingPolicy):
    """Universal globally-adaptive routing: minimal *or* Valiant per flow.

    The candidate budget is split between the two groups (minimal first), so
    every pair stores at most ``max_paths`` paths like any other policy.
    The static table weights split evenly over the minimal group — the
    congestion-dependent group choice happens where congestion is known:
    per flow set in :meth:`FlowSimulator.assign` (``selects_group``), and
    per packet in the packet simulator's injection-time queue scoring.
    With ``max_paths=1`` there is no room for a Valiant alternate and the
    policy degenerates to minimal routing.
    """

    selects_group = True

    def __init__(self, seed: int = 0):
        self.seed = seed

    def cache_key(self) -> Tuple:
        return (self.name, self.seed)

    def routes(
        self, provider: PathProvider, src: int, dst: int, max_paths: int
    ) -> RouteSet:
        minimal_budget = max(1, (max_paths + 1) // 2)
        minimal = provider.paths(src, dst, max_paths=minimal_budget)
        if not minimal:
            return RouteSet([], [], 0)
        budget = max_paths - len(minimal)
        alternates = (
            valiant_paths(
                provider, src, dst, max_paths=budget, seed=self.seed, exclude=minimal
            )
            if budget > 0
            else []
        )
        w = 1.0 / len(minimal)
        return RouteSet(
            minimal + alternates,
            [w] * len(minimal) + [0.0] * len(alternates),
            len(minimal),
        )
