"""Parameter objects for HammingMesh topologies.

A 2D HammingMesh is parameterised by the board dimensions ``(a, b)`` and the
global dimensions ``(x, y)`` (Section III of the paper): it connects
``a * b * x * y`` accelerators arranged as an ``x`` x ``y`` grid of ``a`` x
``b`` boards.  The global row and column networks are built from 64-port
switches (a single switch when it suffices, a fat tree otherwise) and can be
tapered to trade global bandwidth for cost (Section III-F).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = ["HxMeshParams", "hx1mesh", "hx2mesh", "hx4mesh"]


@dataclass(frozen=True)
class HxMeshParams:
    """Parameters of an ``x`` x ``y`` HxMesh with ``a`` x ``b`` boards.

    Attributes
    ----------
    a, b:
        Board dimensions: ``a`` accelerator columns (East-West direction) and
        ``b`` accelerator rows (North-South direction).
    x, y:
        Global dimensions: ``x`` board columns and ``y`` board rows.
    radix:
        Port count of the global switches (64 throughout the paper).
    global_taper:
        Uplink/downlink ratio of the global fat trees; 1.0 is full bandwidth,
        0.5 is the 2:1 tapering discussed in Section III-F.  Ignored when a
        dimension fits in a single switch.
    planes:
        Number of physical network planes (4 in the paper's case study).  The
        simulators model a single plane with four ports; the cost model
        multiplies by ``planes``.
    link_capacity:
        Capacity of one port in normalised units (1.0 == 400 Gb/s).
    """

    a: int
    b: int
    x: int
    y: int
    radix: int = 64
    global_taper: float = 1.0
    planes: int = 4
    link_capacity: float = 1.0

    def __post_init__(self) -> None:
        if self.a < 1 or self.b < 1:
            raise ValueError(f"board dimensions must be >= 1, got {self.a}x{self.b}")
        if self.x < 1 or self.y < 1:
            raise ValueError(f"global dimensions must be >= 1, got {self.x}x{self.y}")
        if self.x * self.y < 2:
            raise ValueError("an HxMesh needs at least two boards")
        if self.radix < 4:
            raise ValueError("switch radix must be at least 4")
        if not (0.0 < self.global_taper <= 1.0):
            raise ValueError(f"global_taper must be in (0, 1], got {self.global_taper}")
        if self.planes < 1:
            raise ValueError("planes must be >= 1")
        if self.link_capacity <= 0:
            raise ValueError("link_capacity must be positive")

    # ------------------------------------------------------------------ sizes
    @property
    def board_size(self) -> int:
        """Accelerators per board."""
        return self.a * self.b

    @property
    def num_boards(self) -> int:
        return self.x * self.y

    @property
    def num_accelerators(self) -> int:
        return self.a * self.b * self.x * self.y

    @property
    def row_ports(self) -> int:
        """Ports attached to one global row network (per on-board row)."""
        return 2 * self.x

    @property
    def col_ports(self) -> int:
        """Ports attached to one global column network (per on-board column)."""
        return 2 * self.y

    @property
    def injection_capacity(self) -> float:
        """Per-accelerator injection bandwidth of one plane (4 ports)."""
        return 4.0 * self.link_capacity

    @property
    def name(self) -> str:
        """Conventional name, e.g. ``"16x16 Hx2Mesh"`` for square boards."""
        if self.a == self.b:
            return f"{self.x}x{self.y} Hx{self.a}Mesh"
        return f"{self.x}x{self.y} H{self.a}x{self.b}Mesh"

    def with_taper(self, taper: float) -> "HxMeshParams":
        """Copy of these parameters with a different global tapering."""
        return replace(self, global_taper=taper)

    def board_of(self, rank: int) -> Tuple[int, int]:
        """Board (row, col) coordinate of accelerator ``rank`` in row-major
        accelerator ordering (boards in row-major order, accelerators
        row-major within each board)."""
        if not (0 <= rank < self.num_accelerators):
            raise ValueError(f"rank {rank} out of range")
        board = rank // self.board_size
        return divmod(board, self.x)


def hx1mesh(x: int, y: int, **kwargs) -> HxMeshParams:
    """Parameters of an Hx1Mesh (1x1 boards) == 2D HyperX."""
    return HxMeshParams(a=1, b=1, x=x, y=y, **kwargs)


def hx2mesh(x: int, y: int, **kwargs) -> HxMeshParams:
    """Parameters of an Hx2Mesh (2x2 boards)."""
    return HxMeshParams(a=2, b=2, x=x, y=y, **kwargs)


def hx4mesh(x: int, y: int, **kwargs) -> HxMeshParams:
    """Parameters of an Hx4Mesh (4x4 boards)."""
    return HxMeshParams(a=4, b=4, x=x, y=y, **kwargs)
