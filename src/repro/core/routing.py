"""HammingMesh routing (Section IV-C of the paper).

Packets on an HxMesh are routed adaptively along minimal paths:

* **Same board** -- adaptive dimension-ordered routing on the board's 2D
  mesh (packets may also wrap through the row/column switches like on a
  torus; this implementation enumerates the on-board minimal paths, which
  are never longer than the wrap alternative for the board sizes used in
  the paper).
* **Same global row / column** -- route inside the source board to the East
  or West (North or South) edge, cross the row (column) network using
  up/down routing, then route inside the destination board.
* **Different row and column** -- traverse an intermediate board that shares
  the row of the source and the column of the destination (or vice versa),
  crossing two global networks.

The router returns *candidate minimal paths* as lists of directed link
indices; the flow-level simulator splits traffic evenly across them
(approximating packet-level adaptive routing) and the packet-level simulator
picks among the next hops adaptively.

Deadlock freedom follows the paper's argument: north-last turn restriction
inside boards, up/down routing inside the trees, and a virtual-channel
increment on every board-to-board transition (at most three VCs since a
packet crosses at most two global trees).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from .._hash import mix64
from ..topology.base import Topology, TopologyError
from ..topology.board import BoardHandle, EAST, NORTH, SOUTH, WEST
from ..topology.fattree import GlobalNetwork

__all__ = ["HxMeshRouter", "board_mesh_path", "virtual_channel_of", "MAX_VIRTUAL_CHANNELS"]

#: A packet crosses at most two global trees, so three virtual channels
#: suffice for deadlock freedom (Section IV-C3).
MAX_VIRTUAL_CHANNELS = 3


def board_mesh_path(
    handle: BoardHandle,
    src_pos: Tuple[int, int],
    dst_pos: Tuple[int, int],
    order: str = "xy",
) -> List[int]:
    """Dimension-ordered path on a board mesh between two on-board positions.

    ``order`` is ``"xy"`` (East/West first, then North/South) or ``"yx"``.
    Returns the list of directed on-board link indices; empty when source and
    destination coincide.
    """
    sr, sc = src_pos
    dr, dc = dst_pos
    path: List[int] = []

    def walk_cols(r: int, c0: int, c1: int) -> int:
        nonlocal path
        step = 1 if c1 > c0 else -1
        direction = EAST if step > 0 else WEST
        c = c0
        while c != c1:
            node = handle.node_at(r, c)
            path.append(handle.mesh_link(node, direction))
            c += step
        return c

    def walk_rows(c: int, r0: int, r1: int) -> int:
        nonlocal path
        step = 1 if r1 > r0 else -1
        direction = SOUTH if step > 0 else NORTH
        r = r0
        while r != r1:
            node = handle.node_at(r, c)
            path.append(handle.mesh_link(node, direction))
            r += step
        return r

    if order == "xy":
        walk_cols(sr, sc, dc)
        walk_rows(dc, sr, dr)
    elif order == "yx":
        walk_rows(sc, sr, dr)
        walk_cols(dr, sc, dc)
    else:
        raise ValueError(f"unknown order {order!r}")
    return path


class HxMeshRouter:
    """Minimal adaptive routing on a HammingMesh topology.

    The router is constructed once per topology and caches the structural
    metadata produced by the builder.  :meth:`paths` is the main entry point
    used by the simulators.
    """

    def __init__(self, topo: Topology, *, minimal_slack: int = 0):
        if topo.meta.get("family") != "hammingmesh":
            raise TopologyError("HxMeshRouter requires a HammingMesh topology")
        self.topo = topo
        self.params = topo.meta["params"]
        self.boards: Dict[Tuple[int, int], BoardHandle] = topo.meta["boards"]
        self.row_networks: Dict[Tuple[int, int], GlobalNetwork] = topo.meta["row_networks"]
        self.col_networks: Dict[Tuple[int, int], GlobalNetwork] = topo.meta["col_networks"]
        self.coord_of: Dict[int, Tuple[int, int, int, int]] = topo.meta["coord_of"]
        #: Extra hops (beyond the shortest candidate) a path may have and
        #: still be considered by adaptive routing.  0 = strictly minimal.
        self.minimal_slack = minimal_slack

    # --------------------------------------------------------------- segments
    def _board_paths(
        self, board: BoardHandle, src_pos: Tuple[int, int], dst_pos: Tuple[int, int]
    ) -> List[List[int]]:
        """Up to two DOR paths (xy and yx) between two positions on a board."""
        if src_pos == dst_pos:
            return [[]]
        p1 = board_mesh_path(board, src_pos, dst_pos, "xy")
        p2 = board_mesh_path(board, src_pos, dst_pos, "yx")
        return [p1] if p1 == p2 else [p1, p2]

    def _row_cross(
        self,
        gr: int,
        br: int,
        src_board: BoardHandle,
        src_pos: Tuple[int, int],
        dst_board: BoardHandle,
        dst_pos: Tuple[int, int],
        max_tree_paths: int = 2,
    ) -> List[List[int]]:
        """Paths from ``src_pos`` on ``src_board`` to ``dst_pos`` on
        ``dst_board`` that cross the row network of (``gr``, ``br``)."""
        a = self.params.a
        network = self.row_networks[(gr, br)]
        out: List[List[int]] = []
        exit_cols = {0, a - 1}
        entry_cols = {0, a - 1}
        for exit_col, entry_col in itertools.product(exit_cols, entry_cols):
            exit_node = src_board.node_at(br, exit_col)
            entry_node = dst_board.node_at(br, entry_col)
            tree_paths = network.paths(exit_node, entry_node, max_paths=max_tree_paths)
            if not tree_paths:
                continue
            for head in self._board_paths(src_board, src_pos, (br, exit_col)):
                for tail in self._board_paths(dst_board, (br, entry_col), dst_pos):
                    for mid in tree_paths:
                        out.append(head + mid + tail)
        return out

    def _col_cross(
        self,
        gc: int,
        bc: int,
        src_board: BoardHandle,
        src_pos: Tuple[int, int],
        dst_board: BoardHandle,
        dst_pos: Tuple[int, int],
        max_tree_paths: int = 2,
    ) -> List[List[int]]:
        """Paths crossing the column network of (``gc``, ``bc``)."""
        b = self.params.b
        network = self.col_networks[(gc, bc)]
        out: List[List[int]] = []
        for exit_row, entry_row in itertools.product({0, b - 1}, {0, b - 1}):
            exit_node = src_board.node_at(exit_row, bc)
            entry_node = dst_board.node_at(entry_row, bc)
            tree_paths = network.paths(exit_node, entry_node, max_paths=max_tree_paths)
            if not tree_paths:
                continue
            for head in self._board_paths(src_board, src_pos, (exit_row, bc)):
                for tail in self._board_paths(dst_board, (entry_row, bc), dst_pos):
                    for mid in tree_paths:
                        out.append(head + mid + tail)
        return out

    # ------------------------------------------------------------------ paths
    def paths(self, src: int, dst: int, max_paths: int = 4) -> List[List[int]]:
        """Candidate minimal paths (lists of directed link indices)."""
        if src == dst:
            return [[]]
        try:
            sgr, sgc, sbr, sbc = self.coord_of[src]
            dgr, dgc, dbr, dbc = self.coord_of[dst]
        except KeyError:
            raise TopologyError("src/dst must be accelerators of the HxMesh") from None
        src_board = self.boards[(sgr, sgc)]
        dst_board = self.boards[(dgr, dgc)]

        # Candidate paths are collected per "routing class" (e.g. row-first
        # vs column-first, via the source's or the destination's on-board
        # row) and then interleaved round-robin, so that the even multipath
        # split of the flow-level simulator balances load across the classes
        # the way packet-level adaptive routing would.  A flow-dependent hash
        # rotates both the class order and the order within each class, so
        # that capping at ``max_paths`` does not systematically favour one
        # class or one board edge over another across many flows.
        key = mix64(src * 1_000_003 + dst)
        classes: List[List[List[int]]] = []
        if (sgr, sgc) == (dgr, dgc):
            classes.append(self._board_paths(src_board, (sbr, sbc), (dbr, dbc)))
        elif sgr == dgr:
            # Same global row: cross one row network.  Candidate on-board
            # rows: the source's and the destination's.
            for br in sorted({sbr, dbr}):
                classes.append(
                    self._row_cross(sgr, br, src_board, (sbr, sbc), dst_board, (dbr, dbc))
                )
        elif sgc == dgc:
            for bc in sorted({sbc, dbc}):
                classes.append(
                    self._col_cross(sgc, bc, src_board, (sbr, sbc), dst_board, (dbr, dbc))
                )
        else:
            # Different row and column: route through an intermediate board.
            # Option 1: row first to board (sgr, dgc), then column; candidate
            # crossing rows are the source's and the destination's.
            inter1 = self.boards[(sgr, dgc)]
            for br in sorted({sbr, dbr}):
                option: List[List[int]] = []
                heads = self._row_cross(sgr, br, src_board, (sbr, sbc), inter1, (br, dbc))
                tails = self._col_cross(dgc, dbc, inter1, (br, dbc), dst_board, (dbr, dbc))
                # Sort by length with a flow-dependent tie-break: equal-length
                # alternatives (e.g. leaving via the East vs the West edge)
                # must not be resolved the same way for every flow, or the
                # truncation below funnels all transit through one board edge.
                heads.sort(key=lambda q: (len(q), mix64(key ^ hash(tuple(q[:1])))))
                tails.sort(key=lambda q: (len(q), mix64(key ^ hash(tuple(q[-1:])))))
                for h, t in itertools.product(heads[:2], tails[:2]):
                    option.append(h + t)
                classes.append(option)
            # Option 2: column first to board (dgr, sgc), then row.
            inter2 = self.boards[(dgr, sgc)]
            for bc in sorted({sbc, dbc}):
                option = []
                heads = self._col_cross(sgc, bc, src_board, (sbr, sbc), inter2, (dbr, bc))
                tails = self._row_cross(dgr, dbr, inter2, (dbr, bc), dst_board, (dbr, dbc))
                heads.sort(key=lambda q: (len(q), mix64(key ^ hash(tuple(q[:1])))))
                tails.sort(key=lambda q: (len(q), mix64(key ^ hash(tuple(q[-1:])))))
                for h, t in itertools.product(heads[:2], tails[:2]):
                    option.append(h + t)
                classes.append(option)

        # Sort within each class by length (equal lengths broken by a
        # flow-dependent hash so aggregate load spreads evenly over board
        # edges), rotate the class order per flow, and interleave.  Only
        # near-minimal paths survive (within ``minimal_slack`` hops of the
        # shortest candidate), matching Section IV-C's routing "adaptively
        # along all shortest paths".
        prepared: List[List[List[int]]] = []
        for i, cls in enumerate(classes):
            if not cls:
                continue
            cls.sort(
                key=lambda q: (len(q), mix64(key ^ (i << 20) ^ (q[0] if q else 0)))
            )
            prepared.append(cls)
        if prepared:
            rot = key % len(prepared)
            prepared = prepared[rot:] + prepared[:rot]
        candidates: List[List[int]] = []
        for picks in itertools.zip_longest(*prepared):
            for path in picks:
                if path is not None:
                    candidates.append(path)
        if not candidates:
            raise TopologyError(f"no path found between accelerators {src} and {dst}")
        unique: Dict[Tuple[int, ...], List[int]] = {}
        for path in candidates:
            unique.setdefault(tuple(path), path)
        deduped = list(unique.values())
        shortest = min(len(p) for p in deduped)
        minimal = [p for p in deduped if len(p) <= shortest + self.minimal_slack]
        return minimal[:max_paths]

    # ----------------------------------------------------------- VC assignment
    def virtual_channels(self, path: Sequence[int]) -> List[int]:
        """Virtual channel index for every hop of ``path``.

        The VC is incremented each time the packet enters a new global
        network (i.e. when it leaves a board for a tree), which bounds the
        number of required VCs by three (Section IV-C3).
        """
        return virtual_channel_of(self.topo, path)


def virtual_channel_of(topo: Topology, path: Sequence[int]) -> List[int]:
    """Per-hop virtual channel indices for a path on any topology.

    The VC starts at 0 and increments whenever the packet transitions from
    an accelerator onto a switch (injecting into a global network).  This
    matches the HxMesh deadlock-avoidance rule and is a no-op (single
    increment) for the switched baseline topologies.
    """
    vc = 0
    out: List[int] = []
    prev_on_switch = False
    for li in path:
        link = topo.link(li)
        entering_switch = topo.is_switch(link.dst)
        leaving_acc = topo.is_accelerator(link.src)
        if entering_switch and leaving_acc:
            vc = min(vc + 1, MAX_VIRTUAL_CHANNELS - 1)
        out.append(vc)
        prev_on_switch = entering_switch
    return out
