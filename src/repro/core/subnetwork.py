"""Virtual sub-HxMeshes (Section III-E of the paper).

Any set of boards of an HxMesh in which all boards that share a physical row
have the same sequence of column coordinates forms a *virtual sub-HxMesh*: a
subnetwork with the same properties as a physical HxMesh of that size.  This
is the key flexibility advantage over torus networks -- jobs can be placed on
non-consecutive boards, which keeps utilization high in the presence of
failed boards (Figure 5).

This module provides the :class:`VirtualSubMesh` abstraction, validation of
the sub-mesh property, and the row-intersection search primitive the greedy
allocator (Section IV-A) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["VirtualSubMesh", "is_valid_submesh", "find_submesh_rows"]

Coord = Tuple[int, int]


@dataclass(frozen=True)
class VirtualSubMesh:
    """A u x v virtual sub-HxMesh.

    Attributes
    ----------
    rows:
        Physical row indices, in virtual-row order.
    cols:
        Physical column indices, in virtual-column order.
    """

    rows: Tuple[int, ...]
    cols: Tuple[int, ...]

    @property
    def shape(self) -> Tuple[int, int]:
        """(u, v): number of board rows and columns of the virtual mesh."""
        return (len(self.rows), len(self.cols))

    @property
    def num_boards(self) -> int:
        return len(self.rows) * len(self.cols)

    def boards(self) -> List[Coord]:
        """Physical board coordinates covered by this sub-mesh."""
        return [(r, c) for r in self.rows for c in self.cols]

    def physical(self, vr: int, vc: int) -> Coord:
        """Physical board coordinate of virtual position (``vr``, ``vc``)."""
        return (self.rows[vr], self.cols[vc])

    def virtual(self, coord: Coord) -> Tuple[int, int]:
        """Virtual position of a physical board coordinate."""
        try:
            return (self.rows.index(coord[0]), self.cols.index(coord[1]))
        except ValueError:
            raise KeyError(f"board {coord} is not part of this sub-mesh") from None

    def __contains__(self, coord: object) -> bool:
        return (
            isinstance(coord, tuple)
            and len(coord) == 2
            and coord[0] in self.rows
            and coord[1] in self.cols
        )

    def transposed(self) -> "VirtualSubMesh":
        """The v x u sub-mesh obtained by swapping the roles of rows/columns.

        Note this is a *logical* transpose used when a job accepts a
        transposed layout; physically the same boards are used.
        """
        return VirtualSubMesh(rows=self.rows, cols=self.cols)


def is_valid_submesh(boards: Iterable[Coord]) -> bool:
    """Check the sub-mesh property for an arbitrary set of boards.

    The set is a valid virtual sub-HxMesh iff it equals the Cartesian
    product of its row set and column set, i.e. every board (r, c) with r in
    the used rows and c in the used columns is present ("all boards that are
    in the same row have the same sequence of column coordinates").
    """
    board_set = set(boards)
    if not board_set:
        return False
    rows = {r for r, _ in board_set}
    cols_by_row: Dict[int, Set[int]] = {}
    for r, c in board_set:
        cols_by_row.setdefault(r, set()).add(c)
    first_cols = next(iter(cols_by_row.values()))
    return all(cols == first_cols for cols in cols_by_row.values())


def find_submesh_rows(
    row_available: Sequence[FrozenSet[int]],
    u: int,
    v: int,
    *,
    try_all_starts: bool = False,
) -> Optional[VirtualSubMesh]:
    """Greedy search for a u x v sub-mesh (Section IV-A).

    ``row_available[r]`` is the set of column indices available in physical
    row ``r``.  The algorithm:

    1. select the first row with at least ``v`` available columns,
    2. repeatedly add another row whose intersection with the running
       column intersection still has at least ``v`` columns,
    3. stop after ``u`` rows or fail.

    With ``try_all_starts`` the search is restarted from every feasible
    starting row (a cheap robustness improvement over the paper's
    first-fit; both behave identically on most traces).
    Returns a :class:`VirtualSubMesh` with exactly ``u`` rows and ``v``
    columns (the lexicographically smallest columns of the final
    intersection), or ``None`` when no allocation is found.
    """
    if u < 1 or v < 1:
        raise ValueError("sub-mesh dimensions must be positive")
    num_rows = len(row_available)
    if u > num_rows:
        return None

    starts = range(num_rows) if try_all_starts else range(num_rows)
    tried_first_fit = False
    for start in starts:
        if len(row_available[start]) < v:
            continue
        selected = [start]
        intersection = set(row_available[start])
        for r in range(num_rows):
            if len(selected) >= u:
                break
            if r == start or len(row_available[r]) < v:
                continue
            candidate = intersection & row_available[r]
            if len(candidate) >= v:
                selected.append(r)
                intersection = candidate
        if len(selected) >= u:
            rows = tuple(sorted(selected[:u]))
            cols = tuple(sorted(intersection)[:v])
            return VirtualSubMesh(rows=rows, cols=cols)
        tried_first_fit = True
        if not try_all_starts and tried_first_fit:
            return None
    return None
