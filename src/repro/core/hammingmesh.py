"""HammingMesh topology construction (the paper's primary contribution).

A HammingMesh (HxMesh) connects an ``x`` x ``y`` grid of ``a`` x ``b``
accelerator boards: accelerators on a board form an inexpensive PCB 2D mesh,
and the board edges are connected row-wise and column-wise by global
switched networks (a single 64-port switch per row/column when it suffices,
otherwise a fat tree).  Every accelerator forwards packets within a plane
like a small 4x4 switch, which gives each plane a structure of orthogonal,
dimension-wise fully-connected cycles (Section III, Figure 3).

The builder produces a :class:`~repro.topology.base.Topology` whose ``meta``
dictionary carries the structural handles (boards, row/column networks,
coordinate lookups) that the HxMesh routing engine, the allocation stack and
the collectives mapper rely on.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..topology.base import CableClass, Topology, TopologyError, register_topology
from ..topology.board import BoardHandle, add_board
from ..topology.fattree import GlobalNetwork
from .params import HxMeshParams

__all__ = ["build_hammingmesh", "build_hammingmesh_params", "accelerator_coordinates"]


def build_hammingmesh_params(params: HxMeshParams) -> Topology:
    """Build a HammingMesh from an :class:`HxMeshParams` object."""
    a, b, x, y = params.a, params.b, params.x, params.y
    cap = params.link_capacity
    topo = Topology(params.name.replace(" ", "-"))

    # ---------------------------------------------------------------- boards
    boards: Dict[Tuple[int, int], BoardHandle] = {}
    for gr in range(y):
        for gc in range(x):
            boards[(gr, gc)] = add_board(topo, (gr, gc), a, b, capacity=cap)

    # ------------------------------------------------------- global networks
    # One row network per (board row gr, on-board row br): it connects the
    # West and East edge ports of that on-board row across all x boards of
    # the global row.  Analogously one column network per (board column gc,
    # on-board column bc).  Access links use DAC in the row dimension and
    # AoC in the column dimension, inter-switch links are always AoC
    # (Section III-D).
    row_networks: Dict[Tuple[int, int], GlobalNetwork] = {}
    col_networks: Dict[Tuple[int, int], GlobalNetwork] = {}

    if x > 1:
        for gr in range(y):
            for br in range(b):
                ports: List[int] = []
                for gc in range(x):
                    handle = boards[(gr, gc)]
                    ports.append(handle.node_at(br, 0))        # West port
                    ports.append(handle.node_at(br, a - 1))    # East port
                row_networks[(gr, br)] = GlobalNetwork(
                    topo,
                    ports,
                    radix=params.radix,
                    taper=params.global_taper,
                    access_capacity=cap,
                    trunk_capacity=cap,
                    access_cable=CableClass.DAC,
                    trunk_cable=CableClass.AOC,
                    tag=f"row{gr}.{br}",
                )
    if y > 1:
        for gc in range(x):
            for bc in range(a):
                ports = []
                for gr in range(y):
                    handle = boards[(gr, gc)]
                    ports.append(handle.node_at(0, bc))         # North port
                    ports.append(handle.node_at(b - 1, bc))     # South port
                col_networks[(gc, bc)] = GlobalNetwork(
                    topo,
                    ports,
                    radix=params.radix,
                    taper=params.global_taper,
                    access_capacity=cap,
                    trunk_capacity=cap,
                    access_cable=CableClass.AOC,
                    trunk_cable=CableClass.AOC,
                    tag=f"col{gc}.{bc}",
                )

    if not row_networks and not col_networks:
        raise TopologyError("HxMesh with a single board has no global network")

    coord_of: Dict[int, Tuple[int, int, int, int]] = {}
    for (gr, gc), handle in boards.items():
        for br in range(b):
            for bc in range(a):
                coord_of[handle.node_at(br, bc)] = (gr, gc, br, bc)

    topo.meta.update(
        family="hammingmesh",
        params=params,
        boards=boards,
        row_networks=row_networks,
        col_networks=col_networks,
        coord_of=coord_of,
        plane_count=params.planes,
        injection_capacity=params.injection_capacity,
    )
    topo.validate()
    return topo


@register_topology("hammingmesh")
def build_hammingmesh(
    a: int,
    b: int,
    x: int,
    y: int,
    *,
    radix: int = 64,
    global_taper: float = 1.0,
    planes: int = 4,
    link_capacity: float = 1.0,
) -> Topology:
    """Build an ``x`` x ``y`` HxMesh with ``a`` x ``b`` boards.

    Convenience wrapper around :func:`build_hammingmesh_params`; see
    :class:`~repro.core.params.HxMeshParams` for parameter semantics.
    """
    params = HxMeshParams(
        a=a, b=b, x=x, y=y, radix=radix, global_taper=global_taper,
        planes=planes, link_capacity=link_capacity,
    )
    return build_hammingmesh_params(params)


def accelerator_coordinates(topo: Topology, node: int) -> Tuple[int, int, int, int]:
    """Return ``(board_row, board_col, on_board_row, on_board_col)`` of an
    accelerator node in a HammingMesh topology."""
    if topo.meta.get("family") != "hammingmesh":
        raise TopologyError("not a HammingMesh topology")
    try:
        return topo.meta["coord_of"][node]
    except KeyError:
        raise TopologyError(f"node {node} is not an accelerator of this HxMesh") from None
