"""HammingMesh core: topology parameters, construction, routing, sub-meshes.

This package contains the paper's primary contribution: the HammingMesh
topology family (Section III), its adaptive minimal routing (Section IV-C),
and virtual sub-HxMesh extraction (Section III-E) which underpins flexible
job allocation and fault tolerance.
"""

from .hammingmesh import accelerator_coordinates, build_hammingmesh, build_hammingmesh_params
from .params import HxMeshParams, hx1mesh, hx2mesh, hx4mesh
from .routing import MAX_VIRTUAL_CHANNELS, HxMeshRouter, board_mesh_path, virtual_channel_of
from .subnetwork import VirtualSubMesh, find_submesh_rows, is_valid_submesh

__all__ = [
    "HxMeshParams",
    "hx1mesh",
    "hx2mesh",
    "hx4mesh",
    "build_hammingmesh",
    "build_hammingmesh_params",
    "accelerator_coordinates",
    "HxMeshRouter",
    "board_mesh_path",
    "virtual_channel_of",
    "MAX_VIRTUAL_CHANNELS",
    "VirtualSubMesh",
    "find_submesh_rows",
    "is_valid_submesh",
]
