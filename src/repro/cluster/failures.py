"""Board failure/repair process (generalizing the Figure-10 experiment).

The paper's Figure 10 fails a fixed number of boards once and re-allocates
a static mix.  Here failures are a *process*: every working board fails
independently with rate ``1 / MTBF``, so the cluster-wide failure rate is
``working_boards / MTBF`` (exponential superposition), and each failed
board returns to service after an exponential repair time with mean MTTR.

When a failure lands on an allocated board the running job is interrupted;
the eviction policy decides what happens next:

* ``"requeue"`` -- the job re-enters the queue head at its full board count
  and waits for capacity (checkpoint/restart keeps finished work by
  default).
* ``"shrink"`` -- the job additionally halves its board request (down to
  ``min_boards``) so it can restart sooner on the fragmented cluster; the
  work balance is size-independent, so running smaller takes
  proportionally longer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FailureModel", "EVICTION_POLICIES"]

EVICTION_POLICIES = ("requeue", "shrink")

_SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class FailureModel:
    """Per-board MTBF/MTTR parameters and the eviction policy."""

    mtbf_hours: float            # mean time between failures of ONE board
    mttr_hours: float = 2.0      # mean repair time of a failed board
    eviction: str = "requeue"
    #: credit work finished before the failure (checkpoint/restart)
    checkpoint: bool = True
    #: floor of the shrink policy (boards)
    min_boards: int = 1

    def __post_init__(self) -> None:
        if self.mtbf_hours <= 0 or self.mttr_hours <= 0:
            raise ValueError("MTBF and MTTR must be positive")
        if self.eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {self.eviction!r}; "
                f"available: {EVICTION_POLICIES}"
            )
        if self.min_boards < 1:
            raise ValueError("min_boards must be at least 1")

    # ------------------------------------------------------------------ rates
    @property
    def board_failure_rate(self) -> float:
        """Failures per second of a single working board."""
        return 1.0 / (self.mtbf_hours * _SECONDS_PER_HOUR)

    def cluster_failure_rate(self, working_boards: int) -> float:
        """Failures per second across ``working_boards`` boards."""
        return working_boards * self.board_failure_rate

    @property
    def mean_repair_seconds(self) -> float:
        return self.mttr_hours * _SECONDS_PER_HOUR

    def shrink_target(self, num_boards: int) -> int:
        """Next (halved) board count for the shrink policy."""
        return max(num_boards // 2, self.min_boards)
