"""Arrival and service-time models for the cluster lifetime simulator.

Arrivals
--------
:class:`PoissonArrivals` draws exponential interarrival gaps and job sizes
from a :class:`~repro.allocation.workload_gen.JobSizeDistribution` (the
synthetic Alibaba-like MLaaS distribution by default).
:class:`TraceArrivals` replays an explicit board-count sequence -- e.g. the
concatenation of mixes from
:func:`~repro.allocation.workload_gen.sample_job_mixes` -- with exponential
gaps, so the *size* marginal is exactly the paper's Figure-7/8 workload.

Service times
-------------
:class:`FixedServiceTime` and :class:`LogNormalServiceTime` are
distribution-driven.  :class:`FlowSimServiceTime` derives each job's
runtime from a DNN workload model: iteration time on a network profile
(measured with the flow-level simulator, or taken from the stored
Table-II fractions) multiplied by a sampled iteration count.

Seeding
-------
Every model samples exclusively from the ``numpy.random.Generator`` passed
into it -- there is no hidden global stream.  The cluster simulator derives
its generators from the config seed alone, and the experiment engine
(:mod:`repro.exp`) gives each sweep cell an explicit integer seed, so
serial, parallel, and cached runs of the same configuration are
bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..allocation.workload_gen import JobSizeDistribution, alibaba_like_distribution

__all__ = [
    "ArrivalModel",
    "PoissonArrivals",
    "TraceArrivals",
    "ServiceTimeModel",
    "FixedServiceTime",
    "LogNormalServiceTime",
    "FlowSimServiceTime",
    "interarrival_for_load",
]


def interarrival_for_load(
    load: float,
    cluster_boards: int,
    mean_job_boards: float,
    mean_service_time: float,
) -> float:
    """Mean interarrival gap producing a target offered load.

    Offered load is the long-run ratio of arriving work (board-seconds per
    second) to cluster capacity; ``load > 1`` keeps a backlog, which is the
    regime where allocation quality governs utilization (Figure 8's static
    full-cluster mixes correspond to the heavily backlogged limit).
    """
    if load <= 0:
        raise ValueError("load must be positive")
    return mean_job_boards * mean_service_time / (load * cluster_boards)


# ---------------------------------------------------------------- arrivals
class ArrivalModel:
    """Produces (interarrival-gap, board-count) pairs."""

    def next_arrival(self, rng: np.random.Generator) -> Optional[Tuple[float, int]]:
        raise NotImplementedError

    def mean_job_boards(self) -> float:
        raise NotImplementedError


@dataclass
class PoissonArrivals(ArrivalModel):
    """Poisson arrivals with sizes sampled from a job-size distribution."""

    mean_interarrival: float
    distribution: JobSizeDistribution = field(default_factory=alibaba_like_distribution)
    #: sizes above this are resampled (jobs that cannot run on the cluster)
    max_job_boards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0:
            raise ValueError("mean interarrival must be positive")
        if self.max_job_boards is not None and not any(
            s <= self.max_job_boards for s in self.distribution.sizes
        ):
            raise ValueError("no job size fits under max_job_boards")

    def next_arrival(self, rng: np.random.Generator) -> Tuple[float, int]:
        gap = float(rng.exponential(self.mean_interarrival))
        while True:
            size = int(self.distribution.sample(rng, 1)[0])
            if self.max_job_boards is None or size <= self.max_job_boards:
                return gap, size

    def mean_job_boards(self) -> float:
        if self.max_job_boards is None:
            return self.distribution.mean_size()
        pairs = [
            (s, p)
            for s, p in zip(self.distribution.sizes, self.distribution.probabilities)
            if s <= self.max_job_boards
        ]
        total = sum(p for _, p in pairs)
        return sum(s * p for s, p in pairs) / total


@dataclass
class TraceArrivals(ArrivalModel):
    """Replay an explicit sequence of board counts with exponential gaps."""

    board_counts: Sequence[int]
    mean_interarrival: float
    _cursor: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0:
            raise ValueError("mean interarrival must be positive")
        if not self.board_counts:
            raise ValueError("trace is empty")

    def next_arrival(self, rng: np.random.Generator) -> Optional[Tuple[float, int]]:
        if self._cursor >= len(self.board_counts):
            return None
        size = int(self.board_counts[self._cursor])
        self._cursor += 1
        return float(rng.exponential(self.mean_interarrival)), size

    def mean_job_boards(self) -> float:
        return float(np.mean(self.board_counts))


# ------------------------------------------------------------ service time
class ServiceTimeModel:
    """Samples a job's nominal full-size service time in seconds."""

    def sample(self, rng: np.random.Generator, num_boards: int) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedServiceTime(ServiceTimeModel):
    seconds: float

    def sample(self, rng: np.random.Generator, num_boards: int) -> float:
        return self.seconds

    def mean(self) -> float:
        return self.seconds


@dataclass(frozen=True)
class LogNormalServiceTime(ServiceTimeModel):
    """Heavy-tailed service times (the shape seen in MLaaS traces)."""

    median_seconds: float = 900.0
    sigma: float = 1.0

    def sample(self, rng: np.random.Generator, num_boards: int) -> float:
        return float(rng.lognormal(math.log(self.median_seconds), self.sigma))

    def mean(self) -> float:
        return self.median_seconds * math.exp(self.sigma ** 2 / 2.0)


@dataclass(frozen=True)
class FlowSimServiceTime(ServiceTimeModel):
    """Service time = DNN iteration time x sampled iteration count.

    The iteration time comes from a workload model evaluated on a
    :class:`~repro.workloads.overlap.NetworkProfile`; iteration counts are
    drawn log-uniformly from ``iteration_range``.  Use
    :meth:`from_topology` to measure the profile with the flow-level
    simulator instead of the stored Table-II fractions.
    """

    iteration_times: Tuple[float, ...]
    iteration_range: Tuple[int, int] = (2_000, 200_000)

    def __post_init__(self) -> None:
        if not self.iteration_times:
            raise ValueError("need at least one workload iteration time")
        lo, hi = self.iteration_range
        if not 1 <= lo <= hi:
            raise ValueError("invalid iteration range")

    @classmethod
    def from_profile(cls, profile, workload_names: Sequence[str] = (), **kwargs):
        """Evaluate registered DNN workloads on an existing network profile."""
        from ..workloads import WORKLOADS, get_workload

        names = list(workload_names) or sorted(WORKLOADS)
        times = tuple(get_workload(n).iteration_time(profile) for n in names)
        return cls(iteration_times=times, **kwargs)

    @classmethod
    def from_topology(
        cls,
        topo,
        workload_names: Sequence[str] = (),
        *,
        num_phases: Optional[int] = 16,
        max_paths: int = 4,
        backend: str = "flow",
        policy: Optional[str] = None,
        **kwargs,
    ):
        """Measure the topology with a network backend, then build profiles.

        ``backend`` selects the fidelity by name (``"analytic"``, ``"flow"``,
        ``"packet"``) and ``policy`` the routing policy (``"minimal"``,
        ``"ecmp"``, ``"valiant"``, ``"ugal"``).  The measurement routes
        through the shared :class:`~repro.sim.routing.RouteTable` of
        ``(topo, policy, max_paths)``, so a cluster simulation that also
        runs flow simulations on the same topology pays the route
        enumeration once.
        """
        from ..analysis.bandwidth import measure_topology
        from ..workloads.overlap import NetworkProfile

        summary = measure_topology(
            topo, num_phases=num_phases, max_paths=max_paths, backend=backend,
            policy=policy,
        )
        profile = NetworkProfile.from_measurements(
            topo.name,
            topo.meta.get("family", "hammingmesh"),
            alltoall_fraction=summary.alltoall_fraction,
            allreduce_fraction=summary.allreduce_fraction,
        )
        return cls.from_profile(profile, workload_names, **kwargs)

    def sample(self, rng: np.random.Generator, num_boards: int) -> float:
        iteration = self.iteration_times[int(rng.integers(len(self.iteration_times)))]
        lo, hi = self.iteration_range
        iterations = math.exp(float(rng.uniform(math.log(lo), math.log(hi))))
        return iteration * iterations

    def mean(self) -> float:
        lo, hi = self.iteration_range
        if lo == hi:
            mean_iters = float(lo)
        else:
            # mean of exp(U[ln lo, ln hi])
            mean_iters = (hi - lo) / (math.log(hi) - math.log(lo))
        return float(np.mean(self.iteration_times)) * mean_iters
