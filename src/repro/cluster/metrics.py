"""Time-series metrics of a cluster lifetime run.

:class:`ClusterMetrics` records a step-function sample of the cluster state
at every event that changes it and integrates the usual scheduling metrics
over simulated time:

* **time-weighted utilization** -- allocated / working boards, averaged
  over time (the dynamic counterpart of the Figure 8/10 metric);
* **fragmentation** -- free working capacity that sits idle *while demand
  is queued*; free boards with an empty queue are slack, not
  fragmentation;
* job-level **wait time** and **slowdown** distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs import registry as _obs
from .jobs import ClusterJob, JobState

__all__ = ["MetricSample", "ClusterMetrics"]

#: bounded time series of (time, allocated, working, queued_jobs,
#: queued_boards) — a decimated mirror of the step-function samples, so a
#: trace shows how contention evolved without shipping the full history
_STATE_PROBE = _obs.probe("cluster.state")


@dataclass(frozen=True)
class MetricSample:
    """Cluster state at one instant (holds until the next sample)."""

    time: float
    allocated_boards: int
    working_boards: int
    queued_jobs: int
    queued_boards: int

    @property
    def utilization(self) -> float:
        return self.allocated_boards / self.working_boards if self.working_boards else 0.0

    @property
    def fragmentation(self) -> float:
        """Idle-but-working capacity fraction while jobs are waiting."""
        if not self.working_boards or not self.queued_jobs:
            return 0.0
        return (self.working_boards - self.allocated_boards) / self.working_boards


class ClusterMetrics:
    """Accumulates samples and computes time-weighted summaries."""

    def __init__(self) -> None:
        self.samples: List[MetricSample] = []
        self.completed: List[ClusterJob] = []
        self.num_failures = 0
        self.num_repairs = 0
        self.num_evictions = 0
        self._end_time: Optional[float] = None

    # -------------------------------------------------------------- recording
    def record_state(
        self,
        time: float,
        *,
        allocated_boards: int,
        working_boards: int,
        queued_jobs: int,
        queued_boards: int,
    ) -> None:
        sample = MetricSample(
            time, allocated_boards, working_boards, queued_jobs, queued_boards
        )
        if self.samples and self.samples[-1].time == time:
            self.samples[-1] = sample  # collapse simultaneous events
        else:
            self.samples.append(sample)
        _STATE_PROBE.record(
            time, float(allocated_boards), float(working_boards),
            float(queued_jobs), float(queued_boards),
        )

    def record_completion(self, job: ClusterJob) -> None:
        self.completed.append(job)

    def finalize(self, end_time: float) -> None:
        self._end_time = end_time

    # ------------------------------------------------------------ integration
    def _weights(self) -> np.ndarray:
        if not self.samples:
            return np.zeros(0)
        end = self._end_time if self._end_time is not None else self.samples[-1].time
        times = np.array([s.time for s in self.samples] + [end])
        return np.maximum(np.diff(times), 0.0)

    def _time_weighted(self, values: Sequence[float]) -> float:
        w = self._weights()
        total = float(w.sum())
        if total <= 0:
            return 0.0
        return float(np.dot(np.asarray(values, dtype=float), w) / total)

    def time_weighted_utilization(self) -> float:
        return self._time_weighted([s.utilization for s in self.samples])

    def busy_utilization(self) -> float:
        """Utilization averaged only over times with queued demand.

        Idle-cluster intervals (empty queue during warm-up or drain) say
        nothing about allocation quality; conditioning on a non-empty queue
        isolates the packing efficiency the Figure-8 heuristics target.
        """
        w = self._weights()
        busy = np.array([s.queued_jobs > 0 for s in self.samples], dtype=bool)
        total = float(w[busy].sum()) if len(w) else 0.0
        if total <= 0:
            return 0.0
        values = np.array([s.utilization for s in self.samples])
        return float(np.dot(values[busy], w[busy]) / total)

    def time_weighted_fragmentation(self) -> float:
        return self._time_weighted([s.fragmentation for s in self.samples])

    def mean_queue_length(self) -> float:
        return self._time_weighted([s.queued_jobs for s in self.samples])

    # ------------------------------------------------------------- job metrics
    def wait_times(self) -> List[float]:
        return [j.wait_time for j in self.completed if j.wait_time is not None]

    def slowdowns(self) -> List[float]:
        return [j.slowdown for j in self.completed if j.slowdown is not None]

    def utilization_timeline(self) -> List[tuple]:
        """``(time, utilization)`` step-function points (figure-style series)."""
        return [(s.time, s.utilization) for s in self.samples]

    def fragmentation_timeline(self) -> List[tuple]:
        return [(s.time, s.fragmentation) for s in self.samples]

    # ---------------------------------------------------------------- summary
    def summary(self) -> Dict[str, float]:
        waits = self.wait_times()
        slows = self.slowdowns()
        return {
            "completed_jobs": float(len(self.completed)),
            "time_weighted_utilization": self.time_weighted_utilization(),
            "busy_utilization": self.busy_utilization(),
            "time_weighted_fragmentation": self.time_weighted_fragmentation(),
            "mean_queue_length": self.mean_queue_length(),
            "mean_wait_time": float(np.mean(waits)) if waits else 0.0,
            "p95_wait_time": float(np.percentile(waits, 95)) if waits else 0.0,
            "mean_slowdown": float(np.mean(slows)) if slows else 0.0,
            "p95_slowdown": float(np.percentile(slows, 95)) if slows else 0.0,
            "failures": float(self.num_failures),
            "repairs": float(self.num_repairs),
            "evictions": float(self.num_evictions),
        }
