"""Event-driven cluster lifetime simulation (beyond the paper's figures).

The paper evaluates HxMesh allocation on *static* job mixes (Figures 8 and
10).  This package simulates the cluster *over time*: jobs arrive (Poisson
or trace-driven, sizes from the Alibaba-like generator), wait in a
scheduler queue (FCFS or FCFS+backfill over the greedy allocator), run for
a sampled or flow-simulator-derived service time, and complete -- while
boards fail and are repaired per an MTBF/MTTR process that evicts or
shrinks affected jobs.

Quick start::

    from repro.cluster import ClusterSimConfig, ClusterSimulator, FailureModel

    config = ClusterSimConfig(
        x=16, y=16,                                # 16x16 Hx2Mesh
        allocator="greedy+transpose+aspect",
        policy="fcfs+backfill",
        num_jobs=1000,
        failures=FailureModel(mtbf_hours=80, mttr_hours=2),
        seed=7,
    )
    report = ClusterSimulator(config).run()
    print(report.summary()["time_weighted_utilization"])
"""

from .coupling import CouplingState, NetworkCoupling
from .failures import EVICTION_POLICIES, FailureModel
from .jobs import ClusterJob, JobState
from .metrics import ClusterMetrics, MetricSample
from .scheduler import POLICIES, Scheduler
from .simulator import ClusterReport, ClusterSimConfig, ClusterSimulator
from .workload import (
    ArrivalModel,
    FixedServiceTime,
    FlowSimServiceTime,
    LogNormalServiceTime,
    PoissonArrivals,
    ServiceTimeModel,
    TraceArrivals,
    interarrival_for_load,
)

__all__ = [
    "ClusterJob",
    "JobState",
    "Scheduler",
    "POLICIES",
    "FailureModel",
    "EVICTION_POLICIES",
    "NetworkCoupling",
    "CouplingState",
    "ClusterMetrics",
    "MetricSample",
    "ClusterSimConfig",
    "ClusterSimulator",
    "ClusterReport",
    "ArrivalModel",
    "PoissonArrivals",
    "TraceArrivals",
    "ServiceTimeModel",
    "FixedServiceTime",
    "LogNormalServiceTime",
    "FlowSimServiceTime",
    "interarrival_for_load",
]
