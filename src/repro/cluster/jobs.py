"""Job lifecycle model of the cluster lifetime simulator.

A :class:`ClusterJob` is a training job as the cluster scheduler sees it:
it arrives at some time requesting a number of boards, waits in the queue,
runs on an allocated virtual sub-mesh, and eventually completes -- possibly
after being evicted and restarted by board failures, possibly at a reduced
(shrunken) board count.

Work is accounted in *board-seconds*: a job that needs ``service_time``
seconds on ``num_boards`` boards carries ``service_time * num_boards``
board-seconds of work, and running on ``b`` boards drains the balance at
``b`` board-seconds per second.  This linear-scaling assumption is what
lets eviction policies shrink a job onto fewer boards and still predict its
completion time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..allocation.jobs import JobRequest, most_square_shape

__all__ = ["JobState", "ClusterJob"]


class JobState:
    """Lifecycle states of a cluster job (plain strings for easy printing)."""

    PENDING = "pending"      # queued, waiting for boards
    RUNNING = "running"      # allocated and executing
    COMPLETED = "completed"  # all work drained


@dataclass
class ClusterJob:
    """One job moving through the simulated cluster."""

    job_id: int
    num_boards: int            # boards of the *current* request (shrink lowers it)
    arrival_time: float
    service_time: float        # nominal seconds at the originally requested size
    state: str = JobState.PENDING

    #: boards of the original request (slowdown is measured against this)
    requested_boards: int = 0
    #: board-seconds of work still to drain
    work_remaining: float = 0.0
    start_time: Optional[float] = None      # first time the job began running
    last_start: Optional[float] = None      # most recent (re)start
    finish_time: Optional[float] = None
    restarts: int = 0
    shrinks: int = 0

    def __post_init__(self) -> None:
        if self.num_boards < 1:
            raise ValueError("a job needs at least one board")
        if self.service_time <= 0:
            raise ValueError("service time must be positive")
        if not self.requested_boards:
            self.requested_boards = self.num_boards
        if not self.work_remaining:
            self.work_remaining = self.service_time * self.requested_boards

    # ------------------------------------------------------------- lifecycle
    def request(self) -> JobRequest:
        """The allocation request for the job's current board count."""
        u, v = most_square_shape(self.num_boards)
        return JobRequest(self.job_id, u, v)

    def begin(self, now: float) -> float:
        """Mark the job running; returns the run time until completion."""
        self.state = JobState.RUNNING
        if self.start_time is None:
            self.start_time = now
        else:
            self.restarts += 1
        self.last_start = now
        return self.remaining_runtime()

    def remaining_runtime(self) -> float:
        """Seconds of execution left at the current board count."""
        return self.work_remaining / self.num_boards

    def interrupt(self, now: float, *, checkpoint: bool = True) -> None:
        """Stop a running job (eviction); optionally credit finished work.

        With ``checkpoint=True`` the work executed since the last (re)start
        is subtracted from the balance, modelling checkpoint/restart (the
        paper argues a 64 GiB checkpoint costs < 1 s of network time); with
        ``checkpoint=False`` the job restarts from scratch.
        """
        if self.state != JobState.RUNNING:
            raise ValueError(f"job {self.job_id} is not running")
        if checkpoint and self.last_start is not None:
            done = (now - self.last_start) * self.num_boards
            self.work_remaining = max(self.work_remaining - done, 1e-9)
        self.state = JobState.PENDING

    def shrink(self, new_boards: int) -> None:
        """Reduce the job's board count (work balance is size-independent)."""
        if not 1 <= new_boards < self.num_boards:
            raise ValueError(
                f"shrink target {new_boards} must be in [1, {self.num_boards})"
            )
        self.num_boards = new_boards
        self.shrinks += 1

    def complete(self, now: float) -> None:
        self.state = JobState.COMPLETED
        self.finish_time = now
        self.work_remaining = 0.0

    # --------------------------------------------------------------- metrics
    @property
    def wait_time(self) -> Optional[float]:
        """Queue time before the first start (None while still queued)."""
        return None if self.start_time is None else self.start_time - self.arrival_time

    @property
    def turnaround(self) -> Optional[float]:
        return None if self.finish_time is None else self.finish_time - self.arrival_time

    @property
    def slowdown(self) -> Optional[float]:
        """Turnaround over the nominal full-size service time (>= 1.0)."""
        if self.finish_time is None:
            return None
        return max(self.turnaround / self.service_time, 1.0)
