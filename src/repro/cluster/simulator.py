"""Event-driven cluster lifetime simulator.

:class:`ClusterSimulator` wires the existing ingredients -- the
deterministic :class:`~repro.sim.engine.EventEngine`, the
:class:`~repro.allocation.grid.BoardGrid` / greedy allocator, the
Alibaba-like workload generator, and (optionally) flow-simulator-derived
service times -- into one long-running simulation: jobs arrive, queue,
run, and complete while boards fail and are repaired.

Event types and their races:

* **arrival** -- a job joins the queue; the scheduler dispatches whatever
  fits.
* **completion** -- the job's boards are released; queued jobs may start.
* **failure** -- a uniformly random working board fails.  If it was
  allocated the victim job is evicted (its completion event is *cancelled*
  -- the completion/failure race the engine's handles exist for) and
  requeued per the eviction policy.
* **repair** -- a failed board returns to service.

All randomness flows through three independent, seeded generator streams
(arrivals, service times, failures), so a run is a pure function of its
:class:`ClusterSimConfig`: same seed, same metrics --
:meth:`ClusterReport.fingerprint` digests the full job history to assert
exactly that.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .._hash import mix64
from ..allocation.greedy import AllocatorOptions
from ..obs import registry as _obs
from ..obs import tracing as _tracing
from ..allocation.grid import BoardGrid
from ..sim.engine import EventEngine, EventHandle
from .coupling import CouplingState, NetworkCoupling
from .failures import FailureModel
from .jobs import ClusterJob
from .metrics import ClusterMetrics
from .scheduler import Scheduler
from .workload import (
    ArrivalModel,
    LogNormalServiceTime,
    PoissonArrivals,
    ServiceTimeModel,
    interarrival_for_load,
)

__all__ = ["ClusterSimConfig", "ClusterReport", "ClusterSimulator"]

# cluster.* counters (always live, mirroring the per-run ClusterMetrics
# tallies as process-wide aggregates across every simulated campaign)
_JOBS_COMPLETED = _obs.counter("cluster.jobs_completed")
_FAILURES = _obs.counter("cluster.failures")
_REPAIRS = _obs.counter("cluster.repairs")
_EVICTIONS = _obs.counter("cluster.evictions")


def _emit_job_spans(jobs: List[ClusterJob]) -> None:
    """Job-lifecycle spans on the simulation clock, emitted after the run.

    One ``cluster.job`` span per completed job (arrival to finish) with
    ``queued`` / ``running`` children splitting it at the first start.
    Restart and shrink counts ride along as attributes — an evicted job's
    contention shows up as ``restarts > 0`` and a ``running`` child that
    includes its requeued gaps.  Emission happens post-run from the job
    records, so the spans are a pure function of the seeded config.
    """
    for job in jobs:
        if job.finish_time is None:
            continue
        _tracing.add_span(
            "cluster.job", job.arrival_time, job.finish_time, clock="sim",
            job_id=job.job_id, boards=job.requested_boards,
            restarts=job.restarts, shrinks=job.shrinks,
        )
        if job.start_time is not None:
            _tracing.add_span(
                "queued", job.arrival_time, job.start_time,
                clock="sim", parent="cluster.job",
            )
            _tracing.add_span(
                "running", job.start_time, job.finish_time,
                clock="sim", parent="cluster.job",
            )


@dataclass(frozen=True)
class ClusterSimConfig:
    """Complete description of one cluster lifetime run (a run is a pure
    function of this config)."""

    x: int = 16
    y: int = 16
    allocator: Union[str, AllocatorOptions] = "greedy+transpose+aspect"
    policy: str = "fcfs+backfill"
    backfill_depth: int = 16
    num_jobs: int = 1000
    seed: int = 0
    #: offered load used to derive Poisson arrivals when ``arrivals`` is None
    load: float = 1.5
    #: largest sampled job, in boards; defaults to a quarter of the cluster.
    #: A job sized to the whole cluster can only start during a window with
    #: zero failed boards -- vanishingly rare under an MTBF/MTTR process --
    #: so the *lifetime* default is stricter than the static Figure-8 mixes.
    max_job_boards: Optional[int] = None
    arrivals: Optional[ArrivalModel] = None
    service: ServiceTimeModel = field(default_factory=LogNormalServiceTime)
    failures: Optional[FailureModel] = None
    #: couple board failures to interconnect bandwidth: a failed board also
    #: kills its HammingMesh links, and surviving jobs' remaining service
    #: time stretches by the probe workload's bandwidth loss.  ``None``
    #: (the default) keeps the historical uncoupled behavior bit-identical.
    network: Optional[NetworkCoupling] = None
    #: hard safety cap on processed events (runaway guard)
    max_events: int = 2_000_000

    @property
    def cluster_boards(self) -> int:
        return self.x * self.y

    def build_arrivals(self) -> ArrivalModel:
        """The arrival model (a private copy; trace cursors are stateful)."""
        if self.arrivals is not None:
            return copy.deepcopy(self.arrivals)
        cap = self.max_job_boards
        if cap is None:
            cap = max(self.cluster_boards // 4, 1)
        model = PoissonArrivals(mean_interarrival=1.0, max_job_boards=cap)
        model.mean_interarrival = interarrival_for_load(
            self.load, self.cluster_boards, model.mean_job_boards(), self.service.mean()
        )
        return model


@dataclass
class ClusterReport:
    """Everything a lifetime run produced."""

    config: ClusterSimConfig
    duration: float
    jobs: List[ClusterJob]
    metrics: ClusterMetrics

    def summary(self) -> Dict[str, float]:
        out = {"duration": self.duration, "submitted_jobs": float(len(self.jobs))}
        out.update(self.metrics.summary())
        return out

    def fingerprint(self) -> int:
        """Order-sensitive digest of the full job history.

        Two runs of the same seeded config must produce identical
        fingerprints; any divergence in event ordering, placement, or
        sampled randomness changes it.
        """
        digest = mix64(len(self.jobs))
        for job in self.jobs:
            for value in (
                job.job_id,
                job.num_boards,
                job.requested_boards,
                job.restarts,
                job.shrinks,
                int(job.arrival_time * 1e6),
                int((job.finish_time or -1.0) * 1e6),
            ):
                digest = mix64(digest ^ mix64(value & ((1 << 64) - 1)))
        for count in (
            self.metrics.num_failures,
            self.metrics.num_repairs,
            self.metrics.num_evictions,
            int(self.duration * 1e6),
        ):
            digest = mix64(digest ^ mix64(count))
        return digest


class ClusterSimulator:
    """Runs one :class:`ClusterSimConfig` to completion."""

    def __init__(self, config: ClusterSimConfig = ClusterSimConfig()):
        self.config = config

    # ------------------------------------------------------------------- run
    def run(self) -> ClusterReport:
        """Simulate until every submitted job has completed."""
        cfg = self.config
        engine = EventEngine()
        grid = BoardGrid(cfg.x, cfg.y)
        scheduler = Scheduler(
            grid, cfg.allocator, policy=cfg.policy, backfill_depth=cfg.backfill_depth
        )
        metrics = ClusterMetrics()
        arrivals = cfg.build_arrivals()

        arrival_rng = np.random.default_rng([cfg.seed, 0xA221])
        service_rng = np.random.default_rng([cfg.seed, 0x5EE7])
        failure_rng = np.random.default_rng([cfg.seed, 0xFA11])

        net: Optional[CouplingState] = (
            cfg.network.build_state(cfg.x, cfg.y) if cfg.network is not None else None
        )
        bw_factor = [1.0]

        jobs: List[ClusterJob] = []
        running: Dict[int, Tuple[ClusterJob, EventHandle]] = {}
        repair_handles: Dict[Tuple[int, int], EventHandle] = {}
        failure_handle: List[Optional[EventHandle]] = [None]
        arrivals_exhausted = [False]
        finished = [False]

        # ------------------------------------------------------------ helpers
        def record() -> None:
            metrics.record_state(
                engine.now,
                allocated_boards=grid.num_allocated,
                working_boards=grid.num_working,
                queued_jobs=scheduler.queue_length,
                queued_boards=scheduler.queued_boards,
            )

        def dispatch() -> None:
            for job, _submesh in scheduler.dispatch():
                runtime = job.begin(engine.now)
                if net is not None:
                    runtime /= max(bw_factor[0], 1e-6)
                handle = engine.schedule(runtime, _completion(job))
                running[job.job_id] = (job, handle)

        def apply_bandwidth(new_factor: float) -> None:
            """Rescale running jobs' remaining time to the new bandwidth.

            Remaining *work* is invariant: a job with wall-clock remainder
            ``R`` at factor ``f_old`` carries ``R * f_old`` of work, which
            takes ``R * f_old / f_new`` at the new factor.
            """
            old = bw_factor[0]
            bw_factor[0] = new_factor
            if new_factor == old:
                return
            scale = max(old, 1e-6) / max(new_factor, 1e-6)
            for job_id, (job, handle) in list(running.items()):
                remaining = handle.time - engine.now
                if remaining <= 0.0:
                    continue
                engine.cancel(handle)
                running[job_id] = (job, engine.schedule(remaining * scale, _completion(job)))

        def check_finished() -> None:
            if (
                arrivals_exhausted[0]
                and not running
                and scheduler.queue_length == 0
                and not finished[0]
            ):
                finished[0] = True
                # Stop the self-perpetuating failure process and drain the
                # outstanding repairs; the run is over.
                engine.cancel(failure_handle[0])
                for handle in repair_handles.values():
                    engine.cancel(handle)

        # ------------------------------------------------------------ arrivals
        def schedule_next_arrival() -> None:
            if len(jobs) >= cfg.num_jobs:
                arrivals_exhausted[0] = True
                return
            drawn = arrivals.next_arrival(arrival_rng)
            if drawn is None:
                arrivals_exhausted[0] = True
                return
            gap, num_boards = drawn
            service = cfg.service.sample(service_rng, num_boards)
            job = ClusterJob(
                job_id=len(jobs),
                num_boards=num_boards,
                arrival_time=engine.now + gap,
                service_time=service,
            )
            jobs.append(job)
            engine.schedule(gap, _arrival(job))

        def _arrival(job: ClusterJob):
            def fire() -> None:
                scheduler.submit(job)
                dispatch()
                record()
                schedule_next_arrival()
                check_finished()

            return fire

        # ---------------------------------------------------------- completion
        def _completion(job: ClusterJob):
            def fire() -> None:
                running.pop(job.job_id, None)
                grid.release(job.job_id)
                job.complete(engine.now)
                metrics.record_completion(job)
                _JOBS_COMPLETED.inc()
                dispatch()
                record()
                check_finished()

            return fire

        # ------------------------------------------------------------ failures
        def reschedule_failure() -> None:
            engine.cancel(failure_handle[0])
            failure_handle[0] = None
            if cfg.failures is None or finished[0]:
                return
            rate = cfg.failures.cluster_failure_rate(grid.num_working)
            if rate <= 0.0:
                return
            delay = float(failure_rng.exponential(1.0 / rate))
            failure_handle[0] = engine.schedule(delay, on_failure)

        def on_failure() -> None:
            failure_handle[0] = None
            model = cfg.failures
            working = grid.working_coords()
            if not working:
                reschedule_failure()
                return
            board = working[int(failure_rng.integers(len(working)))]
            metrics.num_failures += 1
            _FAILURES.inc()
            victim_id = grid.job_at(board)
            if victim_id is not None:
                job, handle = running.pop(victim_id)
                engine.cancel(handle)  # the completion lost the race
                job.interrupt(engine.now, checkpoint=model.checkpoint)
                grid.release(victim_id)
                metrics.num_evictions += 1
                _EVICTIONS.inc()
                if model.eviction == "shrink" and job.num_boards > model.min_boards:
                    job.shrink(model.shrink_target(job.num_boards))
                scheduler.submit(job, front=True)
            grid.fail_boards([board])
            if net is not None:
                apply_bandwidth(net.fail_board(board))
            delay = float(failure_rng.exponential(model.mean_repair_seconds))
            repair_handles[board] = engine.schedule(delay, _repair(board))
            dispatch()  # an eviction may have freed boards for queued jobs
            record()
            reschedule_failure()  # the working count changed

        def _repair(board: Tuple[int, int]):
            def fire() -> None:
                repair_handles.pop(board, None)
                grid.repair_boards([board])
                if net is not None:
                    apply_bandwidth(net.repair_board(board))
                metrics.num_repairs += 1
                _REPAIRS.inc()
                dispatch()
                record()
                reschedule_failure()
                check_finished()

            return fire

        # ---------------------------------------------------------------- run
        record()
        schedule_next_arrival()
        reschedule_failure()
        check_finished()  # num_jobs == 0 finishes before any event fires
        engine.run(max_events=cfg.max_events)
        if not finished[0]:
            if engine.pending_events:
                raise RuntimeError(
                    f"cluster simulation hit the max_events cap ({cfg.max_events}) "
                    f"with {engine.pending_events} events pending (a queued job "
                    f"may be unplaceable on this grid)"
                )
            stuck = [job.job_id for job in scheduler.pending_jobs()]
            raise RuntimeError(
                f"cluster simulation deadlocked: jobs {stuck} can never be "
                f"placed on the {cfg.x}x{cfg.y} grid (no failure/repair events "
                f"remain to change capacity)"
            )
        duration = engine.now
        metrics.finalize(duration)
        if _obs.is_enabled():
            _emit_job_spans(jobs)
        return ClusterReport(config=cfg, duration=duration, jobs=jobs, metrics=metrics)
