"""Cluster <-> network coupling: board failures degrade the fabric.

The lifetime simulator's failure process historically only removed a
board from the *allocation* grid — surviving jobs kept their original
service times, as if the interconnect were unaffected.  This module
closes that gap (the first concrete step toward coupling the cluster
and network layers): an optional :class:`NetworkCoupling` on
:class:`~repro.cluster.simulator.ClusterSimConfig` builds a HammingMesh
with the same board grid as the cluster, and every board failure also
kills that board's accelerators and links via
:meth:`~repro.sim.faults.FaultSet.from_boards`.  A seeded permutation
probe workload is re-solved through the shared
:class:`~repro.sim.faults.FaultEventSolver` (warm delta re-solves on
failures, cold re-solves on the non-monotone repairs), and the mean
rate of the *surviving* probe flows relative to their fault-free rates
becomes the cluster's bandwidth factor: running jobs' remaining service
time stretches by ``old_factor / new_factor`` when a board dies and
contracts when it is repaired.

The coupling is opt-out by absence: ``network=None`` (the default)
leaves the simulator's event stream — and therefore every committed
fingerprint — bit-identical to the uncoupled behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.hammingmesh import build_hammingmesh
from ..sim.faults import FaultEventSolver, FaultSet
from ..sim.paths import DEFAULT_MAX_PATHS
from ..sim.traffic import random_permutation

__all__ = ["NetworkCoupling", "CouplingState"]


@dataclass(frozen=True)
class NetworkCoupling:
    """Config for the board-failure -> bandwidth-degradation coupling.

    ``board_a`` x ``board_b`` accelerators per board; the HammingMesh
    board grid always matches the cluster's ``x`` x ``y``.  The probe
    workload is a seeded random permutation over all accelerators, so a
    coupled run remains a pure function of its config.
    """

    board_a: int = 2
    board_b: int = 2
    policy: str = "minimal"
    max_paths: int = DEFAULT_MAX_PATHS
    seed: int = 0

    def build_state(self, x: int, y: int) -> "CouplingState":
        return CouplingState(self, x, y)


class CouplingState:
    """Mutable per-run state: the probe solver plus the live fault set."""

    def __init__(self, config: NetworkCoupling, x: int, y: int):
        self.config = config
        self.topo = build_hammingmesh(config.board_a, config.board_b, x, y)
        num_ranks = len(self.topo.accelerators)
        flows = random_permutation(num_ranks, seed=[config.seed, 0xC0B1])
        self.solver = FaultEventSolver(
            self.topo, flows, policy=config.policy, max_paths=config.max_paths
        )
        self._baseline_rates = self.solver.baseline.rates.copy()
        self.factor = 1.0

    # ------------------------------------------------------------------ events
    def _board_faults(self, board: Tuple[int, int]) -> FaultSet:
        return FaultSet.from_boards(self.topo, [board])

    def _factor_from(self, report) -> float:
        """Bandwidth factor: surviving probe rates vs. their fault-free rates.

        Flows with an endpoint on a dead board are excluded — their jobs
        were evicted, so they should not drag the survivors' factor down.
        """
        alive = np.ones(len(self._baseline_rates), dtype=bool)
        if report.disconnected:
            alive[list(report.disconnected)] = False
        base = self._baseline_rates[alive]
        if not len(base) or float(base.sum()) <= 0.0:
            self.factor = 0.0
        else:
            self.factor = min(float(report.rates[alive].sum() / base.sum()), 1.0)
        return self.factor

    def fail_board(self, board: Tuple[int, int]) -> float:
        """Kill ``board``'s accelerators and links; return the new factor."""
        faults = self.solver.faults.union(self._board_faults(board))
        return self._factor_from(self.solver.apply(faults))

    def repair_board(self, board: Tuple[int, int]) -> float:
        """Revive ``board``; the non-monotone event re-solves cold."""
        faults = self.solver.faults.difference(self._board_faults(board))
        return self._factor_from(self.solver.apply(faults))
