"""Queueing policies placing cluster jobs with the greedy allocator.

The scheduler owns the pending-job queue and a
:class:`~repro.allocation.greedy.GreedyAllocator` bound to the cluster's
:class:`~repro.allocation.grid.BoardGrid`.  Whenever capacity may have
changed (an arrival, a completion, a repair, an eviction) the simulator
calls :meth:`Scheduler.dispatch`, which starts every job its policy allows:

* ``"fcfs"`` -- strict first-come-first-served: place queue heads until the
  head does not fit, then stop (head-of-line blocking included).
* ``"fcfs+backfill"`` -- aggressive backfilling: when the head does not
  fit, later jobs (up to ``backfill_depth`` of them) may jump ahead if
  *they* fit.  No reservations are made, so very large jobs can starve
  under sustained load -- the classic trade-off this policy knob exists to
  study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..allocation.greedy import AllocatorOptions, GreedyAllocator
from ..allocation.grid import BoardGrid
from ..core.subnetwork import VirtualSubMesh
from .jobs import ClusterJob

__all__ = ["POLICIES", "Scheduler"]

POLICIES = ("fcfs", "fcfs+backfill")


class Scheduler:
    """Pending-job queue plus a placement policy over a board grid."""

    def __init__(
        self,
        grid: BoardGrid,
        options: Union[str, AllocatorOptions] = "greedy+transpose+aspect",
        *,
        policy: str = "fcfs",
        backfill_depth: int = 16,
    ):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; available: {POLICIES}")
        if isinstance(options, str):
            options = AllocatorOptions.named(options)
        self.grid = grid
        self.allocator = GreedyAllocator(grid, options)
        self.policy = policy
        self.backfill_depth = backfill_depth
        self._queue: List[ClusterJob] = []

    # ---------------------------------------------------------------- queries
    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def queued_boards(self) -> int:
        return sum(job.num_boards for job in self._queue)

    def pending_jobs(self) -> List[ClusterJob]:
        return list(self._queue)

    # --------------------------------------------------------------- mutation
    def submit(self, job: ClusterJob, *, front: bool = False) -> None:
        """Queue a job; evicted jobs re-enter at the front (no re-queueing
        penalty beyond the work they lost)."""
        if front:
            self._queue.insert(0, job)
        else:
            self._queue.append(job)

    def dispatch(self) -> List[Tuple[ClusterJob, VirtualSubMesh]]:
        """Start every job the policy can place right now.

        Returns ``(job, submesh)`` pairs in start order; the caller marks
        the jobs running and schedules their completion events.
        """
        started: List[Tuple[ClusterJob, VirtualSubMesh]] = []
        while self._queue:
            placed = self.allocator.allocate(self._queue[0].request())
            if placed is None:
                break
            started.append((self._queue.pop(0), placed))
        if self.policy == "fcfs+backfill" and self._queue:
            index = 1  # the head itself was just proven not to fit
            examined = 0
            while index < len(self._queue) and examined < self.backfill_depth:
                job = self._queue[index]
                placed = self.allocator.allocate(job.request())
                if placed is None:
                    index += 1
                else:
                    started.append((self._queue.pop(index), placed))
                examined += 1
        return started
