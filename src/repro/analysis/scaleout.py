"""Scale-out permutation sweep: large HammingMeshes under a memory budget.

The figure sweeps in :mod:`repro.analysis.figures` stop at fig12-scale
clusters (a few thousand endpoints) where dense route tables fit in memory
comfortably.  This module registers the ``scaleout_permutation`` sweep for
the large-N regime — e.g. an ``Hx2Mesh(2,2,64,64)`` with 16,384
accelerators, whose dense pair index alone would need ~7.7 GB — by
combining the two scale-out mechanisms of :mod:`repro.sim`:

* every cell routes under a **route-table memory budget** (sharded CSR
  storage with LRU eviction and disk spill; see ``DESIGN.md``), and
* the cells of one topology share a chunk, so the runner hands them to the
  cell's batch companion and the permutations of a chunk are solved in one
  vectorized :meth:`~repro.sim.flowsim.FlowSimulator.maxmin_rates_batch`
  call.  A multi-worker runner splits oversized chunks into contiguous
  slices (each slice batch-solves on its worker, seeded with the parent's
  shared-memory route table), so one topology still fans out across the
  pool.

Both mechanisms are bit-identical to the plain path, so this sweep's
numbers agree exactly with an unbudgeted, per-cell run of the same grid.
"""

from __future__ import annotations

from typing import Any, Dict

from ..exp import Grid, RunReport, register_sweep
from ..exp.cells import maxmin_permutation_cell

__all__ = ["scaleout_grid"]


def scaleout_grid(
    *,
    a: int = 2,
    b: int = 2,
    x: int = 32,
    y: int = 32,
    num_permutations: int = 4,
    max_paths: int = 8,
    policy: str = "minimal",
    mem_budget: Any = "4G",
    seed: int = 0,
) -> Grid:
    """Permutation sweep on one ``a x b`` boards of ``x x y`` HammingMesh.

    Defaults describe the CI smoke case (4,096 accelerators); pass
    ``x=64, y=64`` for the 16,384-accelerator headline configuration.
    All cells share one chunk (one topology): a serial run batch-solves
    them together, while a multi-worker run splits the chunk into
    contiguous slices — one batch solve per worker — with identical
    results either way.
    """
    grid = Grid(
        maxmin_permutation_cell,
        common={
            "a": a,
            "b": b,
            "x": x,
            "y": y,
            "max_paths": max_paths,
            "policy": policy,
            "mem_budget": mem_budget,
        },
        chunk=lambda p: f"hx_{p['a']}x{p['b']}x{p['x']}x{p['y']}",
    )
    grid.cross(seed=[seed + i for i in range(num_permutations)])
    return grid


def _scaleout_post(report: RunReport) -> Dict[str, Any]:
    values = report.values()
    return {
        "num_permutations": len(values),
        "mean_fraction": (
            sum(v["mean_fraction"] for v in values) / len(values) if values else None
        ),
        "min_fraction": min((v["min_fraction"] for v in values), default=None),
        "permutations": values,
    }


register_sweep(
    "scaleout_permutation",
    build=scaleout_grid,
    post=_scaleout_post,
    description="Large-N HammingMesh permutation sweep under a route-table memory budget",
    artifact="scaleout_permutation",
)
