"""Experiment orchestration: Table II, every figure, and text reporting."""

from .bandwidth import (
    BandwidthSummary,
    measure_allreduce_fraction,
    measure_alltoall_fraction,
    measure_permutation_fractions,
    measure_topology,
)
from .adversary import adversary_search_sweep
from .resilience import fault_resilience_sweep
from .clusters import ClusterTopology, cluster_configs, large_cluster_configs, small_cluster_configs
from .figures import (
    DEFAULT_FRACTIONS,
    dnn_iteration_times,
    fig7_jobsize_cdf,
    fig8_utilization,
    fig9_upper_traffic,
    fig10_failures,
    fig11_alltoall_sweep,
    fig12_permutation,
    fig13_allreduce_sweep,
    fig15_cost_savings,
    fig16_hamiltonian_cycles,
    fig17_allreduce_sweep,
    network_profiles,
    routing_policy_sweep,
)
from .lifetime import (
    lifetime_failure_sweep,
    lifetime_policy_comparison,
    lifetime_utilization_timeline,
)
from .report import format_distribution_summary, format_nested_table, format_series
from .table2 import Table2Row, build_table2, format_table2

__all__ = [
    "BandwidthSummary",
    "measure_topology",
    "measure_alltoall_fraction",
    "measure_allreduce_fraction",
    "measure_permutation_fractions",
    "ClusterTopology",
    "cluster_configs",
    "small_cluster_configs",
    "large_cluster_configs",
    "Table2Row",
    "build_table2",
    "format_table2",
    "DEFAULT_FRACTIONS",
    "network_profiles",
    "fig7_jobsize_cdf",
    "fig8_utilization",
    "fig9_upper_traffic",
    "fig10_failures",
    "fig11_alltoall_sweep",
    "fig12_permutation",
    "routing_policy_sweep",
    "adversary_search_sweep",
    "fault_resilience_sweep",
    "fig13_allreduce_sweep",
    "fig17_allreduce_sweep",
    "fig15_cost_savings",
    "fig16_hamiltonian_cycles",
    "dnn_iteration_times",
    "lifetime_policy_comparison",
    "lifetime_failure_sweep",
    "lifetime_utilization_timeline",
    "format_series",
    "format_distribution_summary",
    "format_nested_table",
]
