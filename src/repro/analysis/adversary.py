"""The searched policy-vs-adversary worst-case study (ROADMAP item 3a).

The routing-policy sweep scores each ``(family, policy)`` pair on the
family's *hand-built* adversarial permutation.  This study replaces that
single point with a searched worst case: a simulated-annealing walk over
permutations (:func:`repro.sim.search.anneal_adversary`), seeded from the
hand-built adversary and driven by the delta-solve engine, so thousands of
neighbour evaluations cost what a handful of cold solves used to.

Because the seed is the first evaluated candidate, ``searched_worst <=
hand_built_worst`` holds for every pair — the searched table only ever
strengthens the paper's worst-case claims.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..exp import Grid, RunReport, Runner, cell, register_sweep, run_grid
from .figures import ROUTING_POLICIES, ROUTING_POLICY_TOPOS, _routing_policy_topo

__all__ = [
    "adversary_search_cell",
    "adversary_search_grid",
    "adversary_search_sweep",
]


@cell(version=1)
def adversary_search_cell(
    *,
    topo_key: str,
    policy: str,
    steps: int = 192,
    batch: int = 16,
    seed: int = 0,
    max_paths: int = 8,
    t_initial: float = 0.02,
    t_final: float = 1e-3,
) -> dict:
    """Annealed worst-case permutation of one ``(topology, policy)`` point.

    Runs :func:`repro.sim.search.anneal_adversary` for ``steps`` neighbour
    evaluations from the hand-built adversarial seed and reports both
    degradations (worst receive fractions; lower = stronger adversary)
    plus the solver-reuse statistics the delta engine achieved.  The
    topology comes from the same memoized builder as the routing-policy
    study, so the grid's per-``topo_key`` chunking lets all four policy
    cells share route tables.
    """
    from ..sim import FlowSimulator, anneal_adversary

    topo = _routing_policy_topo(topo_key)
    sim = FlowSimulator(topo, policy=policy, max_paths=max_paths)
    result = anneal_adversary(
        sim,
        steps=steps,
        seed=seed,
        batch=batch,
        t_initial=t_initial,
        t_final=t_final,
    )
    evals = max(result.warm_evals + result.cold_evals, 1)
    return {
        "hand_built_worst": result.seed_objective,
        "searched_worst": result.best_objective,
        "improvement": result.seed_objective - result.best_objective,
        "steps": result.steps,
        "accepted": result.accepted,
        "warm_evals": result.warm_evals,
        "cold_evals": result.cold_evals,
        "warm_rate": result.warm_evals / evals,
    }


def adversary_search_grid(
    *,
    topo_keys: Sequence[str] = tuple(ROUTING_POLICY_TOPOS),
    policies: Sequence[str] = ROUTING_POLICIES,
    steps: int = 192,
    batch: int = 16,
    seed: int = 0,
    max_paths: int = 8,
) -> Grid:
    grid = Grid(
        adversary_search_cell,
        common={
            "steps": steps,
            "batch": batch,
            "seed": seed,
            "max_paths": max_paths,
        },
        # Chunk by topology (routing-policy study convention): one worker
        # runs all four policies on the same memoized instance, sharing
        # route tables through the weak-keyed table memo.
        chunk=lambda p: p["topo_key"],
    )
    grid.cross("topo_key", list(topo_keys))
    grid.cross("policy", list(policies))
    return grid


def _adversary_search_post(
    report: RunReport,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for c in report:
        params = c.scenario.params
        results.setdefault(params["topo_key"], {})[params["policy"]] = c.value
    return results


def adversary_search_sweep(
    *,
    topo_keys: Sequence[str] = tuple(ROUTING_POLICY_TOPOS),
    policies: Sequence[str] = ROUTING_POLICIES,
    steps: int = 192,
    batch: int = 16,
    seed: int = 0,
    max_paths: int = 8,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Searched worst-case degradation per routing policy per family.

    Returns ``{topo_key: {policy: {hand_built_worst, searched_worst,
    improvement, ...}}}`` — the policy-vs-adversary table with
    ``searched_worst <= hand_built_worst`` guaranteed on every pair.
    """
    grid = adversary_search_grid(
        topo_keys=topo_keys,
        policies=policies,
        steps=steps,
        batch=batch,
        seed=seed,
        max_paths=max_paths,
    )
    return _adversary_search_post(run_grid(grid, runner=runner, workers=workers))


register_sweep(
    "adversary_search",
    build=adversary_search_grid,
    post=_adversary_search_post,
    description="Annealed adversary search: searched vs hand-built worst-case permutation per routing policy",
    artifact="adversary_search",
)
