"""The example cluster configurations of Table II.

Two design points are compared throughout the paper: a *small* cluster with
~1,000 accelerators and a *large* cluster with ~16,000 accelerators, each
built as eight different topologies (three fat-tree variants, Dragonfly,
2D HyperX, Hx2Mesh, Hx4Mesh and a 2D torus).  This module centralises those
configurations: how to build the simulated topology graph, how to compute
the capital cost, and the published Table II values used for comparison in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.hammingmesh import build_hammingmesh
from ..core.params import hx2mesh, hx4mesh
from ..cost.model import (
    CostBreakdown,
    dragonfly_cost,
    fat_tree_cost,
    hammingmesh_cost,
    hyperx_cost,
    torus_cost,
)
from ..topology.base import Topology
from ..topology.dragonfly import build_dragonfly
from ..topology.fattree import build_fat_tree
from ..topology.hyperx import build_hyperx2d
from ..topology.torus import build_torus2d

__all__ = ["ClusterTopology", "small_cluster_configs", "large_cluster_configs", "cluster_configs"]


@dataclass
class ClusterTopology:
    """One Table-II row: a named topology at a given cluster scale."""

    key: str
    label: str
    family: str
    num_accelerators: int
    build: Callable[[], Topology]
    cost: CostBreakdown
    analytic_diameter: int
    #: values printed in the paper's Table II (for EXPERIMENTS.md comparison)
    paper: Dict[str, float] = field(default_factory=dict)


def small_cluster_configs() -> List[ClusterTopology]:
    """The ~1,000-accelerator cluster design points of Table II."""
    return [
        ClusterTopology(
            "ft_nonblocking", "nonblocking fat tree", "fattree", 1024,
            lambda: build_fat_tree(1024),
            fat_tree_cost(1024, taper=1.0),
            4,
            paper={"cost": 25.3, "global_bw": 99.9, "allreduce_bw": 98.9, "diameter": 4},
        ),
        ClusterTopology(
            "ft_tapered50", "fat tree 50% tapered", "fattree", 1024,
            lambda: build_fat_tree(1024, taper=0.5),
            fat_tree_cost(1024, taper=0.5),
            4,
            paper={"cost": 17.6, "global_bw": 51.2, "allreduce_bw": 98.9, "diameter": 4},
        ),
        ClusterTopology(
            "ft_tapered75", "fat tree 75% tapered", "fattree", 1024,
            lambda: build_fat_tree(1024, taper=0.25),
            fat_tree_cost(1024, taper=0.25),
            4,
            paper={"cost": 13.2, "global_bw": 25.7, "allreduce_bw": 98.9, "diameter": 4},
        ),
        ClusterTopology(
            "dragonfly", "Dragonfly", "dragonfly", 1024,
            lambda: build_dragonfly(8, routers_per_group=16, endpoints_per_router=8,
                                    global_links_per_router=8),
            dragonfly_cost(8, 16, 8, 8, virtual_per_physical=2),
            3,
            paper={"cost": 27.9, "global_bw": 62.9, "allreduce_bw": 98.8, "diameter": 3},
        ),
        ClusterTopology(
            "hyperx", "2D HyperX", "hyperx", 1024,
            # one terminal per switch: the four identical planes collapse into
            # 4x-capacity switch-to-switch links (same convention as the
            # other switched baselines)
            lambda: build_hyperx2d(32, 32, terminals=1, link_capacity=4.0),
            hyperx_cost(32, 32),
            4,
            paper={"cost": 10.8, "global_bw": 91.6, "allreduce_bw": 98.1, "diameter": 4},
        ),
        ClusterTopology(
            "hx2mesh", "Hx2Mesh", "hammingmesh", 1024,
            lambda: build_hammingmesh(2, 2, 16, 16),
            hammingmesh_cost(hx2mesh(16, 16)),
            4,
            paper={"cost": 5.4, "global_bw": 25.4, "allreduce_bw": 98.3, "diameter": 4},
        ),
        ClusterTopology(
            "hx4mesh", "Hx4Mesh", "hammingmesh", 1024,
            lambda: build_hammingmesh(4, 4, 8, 8),
            hammingmesh_cost(hx4mesh(8, 8)),
            8,
            paper={"cost": 2.7, "global_bw": 11.3, "allreduce_bw": 98.4, "diameter": 8},
        ),
        ClusterTopology(
            "torus", "2D torus", "torus", 1024,
            lambda: build_torus2d(16, 16),
            torus_cost(16, 16),
            32,
            paper={"cost": 2.5, "global_bw": 2.0, "allreduce_bw": 98.1, "diameter": 32},
        ),
    ]


def large_cluster_configs() -> List[ClusterTopology]:
    """The ~16,000-accelerator cluster design points of Table II."""
    return [
        ClusterTopology(
            "ft_nonblocking", "nonblocking fat tree", "fattree", 16384,
            lambda: build_fat_tree(16384),
            fat_tree_cost(16384, taper=1.0),
            6,
            paper={"cost": 680, "global_bw": 98.9, "allreduce_bw": 99.8, "diameter": 6},
        ),
        ClusterTopology(
            "ft_tapered50", "fat tree 50% tapered", "fattree", 16384,
            lambda: build_fat_tree(16384, taper=0.5),
            fat_tree_cost(16384, taper=0.5),
            6,
            paper={"cost": 419, "global_bw": 47.6, "allreduce_bw": 99.8, "diameter": 6},
        ),
        ClusterTopology(
            "ft_tapered75", "fat tree 75% tapered", "fattree", 16384,
            lambda: build_fat_tree(16384, taper=0.25),
            fat_tree_cost(16384, taper=0.25),
            6,
            paper={"cost": 271, "global_bw": 24.0, "allreduce_bw": 99.8, "diameter": 6},
        ),
        ClusterTopology(
            "dragonfly", "Dragonfly", "dragonfly", 16320,
            lambda: build_dragonfly(30, routers_per_group=32, endpoints_per_router=17,
                                    global_links_per_router=16),
            dragonfly_cost(30, 32, 17, 16),
            5,
            paper={"cost": 429, "global_bw": 71.5, "allreduce_bw": 98.6, "diameter": 5},
        ),
        ClusterTopology(
            "hyperx", "2D HyperX", "hyperx", 16384,
            lambda: build_hyperx2d(64, 64, terminals=4),
            hyperx_cost(128, 128),
            8,
            paper={"cost": 448, "global_bw": 95.8, "allreduce_bw": 91.4, "diameter": 8},
        ),
        ClusterTopology(
            "hx2mesh", "Hx2Mesh", "hammingmesh", 16384,
            lambda: build_hammingmesh(2, 2, 64, 64),
            hammingmesh_cost(hx2mesh(64, 64)),
            8,
            paper={"cost": 224, "global_bw": 25.0, "allreduce_bw": 92.3, "diameter": 8},
        ),
        ClusterTopology(
            "hx4mesh", "Hx4Mesh", "hammingmesh", 16384,
            lambda: build_hammingmesh(4, 4, 32, 32),
            hammingmesh_cost(hx4mesh(32, 32)),
            8,
            paper={"cost": 43.3, "global_bw": 10.5, "allreduce_bw": 92.2, "diameter": 8},
        ),
        ClusterTopology(
            "torus", "2D torus", "torus", 16384,
            lambda: build_torus2d(64, 64),
            torus_cost(64, 64),
            128,
            paper={"cost": 39.5, "global_bw": 1.1, "allreduce_bw": 91.4, "diameter": 128},
        ),
    ]


def cluster_configs(cluster: str) -> List[ClusterTopology]:
    """Configurations for ``"small"`` or ``"large"`` clusters."""
    if cluster == "small":
        return small_cluster_configs()
    if cluster == "large":
        return large_cluster_configs()
    raise ValueError(f"unknown cluster {cluster!r} (expected 'small' or 'large')")
