"""Series generators for every evaluation figure of the paper.

Each ``figNN_*`` function returns plain Python/NumPy data structures (the
series a plot of that figure would show); the benchmark harness prints them
and EXPERIMENTS.md records the comparison against the published figures.

Figures covered: 7 (job-size CDF), 8 (allocation utilization), 9 (upper
fat-tree-level traffic), 10 (utilization under failures), 11 (alltoall
bandwidth vs message size), 12 (permutation bandwidth distribution),
13/17 (allreduce bandwidth vs message size, large/small clusters),
15 (relative cost savings for the DNN workloads), 16 (edge-disjoint
Hamiltonian cycles), and the Section V-B iteration-time table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..allocation import (
    AllocatorOptions,
    BoardGrid,
    GreedyAllocator,
    alibaba_like_distribution,
    sample_job_mixes,
    upper_level_fraction,
    utilization_under_failures,
)
from ..collectives.cost_models import allreduce_bus_bandwidth
from ..collectives.hamiltonian import disjoint_hamiltonian_cycles
from ..cost.model import CostBreakdown
from ..workloads import WORKLOADS, NetworkProfile, get_workload
from ..workloads.overlap import PORT_BYTES_PER_S
from .bandwidth import measure_permutation_fractions, measure_topology
from .clusters import ClusterTopology, cluster_configs

__all__ = [
    "DEFAULT_FRACTIONS",
    "network_profiles",
    "fig7_jobsize_cdf",
    "fig8_utilization",
    "fig9_upper_traffic",
    "fig10_failures",
    "fig11_alltoall_sweep",
    "fig12_permutation",
    "fig13_allreduce_sweep",
    "fig15_cost_savings",
    "fig16_hamiltonian_cycles",
    "dnn_iteration_times",
]


#: Measured bandwidth fractions of the small-cluster configurations
#: (flow-level simulator, 48 sampled phases, 8 paths).  Used as the default
#: network profiles for the workload figures so that they do not need to
#: re-run the flow simulations; refreshed values can be passed explicitly.
DEFAULT_FRACTIONS: Dict[str, Dict[str, float]] = {
    "ft_nonblocking": {"alltoall": 0.89, "allreduce": 1.00, "diameter": 4},
    "ft_tapered50": {"alltoall": 0.48, "allreduce": 1.00, "diameter": 4},
    "ft_tapered75": {"alltoall": 0.24, "allreduce": 1.00, "diameter": 4},
    "dragonfly": {"alltoall": 0.93, "allreduce": 1.00, "diameter": 3},
    "hyperx": {"alltoall": 1.00, "allreduce": 1.00, "diameter": 4},
    "hx2mesh": {"alltoall": 0.25, "allreduce": 1.00, "diameter": 4},
    "hx4mesh": {"alltoall": 0.13, "allreduce": 1.00, "diameter": 8},
    "torus": {"alltoall": 0.058, "allreduce": 1.00, "diameter": 32},
}


def network_profiles(
    cluster: str = "small",
    *,
    measured: Optional[Dict[str, Dict[str, float]]] = None,
    measure: bool = False,
    num_phases: Optional[int] = 48,
    max_paths: int = 8,
    backend: str = "flow",
) -> Dict[str, NetworkProfile]:
    """Network profiles for every topology of the chosen cluster.

    By default the stored :data:`DEFAULT_FRACTIONS` are used; with
    ``measure=True`` the selected network backend is run instead (the
    default flow-level fidelity is slow for the large cluster).
    """
    configs = cluster_configs(cluster)
    fractions = dict(DEFAULT_FRACTIONS)
    if measured:
        fractions.update(measured)
    profiles: Dict[str, NetworkProfile] = {}
    for config in configs:
        if measure:
            topo = config.build()
            summary = measure_topology(
                topo, num_phases=num_phases, max_paths=max_paths, backend=backend
            )
            a2a, ar = summary.alltoall_fraction, summary.allreduce_fraction
        else:
            entry = fractions.get(config.key, {"alltoall": 0.5, "allreduce": 1.0})
            a2a, ar = entry["alltoall"], entry["allreduce"]
        profiles[config.key] = NetworkProfile.from_measurements(
            config.label,
            config.family,
            alltoall_fraction=a2a,
            allreduce_fraction=ar,
            diameter=config.analytic_diameter,
        )
    return profiles


# ------------------------------------------------------------------- Figure 7
def fig7_jobsize_cdf(
    cluster_boards: int = 4096, num_mixes: int = 200, seed: int = 0
) -> Dict[str, List[Tuple[int, float]]]:
    """Job-size CDFs: the original distribution and the sampled job mixes."""
    dist = alibaba_like_distribution()
    original = dist.board_weighted_cdf()
    mixes = sample_job_mixes(cluster_boards, num_mixes, seed=seed)
    sizes = np.array([job.num_boards for mix in mixes for job in mix])
    boards = sizes.astype(float)
    order = np.argsort(sizes)
    cum = np.cumsum(boards[order]) / boards.sum()
    sampled: List[Tuple[int, float]] = []
    last_size = None
    for s, c in zip(sizes[order], cum):
        if last_size is not None and s == last_size:
            sampled[-1] = (int(s), float(c))
        else:
            sampled.append((int(s), float(c)))
        last_size = s
    return {"original": original, "sampled": sampled}


# ------------------------------------------------------------------- Figure 8
FIG8_PRESETS = [
    ("greedy", False),
    ("greedy+transpose", False),
    ("greedy+transpose+aspect", False),
    ("greedy+transpose+aspect+locality", False),
    ("greedy+transpose+aspect", True),
    ("greedy+transpose+aspect+locality", True),
]

FIG8_CLUSTERS = {
    "Small 16x16 Hx2Mesh": (16, 16),
    "Small 8x8 Hx4Mesh": (8, 8),
    "Large 64x64 Hx2Mesh": (64, 64),
    "Large 32x32 Hx4Mesh": (32, 32),
}


def fig8_utilization(
    *,
    clusters: Optional[Dict[str, Tuple[int, int]]] = None,
    num_traces: int = 50,
    seed: int = 0,
) -> Dict[str, Dict[str, List[float]]]:
    """System utilization distributions per cluster and heuristic combination."""
    out: Dict[str, Dict[str, List[float]]] = {}
    for cluster_name, (x, y) in (clusters or FIG8_CLUSTERS).items():
        per_preset: Dict[str, List[float]] = {}
        mixes = sample_job_mixes(x * y, num_traces, seed=seed, max_job_boards=x * y)
        for preset, sort in FIG8_PRESETS:
            label = preset + ("+sort" if sort else "")
            utils: List[float] = []
            for mix in mixes:
                grid = BoardGrid(x, y)
                allocator = GreedyAllocator(grid, AllocatorOptions.named(preset))
                trace = mix.sorted_by_size() if sort else mix
                utils.append(allocator.allocate_trace(trace).utilization)
            per_preset[label] = utils
        out[cluster_name] = per_preset
    return out


# ------------------------------------------------------------------- Figure 9
FIG9_CLUSTERS = {
    "Large 64x64 Hx2Mesh": (64, 64, 16),
    "Large 32x32 Hx4Mesh": (32, 32, 32),
}


def fig9_upper_traffic(
    *,
    clusters: Optional[Dict[str, Tuple[int, int, int]]] = None,
    num_traces: int = 20,
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Mean fraction of traffic crossing the upper fat-tree levels.

    Returns ``{cluster: {preset: {"alltoall": f, "allreduce": f}}}``; the
    fraction is averaged over jobs weighted by their board count.
    """
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for cluster_name, (x, y, boards_per_leaf) in (clusters or FIG9_CLUSTERS).items():
        per_preset: Dict[str, Dict[str, float]] = {}
        mixes = sample_job_mixes(x * y, num_traces, seed=seed, max_job_boards=x * y)
        for preset, sort in FIG8_PRESETS:
            label = preset + ("+sort" if sort else "")
            totals = {"alltoall": 0.0, "allreduce": 0.0}
            weight = 0.0
            for mix in mixes:
                grid = BoardGrid(x, y)
                options = AllocatorOptions.named(preset)
                options = AllocatorOptions(
                    transpose=options.transpose,
                    aspect_ratio=options.aspect_ratio,
                    locality=options.locality,
                    boards_per_leaf=boards_per_leaf,
                )
                allocator = GreedyAllocator(grid, options)
                trace = mix.sorted_by_size() if sort else mix
                result = allocator.allocate_trace(trace)
                for submesh in result.placed.values():
                    w = submesh.num_boards
                    weight += w
                    for pattern in ("alltoall", "allreduce"):
                        totals[pattern] += w * upper_level_fraction(
                            submesh, boards_per_leaf=boards_per_leaf, pattern=pattern
                        )
            per_preset[label] = {
                k: (v / weight if weight else 0.0) for k, v in totals.items()
            }
        out[cluster_name] = per_preset
    return out


# ------------------------------------------------------------------ Figure 10
FIG10_CLUSTERS = {
    "Hx2Small": ((16, 16), (0, 10, 20, 30, 40)),
    "Hx4Small": ((8, 8), (0, 10, 20, 30, 40)),
    "Hx2Large": ((64, 64), (0, 25, 50, 75, 100)),
    "Hx4Large": ((32, 32), (0, 25, 50, 75, 100)),
}


def fig10_failures(
    *,
    clusters=None,
    num_trials: int = 10,
    seed: int = 0,
) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """Median utilization of working boards vs number of failed boards."""
    out: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for name, ((x, y), counts) in (clusters or FIG10_CLUSTERS).items():
        per_mode: Dict[str, List[Tuple[int, float]]] = {}
        for sort_jobs, label in ((False, "unsorted"), (True, "sorted")):
            results = utilization_under_failures(
                x, y, counts, num_trials=num_trials, sort_jobs=sort_jobs, seed=seed
            )
            per_mode[label] = [(r.num_failed, r.median) for r in results]
        out[name] = per_mode
    return out


# ------------------------------------------------------------------ Figure 11
DEFAULT_MESSAGE_SIZES = tuple(2 ** k for k in range(10, 25, 2))  # 1 KiB .. 16 MiB


def fig11_alltoall_sweep(
    cluster: str = "small",
    *,
    message_sizes: Sequence[int] = DEFAULT_MESSAGE_SIZES,
    profiles: Optional[Dict[str, NetworkProfile]] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Alltoall effective bandwidth (fraction of injection) vs message size.

    ``message_sizes`` are per-peer block sizes (as in the paper's
    microbenchmark); the balanced-shift alltoall runs ``P - 1`` phases of one
    block each, so the effective per-process bandwidth is
    ``block / (alpha + block / measured_alltoall_bandwidth)`` -- the measured
    large-message fraction is the asymptote, small blocks are latency-bound.
    """
    configs = {c.key: c for c in cluster_configs(cluster)}
    profiles = profiles or network_profiles(cluster)
    out: Dict[str, List[Tuple[int, float]]] = {}
    for key, profile in profiles.items():
        series = []
        for size in message_sizes:
            phase_time = profile.alpha + size / profile.alltoall_bandwidth
            effective = size / phase_time
            series.append((size, effective / (4 * PORT_BYTES_PER_S)))
        out[configs[key].label] = series
    return out


# ------------------------------------------------------------------ Figure 12
def fig12_permutation(
    cluster: str = "small",
    *,
    num_permutations: int = 2,
    max_paths: int = 8,
    skip_keys: Sequence[str] = (),
    seed: int = 0,
    backend: str = "flow",
) -> Dict[str, Dict[str, object]]:
    """Per-accelerator bandwidth distribution under random permutation traffic.

    Returns, per topology: the raw distribution (fractions of injection),
    its mean, and the cost per average bandwidth relative to the nonblocking
    fat tree.
    """
    configs = cluster_configs(cluster)
    results: Dict[str, Dict[str, object]] = {}
    reference_ratio = None
    for config in configs:
        if config.key in skip_keys:
            continue
        topo = config.build()
        dist = measure_permutation_fractions(
            topo,
            num_permutations=num_permutations,
            max_paths=max_paths,
            seed=seed,
            backend=backend,
        )
        mean = float(dist.mean())
        cost_per_bw = config.cost.total_millions / max(mean, 1e-9)
        if config.key == "ft_nonblocking":
            reference_ratio = cost_per_bw
        results[config.label] = {
            "distribution": dist,
            "mean_fraction": mean,
            "cost_per_bandwidth": cost_per_bw,
        }
    if reference_ratio:
        for entry in results.values():
            entry["relative_cost_per_bandwidth"] = (
                entry["cost_per_bandwidth"] / reference_ratio
            )
    return results


# ------------------------------------------------------------- Figures 13 / 17
ALLREDUCE_SWEEP_SIZES = tuple(2 ** k for k in range(14, 33, 2))  # 16 KiB .. 4 GiB


def fig13_allreduce_sweep(
    cluster: str = "large",
    *,
    message_sizes: Sequence[int] = ALLREDUCE_SWEEP_SIZES,
    algorithms: Sequence[str] = ("rings", "torus"),
    profiles: Optional[Dict[str, NetworkProfile]] = None,
) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """Full-system allreduce bus bandwidth vs message size (Figures 13/17).

    On the grid topologies both the dual-ring ("rings") and the 2D-torus
    ("torus") algorithms are evaluated; the switched topologies use the
    standard per-plane ring.  Bandwidths are bytes/s per accelerator.
    """
    configs = {c.key: c for c in cluster_configs(cluster)}
    profiles = profiles or network_profiles(cluster)
    out: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for key, profile in profiles.items():
        config = configs[key]
        p = config.num_accelerators
        beta = 1.0 / (profile.allreduce_busbw * 2.0)  # seconds per byte per NIC
        per_alg: Dict[str, List[Tuple[int, float]]] = {}
        if config.family in ("hammingmesh", "torus", "hyperx"):
            algs = list(algorithms)
        else:
            algs = ["bidirectional-ring"]
        for alg in algs:
            series = []
            for size in message_sizes:
                bw = allreduce_bus_bandwidth(alg, p, size, profile.alpha, beta)
                series.append((size, bw))
            per_alg[alg] = series
        out[config.label] = per_alg
    return out


def fig17_allreduce_sweep(**kwargs):
    """Small-cluster variant of the allreduce sweep (Figure 17)."""
    kwargs.setdefault("cluster", "small")
    return fig13_allreduce_sweep(**kwargs)


# ------------------------------------------------------------------ Figure 15
FIG15_WORKLOADS = ["resnet152", "gpt3", "gpt3_moe", "cosmoflow", "dlrm"]
FIG15_BASELINES = [
    "ft_nonblocking",
    "ft_tapered50",
    "ft_tapered75",
    "dragonfly",
    "hyperx",
    "torus",
]


def fig15_cost_savings(
    *,
    cluster: str = "small",
    profiles: Optional[Dict[str, NetworkProfile]] = None,
    workload_names: Sequence[str] = tuple(FIG15_WORKLOADS),
    hx_keys: Sequence[str] = ("hx2mesh", "hx4mesh"),
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Relative cost savings of HxMesh vs the other topologies (Figure 15).

    Following the paper, the saving of an HxMesh over topology X for a given
    workload is ``(cost_X / cost_Hx) * (exposed_comm_X / exposed_comm_Hx)``:
    the network-cost ratio corrected by the ratio of communication overheads.
    Returns ``{hx_label: {workload: {baseline_label: saving}}}``.
    """
    configs = {c.key: c for c in cluster_configs(cluster)}
    profiles = profiles or network_profiles(cluster)
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for hx_key in hx_keys:
        hx_label = configs[hx_key].label
        hx_cost = configs[hx_key].cost.total_millions
        out[hx_label] = {}
        for wname in workload_names:
            workload = get_workload(wname)
            hx_time = workload.iteration_time(profiles[hx_key])
            hx_overhead = max(hx_time - workload.compute_time, 1e-9)
            per_baseline: Dict[str, float] = {}
            for base_key in FIG15_BASELINES:
                base = configs[base_key]
                base_time = workload.iteration_time(profiles[base_key])
                base_overhead = max(base_time - workload.compute_time, 1e-9)
                saving = (base.cost.total_millions / hx_cost) * (
                    base_overhead / hx_overhead
                )
                per_baseline[base.label] = saving
            out[hx_label][workload.name] = per_baseline
    return out


# ------------------------------------------------------------------ Figure 16
def fig16_hamiltonian_cycles(
    shapes: Sequence[Tuple[int, int]] = ((4, 4), (8, 4), (9, 3), (16, 8)),
) -> Dict[Tuple[int, int], Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]]:
    """The example edge-disjoint Hamiltonian cycle pairs of Figure 16."""
    return {shape: disjoint_hamiltonian_cycles(*shape) for shape in shapes}


# --------------------------------------------------------- Section V-B table
def dnn_iteration_times(
    *,
    cluster: str = "small",
    profiles: Optional[Dict[str, NetworkProfile]] = None,
    workload_names: Sequence[str] = tuple(FIG15_WORKLOADS),
) -> Dict[str, Dict[str, float]]:
    """Per-topology iteration times (seconds) of the Section V-B workloads."""
    configs = cluster_configs(cluster)
    profiles = profiles or network_profiles(cluster)
    out: Dict[str, Dict[str, float]] = {}
    for wname in workload_names:
        workload = get_workload(wname)
        out[workload.name] = {
            config.label: workload.iteration_time(profiles[config.key])
            for config in configs
            if config.key in profiles
        }
    return out
